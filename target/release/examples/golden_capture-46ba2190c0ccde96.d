/root/repo/target/release/examples/golden_capture-46ba2190c0ccde96.d: examples/golden_capture.rs

/root/repo/target/release/examples/golden_capture-46ba2190c0ccde96: examples/golden_capture.rs

examples/golden_capture.rs:
