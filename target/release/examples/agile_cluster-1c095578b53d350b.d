/root/repo/target/release/examples/agile_cluster-1c095578b53d350b.d: examples/agile_cluster.rs

/root/repo/target/release/examples/agile_cluster-1c095578b53d350b: examples/agile_cluster.rs

examples/agile_cluster.rs:
