/root/repo/target/release/examples/quickstart-103a16bd3218b782.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-103a16bd3218b782: examples/quickstart.rs

examples/quickstart.rs:
