/root/repo/target/release/examples/capacity_planning-501776616545e428.d: examples/capacity_planning.rs

/root/repo/target/release/examples/capacity_planning-501776616545e428: examples/capacity_planning.rs

examples/capacity_planning.rs:
