/root/repo/target/release/examples/capacity_planning-c86dfdf5b5ecb493.d: examples/capacity_planning.rs

/root/repo/target/release/examples/capacity_planning-c86dfdf5b5ecb493: examples/capacity_planning.rs

examples/capacity_planning.rs:
