/root/repo/target/release/examples/golden_capture-7086a60cd9f3a6be.d: examples/golden_capture.rs

/root/repo/target/release/examples/golden_capture-7086a60cd9f3a6be: examples/golden_capture.rs

examples/golden_capture.rs:
