/root/repo/target/release/examples/agile_cluster-312020e5ef860ccd.d: examples/agile_cluster.rs

/root/repo/target/release/examples/agile_cluster-312020e5ef860ccd: examples/agile_cluster.rs

examples/agile_cluster.rs:
