/root/repo/target/release/examples/trace_replay-5094ab308a4042c0.d: examples/trace_replay.rs

/root/repo/target/release/examples/trace_replay-5094ab308a4042c0: examples/trace_replay.rs

examples/trace_replay.rs:
