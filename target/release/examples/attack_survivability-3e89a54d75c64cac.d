/root/repo/target/release/examples/attack_survivability-3e89a54d75c64cac.d: examples/attack_survivability.rs

/root/repo/target/release/examples/attack_survivability-3e89a54d75c64cac: examples/attack_survivability.rs

examples/attack_survivability.rs:
