/root/repo/target/release/examples/quickstart-63839a3a1d083f70.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-63839a3a1d083f70: examples/quickstart.rs

examples/quickstart.rs:
