/root/repo/target/release/examples/trace_replay-9f255fef32b47dfe.d: examples/trace_replay.rs

/root/repo/target/release/examples/trace_replay-9f255fef32b47dfe: examples/trace_replay.rs

examples/trace_replay.rs:
