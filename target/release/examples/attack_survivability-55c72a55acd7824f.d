/root/repo/target/release/examples/attack_survivability-55c72a55acd7824f.d: examples/attack_survivability.rs

/root/repo/target/release/examples/attack_survivability-55c72a55acd7824f: examples/attack_survivability.rs

examples/attack_survivability.rs:
