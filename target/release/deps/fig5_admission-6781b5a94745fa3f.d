/root/repo/target/release/deps/fig5_admission-6781b5a94745fa3f.d: crates/bench/benches/fig5_admission.rs

/root/repo/target/release/deps/fig5_admission-6781b5a94745fa3f: crates/bench/benches/fig5_admission.rs

crates/bench/benches/fig5_admission.rs:
