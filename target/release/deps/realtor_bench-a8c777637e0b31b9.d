/root/repo/target/release/deps/realtor_bench-a8c777637e0b31b9.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/realtor_bench-a8c777637e0b31b9: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
