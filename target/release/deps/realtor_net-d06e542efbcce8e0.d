/root/repo/target/release/deps/realtor_net-d06e542efbcce8e0.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/release/deps/librealtor_net-d06e542efbcce8e0.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/release/deps/librealtor_net-d06e542efbcce8e0.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
