/root/repo/target/release/deps/fig7_cost_per_task-30ecf12cfe963fa4.d: crates/bench/benches/fig7_cost_per_task.rs

/root/repo/target/release/deps/fig7_cost_per_task-30ecf12cfe963fa4: crates/bench/benches/fig7_cost_per_task.rs

crates/bench/benches/fig7_cost_per_task.rs:
