/root/repo/target/release/deps/bench_smoke-cd59b14d93ecec6a.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/release/deps/bench_smoke-cd59b14d93ecec6a: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
