/root/repo/target/release/deps/proptests-657b2e14adb84f4f.d: crates/core/tests/proptests.rs

/root/repo/target/release/deps/proptests-657b2e14adb84f4f: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
