/root/repo/target/release/deps/paper_claims-293266b22474920a.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-293266b22474920a: tests/paper_claims.rs

tests/paper_claims.rs:
