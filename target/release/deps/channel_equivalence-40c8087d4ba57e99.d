/root/repo/target/release/deps/channel_equivalence-40c8087d4ba57e99.d: tests/channel_equivalence.rs

/root/repo/target/release/deps/channel_equivalence-40c8087d4ba57e99: tests/channel_equivalence.rs

tests/channel_equivalence.rs:
