/root/repo/target/release/deps/realtor_agile-c444ca6ff3d6188e.d: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

/root/repo/target/release/deps/librealtor_agile-c444ca6ff3d6188e.rlib: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

/root/repo/target/release/deps/librealtor_agile-c444ca6ff3d6188e.rmeta: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

crates/agile/src/lib.rs:
crates/agile/src/clock.rs:
crates/agile/src/cluster.rs:
crates/agile/src/codec.rs:
crates/agile/src/component.rs:
crates/agile/src/host.rs:
crates/agile/src/naming.rs:
crates/agile/src/transport.rs:
