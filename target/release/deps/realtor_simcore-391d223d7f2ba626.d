/root/repo/target/release/deps/realtor_simcore-391d223d7f2ba626.d: crates/simcore/src/lib.rs crates/simcore/src/check.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/plot.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/librealtor_simcore-391d223d7f2ba626.rlib: crates/simcore/src/lib.rs crates/simcore/src/check.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/plot.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs

/root/repo/target/release/deps/librealtor_simcore-391d223d7f2ba626.rmeta: crates/simcore/src/lib.rs crates/simcore/src/check.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/plot.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/check.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/event.rs:
crates/simcore/src/plot.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/table.rs:
crates/simcore/src/time.rs:
