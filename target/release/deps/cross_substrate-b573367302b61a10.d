/root/repo/target/release/deps/cross_substrate-b573367302b61a10.d: tests/cross_substrate.rs

/root/repo/target/release/deps/cross_substrate-b573367302b61a10: tests/cross_substrate.rs

tests/cross_substrate.rs:
