/root/repo/target/release/deps/realtor_bench-2ef82526af73a229.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/librealtor_bench-2ef82526af73a229.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/librealtor_bench-2ef82526af73a229.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
