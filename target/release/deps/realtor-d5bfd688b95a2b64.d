/root/repo/target/release/deps/realtor-d5bfd688b95a2b64.d: src/lib.rs

/root/repo/target/release/deps/librealtor-d5bfd688b95a2b64.rlib: src/lib.rs

/root/repo/target/release/deps/librealtor-d5bfd688b95a2b64.rmeta: src/lib.rs

src/lib.rs:
