/root/repo/target/release/deps/realtor_bench-71bdf337ec1ace55.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/realtor_bench-71bdf337ec1ace55: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
