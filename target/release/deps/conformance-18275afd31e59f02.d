/root/repo/target/release/deps/conformance-18275afd31e59f02.d: crates/core/tests/conformance.rs

/root/repo/target/release/deps/conformance-18275afd31e59f02: crates/core/tests/conformance.rs

crates/core/tests/conformance.rs:
