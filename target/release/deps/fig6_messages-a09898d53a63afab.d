/root/repo/target/release/deps/fig6_messages-a09898d53a63afab.d: crates/bench/benches/fig6_messages.rs

/root/repo/target/release/deps/fig6_messages-a09898d53a63afab: crates/bench/benches/fig6_messages.rs

crates/bench/benches/fig6_messages.rs:
