/root/repo/target/release/deps/realtor_sim-14f94cd9950eafcf.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

/root/repo/target/release/deps/realtor_sim-14f94cd9950eafcf: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sweep.rs:
crates/sim/src/world.rs:
