/root/repo/target/release/deps/proptests-d92600c2dbd89918.d: crates/workload/tests/proptests.rs

/root/repo/target/release/deps/proptests-d92600c2dbd89918: crates/workload/tests/proptests.rs

crates/workload/tests/proptests.rs:
