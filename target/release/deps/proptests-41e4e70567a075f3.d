/root/repo/target/release/deps/proptests-41e4e70567a075f3.d: crates/sim/tests/proptests.rs

/root/repo/target/release/deps/proptests-41e4e70567a075f3: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
