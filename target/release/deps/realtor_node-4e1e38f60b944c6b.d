/root/repo/target/release/deps/realtor_node-4e1e38f60b944c6b.d: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

/root/repo/target/release/deps/librealtor_node-4e1e38f60b944c6b.rlib: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

/root/repo/target/release/deps/librealtor_node-4e1e38f60b944c6b.rmeta: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

crates/node/src/lib.rs:
crates/node/src/admission.rs:
crates/node/src/monitor.rs:
crates/node/src/queue.rs:
crates/node/src/rt.rs:
crates/node/src/scheduler.rs:
crates/node/src/task.rs:
