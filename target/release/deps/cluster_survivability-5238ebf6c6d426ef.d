/root/repo/target/release/deps/cluster_survivability-5238ebf6c6d426ef.d: tests/cluster_survivability.rs

/root/repo/target/release/deps/cluster_survivability-5238ebf6c6d426ef: tests/cluster_survivability.rs

tests/cluster_survivability.rs:
