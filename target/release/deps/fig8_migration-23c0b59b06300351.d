/root/repo/target/release/deps/fig8_migration-23c0b59b06300351.d: crates/bench/benches/fig8_migration.rs

/root/repo/target/release/deps/fig8_migration-23c0b59b06300351: crates/bench/benches/fig8_migration.rs

crates/bench/benches/fig8_migration.rs:
