/root/repo/target/release/deps/bench_smoke-526bd10a361efb08.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/release/deps/bench_smoke-526bd10a361efb08: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
