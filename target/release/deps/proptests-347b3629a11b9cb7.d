/root/repo/target/release/deps/proptests-347b3629a11b9cb7.d: crates/agile/tests/proptests.rs

/root/repo/target/release/deps/proptests-347b3629a11b9cb7: crates/agile/tests/proptests.rs

crates/agile/tests/proptests.rs:
