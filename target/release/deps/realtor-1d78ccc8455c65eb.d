/root/repo/target/release/deps/realtor-1d78ccc8455c65eb.d: src/lib.rs

/root/repo/target/release/deps/librealtor-1d78ccc8455c65eb.rlib: src/lib.rs

/root/repo/target/release/deps/librealtor-1d78ccc8455c65eb.rmeta: src/lib.rs

src/lib.rs:
