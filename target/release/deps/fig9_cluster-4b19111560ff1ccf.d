/root/repo/target/release/deps/fig9_cluster-4b19111560ff1ccf.d: crates/bench/benches/fig9_cluster.rs

/root/repo/target/release/deps/fig9_cluster-4b19111560ff1ccf: crates/bench/benches/fig9_cluster.rs

crates/bench/benches/fig9_cluster.rs:
