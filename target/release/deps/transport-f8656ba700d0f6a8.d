/root/repo/target/release/deps/transport-f8656ba700d0f6a8.d: crates/bench/benches/transport.rs

/root/repo/target/release/deps/transport-f8656ba700d0f6a8: crates/bench/benches/transport.rs

crates/bench/benches/transport.rs:
