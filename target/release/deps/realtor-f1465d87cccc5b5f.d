/root/repo/target/release/deps/realtor-f1465d87cccc5b5f.d: src/lib.rs

/root/repo/target/release/deps/realtor-f1465d87cccc5b5f: src/lib.rs

src/lib.rs:
