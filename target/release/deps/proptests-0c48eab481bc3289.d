/root/repo/target/release/deps/proptests-0c48eab481bc3289.d: crates/node/tests/proptests.rs

/root/repo/target/release/deps/proptests-0c48eab481bc3289: crates/node/tests/proptests.rs

crates/node/tests/proptests.rs:
