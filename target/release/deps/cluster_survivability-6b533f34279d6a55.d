/root/repo/target/release/deps/cluster_survivability-6b533f34279d6a55.d: tests/cluster_survivability.rs

/root/repo/target/release/deps/cluster_survivability-6b533f34279d6a55: tests/cluster_survivability.rs

tests/cluster_survivability.rs:
