/root/repo/target/release/deps/proptests-a332f4deea3ee305.d: crates/simcore/tests/proptests.rs

/root/repo/target/release/deps/proptests-a332f4deea3ee305: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
