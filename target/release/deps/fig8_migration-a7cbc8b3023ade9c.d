/root/repo/target/release/deps/fig8_migration-a7cbc8b3023ade9c.d: crates/bench/benches/fig8_migration.rs

/root/repo/target/release/deps/fig8_migration-a7cbc8b3023ade9c: crates/bench/benches/fig8_migration.rs

crates/bench/benches/fig8_migration.rs:
