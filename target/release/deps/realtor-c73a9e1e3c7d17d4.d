/root/repo/target/release/deps/realtor-c73a9e1e3c7d17d4.d: src/lib.rs

/root/repo/target/release/deps/realtor-c73a9e1e3c7d17d4: src/lib.rs

src/lib.rs:
