/root/repo/target/release/deps/determinism-e26701ea6f1d8e51.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-e26701ea6f1d8e51: tests/determinism.rs

tests/determinism.rs:
