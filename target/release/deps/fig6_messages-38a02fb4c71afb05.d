/root/repo/target/release/deps/fig6_messages-38a02fb4c71afb05.d: crates/bench/benches/fig6_messages.rs

/root/repo/target/release/deps/fig6_messages-38a02fb4c71afb05: crates/bench/benches/fig6_messages.rs

crates/bench/benches/fig6_messages.rs:
