/root/repo/target/release/deps/transport-c973c94650d7e049.d: crates/bench/benches/transport.rs

/root/repo/target/release/deps/transport-c973c94650d7e049: crates/bench/benches/transport.rs

crates/bench/benches/transport.rs:
