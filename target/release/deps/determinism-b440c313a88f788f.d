/root/repo/target/release/deps/determinism-b440c313a88f788f.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-b440c313a88f788f: tests/determinism.rs

tests/determinism.rs:
