/root/repo/target/release/deps/cross_substrate-29f4c726ef1d1a40.d: tests/cross_substrate.rs

/root/repo/target/release/deps/cross_substrate-29f4c726ef1d1a40: tests/cross_substrate.rs

tests/cross_substrate.rs:
