/root/repo/target/release/deps/realtor_workload-a87ae0a1bf4ff955.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/librealtor_workload-a87ae0a1bf4ff955.rlib: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/librealtor_workload-a87ae0a1bf4ff955.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/attack.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
