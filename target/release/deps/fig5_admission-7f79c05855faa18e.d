/root/repo/target/release/deps/fig5_admission-7f79c05855faa18e.d: crates/bench/benches/fig5_admission.rs

/root/repo/target/release/deps/fig5_admission-7f79c05855faa18e: crates/bench/benches/fig5_admission.rs

crates/bench/benches/fig5_admission.rs:
