/root/repo/target/release/deps/bench_smoke-b14500f32d472b56.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/release/deps/bench_smoke-b14500f32d472b56: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
