/root/repo/target/release/deps/experiments-c2c1d96fc8a8e7c3.d: crates/experiments/src/main.rs crates/experiments/src/ablations.rs crates/experiments/src/attack.rs crates/experiments/src/balance.rs crates/experiments/src/cli.rs crates/experiments/src/deadlines.rs crates/experiments/src/dynamics.rs crates/experiments/src/fig9.rs crates/experiments/src/figures.rs crates/experiments/src/inter_community.rs crates/experiments/src/lossy.rs crates/experiments/src/multi_resource.rs crates/experiments/src/output.rs crates/experiments/src/scalability.rs crates/experiments/src/speculative.rs crates/experiments/src/staleness.rs

/root/repo/target/release/deps/experiments-c2c1d96fc8a8e7c3: crates/experiments/src/main.rs crates/experiments/src/ablations.rs crates/experiments/src/attack.rs crates/experiments/src/balance.rs crates/experiments/src/cli.rs crates/experiments/src/deadlines.rs crates/experiments/src/dynamics.rs crates/experiments/src/fig9.rs crates/experiments/src/figures.rs crates/experiments/src/inter_community.rs crates/experiments/src/lossy.rs crates/experiments/src/multi_resource.rs crates/experiments/src/output.rs crates/experiments/src/scalability.rs crates/experiments/src/speculative.rs crates/experiments/src/staleness.rs

crates/experiments/src/main.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/attack.rs:
crates/experiments/src/balance.rs:
crates/experiments/src/cli.rs:
crates/experiments/src/deadlines.rs:
crates/experiments/src/dynamics.rs:
crates/experiments/src/fig9.rs:
crates/experiments/src/figures.rs:
crates/experiments/src/inter_community.rs:
crates/experiments/src/lossy.rs:
crates/experiments/src/multi_resource.rs:
crates/experiments/src/output.rs:
crates/experiments/src/scalability.rs:
crates/experiments/src/speculative.rs:
crates/experiments/src/staleness.rs:
