/root/repo/target/release/deps/realtor_workload-2eb571b8c7cb2fd2.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/realtor_workload-2eb571b8c7cb2fd2: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/attack.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
