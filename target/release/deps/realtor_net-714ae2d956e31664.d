/root/repo/target/release/deps/realtor_net-714ae2d956e31664.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/release/deps/realtor_net-714ae2d956e31664: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
