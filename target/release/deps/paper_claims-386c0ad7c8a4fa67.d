/root/repo/target/release/deps/paper_claims-386c0ad7c8a4fa67.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-386c0ad7c8a4fa67: tests/paper_claims.rs

tests/paper_claims.rs:
