/root/repo/target/release/deps/realtor_node-5a8994d890974a0e.d: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

/root/repo/target/release/deps/realtor_node-5a8994d890974a0e: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

crates/node/src/lib.rs:
crates/node/src/admission.rs:
crates/node/src/monitor.rs:
crates/node/src/queue.rs:
crates/node/src/rt.rs:
crates/node/src/scheduler.rs:
crates/node/src/task.rs:
