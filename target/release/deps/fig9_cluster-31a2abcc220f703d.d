/root/repo/target/release/deps/fig9_cluster-31a2abcc220f703d.d: crates/bench/benches/fig9_cluster.rs

/root/repo/target/release/deps/fig9_cluster-31a2abcc220f703d: crates/bench/benches/fig9_cluster.rs

crates/bench/benches/fig9_cluster.rs:
