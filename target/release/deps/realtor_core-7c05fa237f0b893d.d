/root/repo/target/release/deps/realtor_core-7c05fa237f0b893d.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/adaptive_pull.rs crates/core/src/baselines/adaptive_push.rs crates/core/src/baselines/pure_pull.rs crates/core/src/baselines/pure_push.rs crates/core/src/community.rs crates/core/src/config.rs crates/core/src/factory.rs crates/core/src/help.rs crates/core/src/inter_community.rs crates/core/src/message.rs crates/core/src/pledge.rs crates/core/src/protocol.rs crates/core/src/realtor.rs crates/core/src/resources.rs

/root/repo/target/release/deps/librealtor_core-7c05fa237f0b893d.rlib: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/adaptive_pull.rs crates/core/src/baselines/adaptive_push.rs crates/core/src/baselines/pure_pull.rs crates/core/src/baselines/pure_push.rs crates/core/src/community.rs crates/core/src/config.rs crates/core/src/factory.rs crates/core/src/help.rs crates/core/src/inter_community.rs crates/core/src/message.rs crates/core/src/pledge.rs crates/core/src/protocol.rs crates/core/src/realtor.rs crates/core/src/resources.rs

/root/repo/target/release/deps/librealtor_core-7c05fa237f0b893d.rmeta: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/adaptive_pull.rs crates/core/src/baselines/adaptive_push.rs crates/core/src/baselines/pure_pull.rs crates/core/src/baselines/pure_push.rs crates/core/src/community.rs crates/core/src/config.rs crates/core/src/factory.rs crates/core/src/help.rs crates/core/src/inter_community.rs crates/core/src/message.rs crates/core/src/pledge.rs crates/core/src/protocol.rs crates/core/src/realtor.rs crates/core/src/resources.rs

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/adaptive_pull.rs:
crates/core/src/baselines/adaptive_push.rs:
crates/core/src/baselines/pure_pull.rs:
crates/core/src/baselines/pure_push.rs:
crates/core/src/community.rs:
crates/core/src/config.rs:
crates/core/src/factory.rs:
crates/core/src/help.rs:
crates/core/src/inter_community.rs:
crates/core/src/message.rs:
crates/core/src/pledge.rs:
crates/core/src/protocol.rs:
crates/core/src/realtor.rs:
crates/core/src/resources.rs:
