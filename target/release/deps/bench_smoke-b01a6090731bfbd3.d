/root/repo/target/release/deps/bench_smoke-b01a6090731bfbd3.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/release/deps/bench_smoke-b01a6090731bfbd3: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
