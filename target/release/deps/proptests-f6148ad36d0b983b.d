/root/repo/target/release/deps/proptests-f6148ad36d0b983b.d: crates/net/tests/proptests.rs

/root/repo/target/release/deps/proptests-f6148ad36d0b983b: crates/net/tests/proptests.rs

crates/net/tests/proptests.rs:
