/root/repo/target/release/deps/hermetic-3d6a6969f0f4448b.d: tests/hermetic.rs

/root/repo/target/release/deps/hermetic-3d6a6969f0f4448b: tests/hermetic.rs

tests/hermetic.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
