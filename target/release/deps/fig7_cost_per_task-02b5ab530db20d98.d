/root/repo/target/release/deps/fig7_cost_per_task-02b5ab530db20d98.d: crates/bench/benches/fig7_cost_per_task.rs

/root/repo/target/release/deps/fig7_cost_per_task-02b5ab530db20d98: crates/bench/benches/fig7_cost_per_task.rs

crates/bench/benches/fig7_cost_per_task.rs:
