/root/repo/target/release/deps/micro-f55eda150dc7f8bc.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-f55eda150dc7f8bc: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
