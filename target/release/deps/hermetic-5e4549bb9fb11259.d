/root/repo/target/release/deps/hermetic-5e4549bb9fb11259.d: tests/hermetic.rs

/root/repo/target/release/deps/hermetic-5e4549bb9fb11259: tests/hermetic.rs

tests/hermetic.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
