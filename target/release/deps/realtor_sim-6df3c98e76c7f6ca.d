/root/repo/target/release/deps/realtor_sim-6df3c98e76c7f6ca.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

/root/repo/target/release/deps/librealtor_sim-6df3c98e76c7f6ca.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

/root/repo/target/release/deps/librealtor_sim-6df3c98e76c7f6ca.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sweep.rs:
crates/sim/src/world.rs:
