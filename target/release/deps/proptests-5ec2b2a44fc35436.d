/root/repo/target/release/deps/proptests-5ec2b2a44fc35436.d: crates/agile/tests/proptests.rs

/root/repo/target/release/deps/proptests-5ec2b2a44fc35436: crates/agile/tests/proptests.rs

crates/agile/tests/proptests.rs:
