/root/repo/target/release/deps/realtor_agile-5896968ce2249990.d: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

/root/repo/target/release/deps/librealtor_agile-5896968ce2249990.rlib: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

/root/repo/target/release/deps/librealtor_agile-5896968ce2249990.rmeta: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

crates/agile/src/lib.rs:
crates/agile/src/clock.rs:
crates/agile/src/cluster.rs:
crates/agile/src/codec.rs:
crates/agile/src/component.rs:
crates/agile/src/host.rs:
crates/agile/src/naming.rs:
crates/agile/src/transport.rs:
