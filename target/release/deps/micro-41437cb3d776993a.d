/root/repo/target/release/deps/micro-41437cb3d776993a.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-41437cb3d776993a: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
