/root/repo/target/release/deps/realtor_bench-c829bbb2aafae2f5.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/librealtor_bench-c829bbb2aafae2f5.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/librealtor_bench-c829bbb2aafae2f5.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
