/root/repo/target/release/deps/link_attacks-417107cdf51de016.d: crates/sim/tests/link_attacks.rs

/root/repo/target/release/deps/link_attacks-417107cdf51de016: crates/sim/tests/link_attacks.rs

crates/sim/tests/link_attacks.rs:
