/root/repo/target/release/deps/algorithms-d5edeeb326b91c00.d: crates/core/tests/algorithms.rs

/root/repo/target/release/deps/algorithms-d5edeeb326b91c00: crates/core/tests/algorithms.rs

crates/core/tests/algorithms.rs:
