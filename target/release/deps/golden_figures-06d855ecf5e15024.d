/root/repo/target/release/deps/golden_figures-06d855ecf5e15024.d: tests/golden_figures.rs

/root/repo/target/release/deps/golden_figures-06d855ecf5e15024: tests/golden_figures.rs

tests/golden_figures.rs:
