/root/repo/target/debug/examples/attack_survivability-1e675ba2423e145c.d: examples/attack_survivability.rs Cargo.toml

/root/repo/target/debug/examples/libattack_survivability-1e675ba2423e145c.rmeta: examples/attack_survivability.rs Cargo.toml

examples/attack_survivability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
