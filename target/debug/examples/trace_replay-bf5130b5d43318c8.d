/root/repo/target/debug/examples/trace_replay-bf5130b5d43318c8.d: examples/trace_replay.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_replay-bf5130b5d43318c8.rmeta: examples/trace_replay.rs Cargo.toml

examples/trace_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
