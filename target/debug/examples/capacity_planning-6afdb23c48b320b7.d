/root/repo/target/debug/examples/capacity_planning-6afdb23c48b320b7.d: examples/capacity_planning.rs Cargo.toml

/root/repo/target/debug/examples/libcapacity_planning-6afdb23c48b320b7.rmeta: examples/capacity_planning.rs Cargo.toml

examples/capacity_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
