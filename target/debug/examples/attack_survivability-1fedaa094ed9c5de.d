/root/repo/target/debug/examples/attack_survivability-1fedaa094ed9c5de.d: examples/attack_survivability.rs

/root/repo/target/debug/examples/attack_survivability-1fedaa094ed9c5de: examples/attack_survivability.rs

examples/attack_survivability.rs:
