/root/repo/target/debug/examples/quickstart-f4042770f5aab01f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f4042770f5aab01f: examples/quickstart.rs

examples/quickstart.rs:
