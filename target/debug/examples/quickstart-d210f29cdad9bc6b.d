/root/repo/target/debug/examples/quickstart-d210f29cdad9bc6b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d210f29cdad9bc6b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
