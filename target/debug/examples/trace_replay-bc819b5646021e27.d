/root/repo/target/debug/examples/trace_replay-bc819b5646021e27.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-bc819b5646021e27: examples/trace_replay.rs

examples/trace_replay.rs:
