/root/repo/target/debug/examples/agile_cluster-ca4e0a8121e6ae96.d: examples/agile_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libagile_cluster-ca4e0a8121e6ae96.rmeta: examples/agile_cluster.rs Cargo.toml

examples/agile_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
