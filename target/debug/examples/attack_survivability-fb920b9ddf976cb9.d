/root/repo/target/debug/examples/attack_survivability-fb920b9ddf976cb9.d: examples/attack_survivability.rs

/root/repo/target/debug/examples/attack_survivability-fb920b9ddf976cb9: examples/attack_survivability.rs

examples/attack_survivability.rs:
