/root/repo/target/debug/examples/capacity_planning-e5b09d395b7c787b.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-e5b09d395b7c787b: examples/capacity_planning.rs

examples/capacity_planning.rs:
