/root/repo/target/debug/examples/trace_replay-dccdc322ec523688.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-dccdc322ec523688: examples/trace_replay.rs

examples/trace_replay.rs:
