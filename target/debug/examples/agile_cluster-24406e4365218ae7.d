/root/repo/target/debug/examples/agile_cluster-24406e4365218ae7.d: examples/agile_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libagile_cluster-24406e4365218ae7.rmeta: examples/agile_cluster.rs Cargo.toml

examples/agile_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
