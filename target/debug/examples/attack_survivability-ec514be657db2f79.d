/root/repo/target/debug/examples/attack_survivability-ec514be657db2f79.d: examples/attack_survivability.rs Cargo.toml

/root/repo/target/debug/examples/libattack_survivability-ec514be657db2f79.rmeta: examples/attack_survivability.rs Cargo.toml

examples/attack_survivability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
