/root/repo/target/debug/examples/golden_capture-8c856b3434a6ca33.d: examples/golden_capture.rs

/root/repo/target/debug/examples/golden_capture-8c856b3434a6ca33: examples/golden_capture.rs

examples/golden_capture.rs:
