/root/repo/target/debug/examples/agile_cluster-efc6d136ec93414f.d: examples/agile_cluster.rs

/root/repo/target/debug/examples/agile_cluster-efc6d136ec93414f: examples/agile_cluster.rs

examples/agile_cluster.rs:
