/root/repo/target/debug/examples/agile_cluster-af4d681a62783fc4.d: examples/agile_cluster.rs

/root/repo/target/debug/examples/agile_cluster-af4d681a62783fc4: examples/agile_cluster.rs

examples/agile_cluster.rs:
