/root/repo/target/debug/examples/capacity_planning-74d12a6edcabe865.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-74d12a6edcabe865: examples/capacity_planning.rs

examples/capacity_planning.rs:
