/root/repo/target/debug/examples/quickstart-db9a0aa797f2e666.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-db9a0aa797f2e666: examples/quickstart.rs

examples/quickstart.rs:
