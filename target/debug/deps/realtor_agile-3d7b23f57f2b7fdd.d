/root/repo/target/debug/deps/realtor_agile-3d7b23f57f2b7fdd.d: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

/root/repo/target/debug/deps/librealtor_agile-3d7b23f57f2b7fdd.rlib: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

/root/repo/target/debug/deps/librealtor_agile-3d7b23f57f2b7fdd.rmeta: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

crates/agile/src/lib.rs:
crates/agile/src/clock.rs:
crates/agile/src/cluster.rs:
crates/agile/src/codec.rs:
crates/agile/src/component.rs:
crates/agile/src/host.rs:
crates/agile/src/naming.rs:
crates/agile/src/transport.rs:
