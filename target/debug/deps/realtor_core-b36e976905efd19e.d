/root/repo/target/debug/deps/realtor_core-b36e976905efd19e.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/adaptive_pull.rs crates/core/src/baselines/adaptive_push.rs crates/core/src/baselines/pure_pull.rs crates/core/src/baselines/pure_push.rs crates/core/src/community.rs crates/core/src/config.rs crates/core/src/factory.rs crates/core/src/help.rs crates/core/src/inter_community.rs crates/core/src/message.rs crates/core/src/pledge.rs crates/core/src/protocol.rs crates/core/src/realtor.rs crates/core/src/resources.rs

/root/repo/target/debug/deps/realtor_core-b36e976905efd19e: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/adaptive_pull.rs crates/core/src/baselines/adaptive_push.rs crates/core/src/baselines/pure_pull.rs crates/core/src/baselines/pure_push.rs crates/core/src/community.rs crates/core/src/config.rs crates/core/src/factory.rs crates/core/src/help.rs crates/core/src/inter_community.rs crates/core/src/message.rs crates/core/src/pledge.rs crates/core/src/protocol.rs crates/core/src/realtor.rs crates/core/src/resources.rs

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/adaptive_pull.rs:
crates/core/src/baselines/adaptive_push.rs:
crates/core/src/baselines/pure_pull.rs:
crates/core/src/baselines/pure_push.rs:
crates/core/src/community.rs:
crates/core/src/config.rs:
crates/core/src/factory.rs:
crates/core/src/help.rs:
crates/core/src/inter_community.rs:
crates/core/src/message.rs:
crates/core/src/pledge.rs:
crates/core/src/protocol.rs:
crates/core/src/realtor.rs:
crates/core/src/resources.rs:
