/root/repo/target/debug/deps/golden_figures-4c3d3ae362d54eb8.d: tests/golden_figures.rs

/root/repo/target/debug/deps/golden_figures-4c3d3ae362d54eb8: tests/golden_figures.rs

tests/golden_figures.rs:
