/root/repo/target/debug/deps/proptests-e1e54308e4f98760.d: crates/workload/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e1e54308e4f98760.rmeta: crates/workload/tests/proptests.rs Cargo.toml

crates/workload/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
