/root/repo/target/debug/deps/fig9_cluster-fd180748337b1e9c.d: crates/bench/benches/fig9_cluster.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_cluster-fd180748337b1e9c.rmeta: crates/bench/benches/fig9_cluster.rs Cargo.toml

crates/bench/benches/fig9_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
