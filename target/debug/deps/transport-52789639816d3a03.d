/root/repo/target/debug/deps/transport-52789639816d3a03.d: crates/bench/benches/transport.rs

/root/repo/target/debug/deps/transport-52789639816d3a03: crates/bench/benches/transport.rs

crates/bench/benches/transport.rs:
