/root/repo/target/debug/deps/micro-d5fc616263883eec.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-d5fc616263883eec.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
