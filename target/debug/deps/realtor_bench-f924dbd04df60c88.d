/root/repo/target/debug/deps/realtor_bench-f924dbd04df60c88.d: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_bench-f924dbd04df60c88.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
