/root/repo/target/debug/deps/realtor-2552eaf48b09e763.d: src/lib.rs

/root/repo/target/debug/deps/librealtor-2552eaf48b09e763.rlib: src/lib.rs

/root/repo/target/debug/deps/librealtor-2552eaf48b09e763.rmeta: src/lib.rs

src/lib.rs:
