/root/repo/target/debug/deps/fig8_migration-f3e42f0773b66936.d: crates/bench/benches/fig8_migration.rs

/root/repo/target/debug/deps/fig8_migration-f3e42f0773b66936: crates/bench/benches/fig8_migration.rs

crates/bench/benches/fig8_migration.rs:
