/root/repo/target/debug/deps/proptests-8f34646864fa2c8c.d: crates/net/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8f34646864fa2c8c.rmeta: crates/net/tests/proptests.rs Cargo.toml

crates/net/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
