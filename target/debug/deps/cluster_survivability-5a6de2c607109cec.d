/root/repo/target/debug/deps/cluster_survivability-5a6de2c607109cec.d: tests/cluster_survivability.rs

/root/repo/target/debug/deps/cluster_survivability-5a6de2c607109cec: tests/cluster_survivability.rs

tests/cluster_survivability.rs:
