/root/repo/target/debug/deps/fig6_messages-d0f980e1fe60b9ba.d: crates/bench/benches/fig6_messages.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_messages-d0f980e1fe60b9ba.rmeta: crates/bench/benches/fig6_messages.rs Cargo.toml

crates/bench/benches/fig6_messages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
