/root/repo/target/debug/deps/bench_smoke-7f30360afbafb346.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/debug/deps/bench_smoke-7f30360afbafb346: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
