/root/repo/target/debug/deps/realtor_agile-79250b0bf97fc631.d: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

/root/repo/target/debug/deps/librealtor_agile-79250b0bf97fc631.rlib: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

/root/repo/target/debug/deps/librealtor_agile-79250b0bf97fc631.rmeta: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs

crates/agile/src/lib.rs:
crates/agile/src/clock.rs:
crates/agile/src/cluster.rs:
crates/agile/src/codec.rs:
crates/agile/src/component.rs:
crates/agile/src/host.rs:
crates/agile/src/naming.rs:
crates/agile/src/transport.rs:
