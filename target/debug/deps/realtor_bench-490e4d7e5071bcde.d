/root/repo/target/debug/deps/realtor_bench-490e4d7e5071bcde.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/librealtor_bench-490e4d7e5071bcde.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/librealtor_bench-490e4d7e5071bcde.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
