/root/repo/target/debug/deps/hermetic-1ad0e5fb97432c2e.d: tests/hermetic.rs

/root/repo/target/debug/deps/hermetic-1ad0e5fb97432c2e: tests/hermetic.rs

tests/hermetic.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
