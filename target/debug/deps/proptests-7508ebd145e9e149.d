/root/repo/target/debug/deps/proptests-7508ebd145e9e149.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7508ebd145e9e149: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
