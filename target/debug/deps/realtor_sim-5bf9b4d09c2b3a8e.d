/root/repo/target/debug/deps/realtor_sim-5bf9b4d09c2b3a8e.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_sim-5bf9b4d09c2b3a8e.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sweep.rs:
crates/sim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
