/root/repo/target/debug/deps/realtor_bench-ff9c209909534aba.d: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_bench-ff9c209909534aba.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
