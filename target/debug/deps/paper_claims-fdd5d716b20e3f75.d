/root/repo/target/debug/deps/paper_claims-fdd5d716b20e3f75.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-fdd5d716b20e3f75: tests/paper_claims.rs

tests/paper_claims.rs:
