/root/repo/target/debug/deps/conformance-75eae9e3e2177997.d: crates/core/tests/conformance.rs

/root/repo/target/debug/deps/conformance-75eae9e3e2177997: crates/core/tests/conformance.rs

crates/core/tests/conformance.rs:
