/root/repo/target/debug/deps/proptests-38d03a73c6d0d0b3.d: crates/node/tests/proptests.rs

/root/repo/target/debug/deps/proptests-38d03a73c6d0d0b3: crates/node/tests/proptests.rs

crates/node/tests/proptests.rs:
