/root/repo/target/debug/deps/micro-14bb5fe3c2e6d007.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-14bb5fe3c2e6d007.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
