/root/repo/target/debug/deps/hermetic-565ce25ae8ecf1c6.d: tests/hermetic.rs Cargo.toml

/root/repo/target/debug/deps/libhermetic-565ce25ae8ecf1c6.rmeta: tests/hermetic.rs Cargo.toml

tests/hermetic.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
