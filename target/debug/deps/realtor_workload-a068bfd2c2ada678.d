/root/repo/target/debug/deps/realtor_workload-a068bfd2c2ada678.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/realtor_workload-a068bfd2c2ada678: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/attack.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
