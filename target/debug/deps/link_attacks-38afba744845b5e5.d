/root/repo/target/debug/deps/link_attacks-38afba744845b5e5.d: crates/sim/tests/link_attacks.rs Cargo.toml

/root/repo/target/debug/deps/liblink_attacks-38afba744845b5e5.rmeta: crates/sim/tests/link_attacks.rs Cargo.toml

crates/sim/tests/link_attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
