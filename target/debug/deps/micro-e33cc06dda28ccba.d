/root/repo/target/debug/deps/micro-e33cc06dda28ccba.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-e33cc06dda28ccba: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
