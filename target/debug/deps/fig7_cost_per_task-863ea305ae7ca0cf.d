/root/repo/target/debug/deps/fig7_cost_per_task-863ea305ae7ca0cf.d: crates/bench/benches/fig7_cost_per_task.rs

/root/repo/target/debug/deps/fig7_cost_per_task-863ea305ae7ca0cf: crates/bench/benches/fig7_cost_per_task.rs

crates/bench/benches/fig7_cost_per_task.rs:
