/root/repo/target/debug/deps/algorithms-bf43ad786090b5dd.d: crates/core/tests/algorithms.rs

/root/repo/target/debug/deps/algorithms-bf43ad786090b5dd: crates/core/tests/algorithms.rs

crates/core/tests/algorithms.rs:
