/root/repo/target/debug/deps/cluster_survivability-5b7e74de2e2c0217.d: tests/cluster_survivability.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_survivability-5b7e74de2e2c0217.rmeta: tests/cluster_survivability.rs Cargo.toml

tests/cluster_survivability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
