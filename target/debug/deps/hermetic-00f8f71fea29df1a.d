/root/repo/target/debug/deps/hermetic-00f8f71fea29df1a.d: tests/hermetic.rs

/root/repo/target/debug/deps/hermetic-00f8f71fea29df1a: tests/hermetic.rs

tests/hermetic.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
