/root/repo/target/debug/deps/bench_smoke-bff47b087b54a72a.d: crates/bench/src/bin/bench_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libbench_smoke-bff47b087b54a72a.rmeta: crates/bench/src/bin/bench_smoke.rs Cargo.toml

crates/bench/src/bin/bench_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
