/root/repo/target/debug/deps/realtor-9f98e39020dae494.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librealtor-9f98e39020dae494.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
