/root/repo/target/debug/deps/realtor_simcore-a5d919d4e4b91607.d: crates/simcore/src/lib.rs crates/simcore/src/check.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/plot.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_simcore-a5d919d4e4b91607.rmeta: crates/simcore/src/lib.rs crates/simcore/src/check.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/plot.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/check.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/event.rs:
crates/simcore/src/plot.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/table.rs:
crates/simcore/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
