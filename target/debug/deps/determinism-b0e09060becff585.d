/root/repo/target/debug/deps/determinism-b0e09060becff585.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-b0e09060becff585: tests/determinism.rs

tests/determinism.rs:
