/root/repo/target/debug/deps/proptests-80f04ffe2c98bec3.d: crates/simcore/tests/proptests.rs

/root/repo/target/debug/deps/proptests-80f04ffe2c98bec3: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
