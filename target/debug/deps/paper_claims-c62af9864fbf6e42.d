/root/repo/target/debug/deps/paper_claims-c62af9864fbf6e42.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c62af9864fbf6e42: tests/paper_claims.rs

tests/paper_claims.rs:
