/root/repo/target/debug/deps/proptests-43cc53edf88016b7.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-43cc53edf88016b7: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
