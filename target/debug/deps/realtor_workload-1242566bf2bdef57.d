/root/repo/target/debug/deps/realtor_workload-1242566bf2bdef57.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_workload-1242566bf2bdef57.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/attack.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
