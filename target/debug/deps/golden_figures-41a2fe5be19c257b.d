/root/repo/target/debug/deps/golden_figures-41a2fe5be19c257b.d: tests/golden_figures.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_figures-41a2fe5be19c257b.rmeta: tests/golden_figures.rs Cargo.toml

tests/golden_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
