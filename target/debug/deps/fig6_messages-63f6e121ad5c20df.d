/root/repo/target/debug/deps/fig6_messages-63f6e121ad5c20df.d: crates/bench/benches/fig6_messages.rs

/root/repo/target/debug/deps/fig6_messages-63f6e121ad5c20df: crates/bench/benches/fig6_messages.rs

crates/bench/benches/fig6_messages.rs:
