/root/repo/target/debug/deps/conformance-398a55263529f88c.d: crates/core/tests/conformance.rs Cargo.toml

/root/repo/target/debug/deps/libconformance-398a55263529f88c.rmeta: crates/core/tests/conformance.rs Cargo.toml

crates/core/tests/conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
