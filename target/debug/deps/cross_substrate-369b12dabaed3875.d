/root/repo/target/debug/deps/cross_substrate-369b12dabaed3875.d: tests/cross_substrate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_substrate-369b12dabaed3875.rmeta: tests/cross_substrate.rs Cargo.toml

tests/cross_substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
