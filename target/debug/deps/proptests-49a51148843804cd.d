/root/repo/target/debug/deps/proptests-49a51148843804cd.d: crates/simcore/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-49a51148843804cd.rmeta: crates/simcore/tests/proptests.rs Cargo.toml

crates/simcore/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
