/root/repo/target/debug/deps/realtor_core-cc6989c5cc5fe7cd.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/adaptive_pull.rs crates/core/src/baselines/adaptive_push.rs crates/core/src/baselines/pure_pull.rs crates/core/src/baselines/pure_push.rs crates/core/src/community.rs crates/core/src/config.rs crates/core/src/factory.rs crates/core/src/help.rs crates/core/src/inter_community.rs crates/core/src/message.rs crates/core/src/pledge.rs crates/core/src/protocol.rs crates/core/src/realtor.rs crates/core/src/resources.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_core-cc6989c5cc5fe7cd.rmeta: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/adaptive_pull.rs crates/core/src/baselines/adaptive_push.rs crates/core/src/baselines/pure_pull.rs crates/core/src/baselines/pure_push.rs crates/core/src/community.rs crates/core/src/config.rs crates/core/src/factory.rs crates/core/src/help.rs crates/core/src/inter_community.rs crates/core/src/message.rs crates/core/src/pledge.rs crates/core/src/protocol.rs crates/core/src/realtor.rs crates/core/src/resources.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/adaptive_pull.rs:
crates/core/src/baselines/adaptive_push.rs:
crates/core/src/baselines/pure_pull.rs:
crates/core/src/baselines/pure_push.rs:
crates/core/src/community.rs:
crates/core/src/config.rs:
crates/core/src/factory.rs:
crates/core/src/help.rs:
crates/core/src/inter_community.rs:
crates/core/src/message.rs:
crates/core/src/pledge.rs:
crates/core/src/protocol.rs:
crates/core/src/realtor.rs:
crates/core/src/resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
