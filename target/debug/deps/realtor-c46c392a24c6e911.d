/root/repo/target/debug/deps/realtor-c46c392a24c6e911.d: src/lib.rs

/root/repo/target/debug/deps/realtor-c46c392a24c6e911: src/lib.rs

src/lib.rs:
