/root/repo/target/debug/deps/fig5_admission-20b854962ed17eb3.d: crates/bench/benches/fig5_admission.rs

/root/repo/target/debug/deps/fig5_admission-20b854962ed17eb3: crates/bench/benches/fig5_admission.rs

crates/bench/benches/fig5_admission.rs:
