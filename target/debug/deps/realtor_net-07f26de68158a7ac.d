/root/repo/target/debug/deps/realtor_net-07f26de68158a7ac.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/librealtor_net-07f26de68158a7ac.rlib: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/librealtor_net-07f26de68158a7ac.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
