/root/repo/target/debug/deps/realtor_sim-e4ecfed6f3c0de70.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_sim-e4ecfed6f3c0de70.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sweep.rs:
crates/sim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
