/root/repo/target/debug/deps/cross_substrate-12e7306f8d4ce784.d: tests/cross_substrate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_substrate-12e7306f8d4ce784.rmeta: tests/cross_substrate.rs Cargo.toml

tests/cross_substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
