/root/repo/target/debug/deps/cluster_survivability-2bfa6461e4339c06.d: tests/cluster_survivability.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_survivability-2bfa6461e4339c06.rmeta: tests/cluster_survivability.rs Cargo.toml

tests/cluster_survivability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
