/root/repo/target/debug/deps/bench_smoke-a02a319caa517ee6.d: crates/bench/src/bin/bench_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libbench_smoke-a02a319caa517ee6.rmeta: crates/bench/src/bin/bench_smoke.rs Cargo.toml

crates/bench/src/bin/bench_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
