/root/repo/target/debug/deps/cross_substrate-db99ee054a2207e8.d: tests/cross_substrate.rs

/root/repo/target/debug/deps/cross_substrate-db99ee054a2207e8: tests/cross_substrate.rs

tests/cross_substrate.rs:
