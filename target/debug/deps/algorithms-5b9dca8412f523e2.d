/root/repo/target/debug/deps/algorithms-5b9dca8412f523e2.d: crates/core/tests/algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithms-5b9dca8412f523e2.rmeta: crates/core/tests/algorithms.rs Cargo.toml

crates/core/tests/algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
