/root/repo/target/debug/deps/cross_substrate-e71b5287df2bd8bc.d: tests/cross_substrate.rs

/root/repo/target/debug/deps/cross_substrate-e71b5287df2bd8bc: tests/cross_substrate.rs

tests/cross_substrate.rs:
