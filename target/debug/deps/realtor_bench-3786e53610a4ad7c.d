/root/repo/target/debug/deps/realtor_bench-3786e53610a4ad7c.d: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_bench-3786e53610a4ad7c.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
