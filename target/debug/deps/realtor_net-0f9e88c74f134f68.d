/root/repo/target/debug/deps/realtor_net-0f9e88c74f134f68.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/realtor_net-0f9e88c74f134f68: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
