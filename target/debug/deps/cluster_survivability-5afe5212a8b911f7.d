/root/repo/target/debug/deps/cluster_survivability-5afe5212a8b911f7.d: tests/cluster_survivability.rs

/root/repo/target/debug/deps/cluster_survivability-5afe5212a8b911f7: tests/cluster_survivability.rs

tests/cluster_survivability.rs:
