/root/repo/target/debug/deps/fig8_migration-5fadab6c68500d56.d: crates/bench/benches/fig8_migration.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_migration-5fadab6c68500d56.rmeta: crates/bench/benches/fig8_migration.rs Cargo.toml

crates/bench/benches/fig8_migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
