/root/repo/target/debug/deps/realtor_workload-751aae744bb61ca1.d: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/librealtor_workload-751aae744bb61ca1.rlib: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/librealtor_workload-751aae744bb61ca1.rmeta: crates/workload/src/lib.rs crates/workload/src/arrival.rs crates/workload/src/attack.rs crates/workload/src/sizes.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/arrival.rs:
crates/workload/src/attack.rs:
crates/workload/src/sizes.rs:
crates/workload/src/trace.rs:
