/root/repo/target/debug/deps/realtor_node-7f2fd6b1a5a468b2.d: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

/root/repo/target/debug/deps/realtor_node-7f2fd6b1a5a468b2: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

crates/node/src/lib.rs:
crates/node/src/admission.rs:
crates/node/src/monitor.rs:
crates/node/src/queue.rs:
crates/node/src/rt.rs:
crates/node/src/scheduler.rs:
crates/node/src/task.rs:
