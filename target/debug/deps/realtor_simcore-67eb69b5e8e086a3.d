/root/repo/target/debug/deps/realtor_simcore-67eb69b5e8e086a3.d: crates/simcore/src/lib.rs crates/simcore/src/check.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/plot.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/librealtor_simcore-67eb69b5e8e086a3.rlib: crates/simcore/src/lib.rs crates/simcore/src/check.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/plot.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs

/root/repo/target/debug/deps/librealtor_simcore-67eb69b5e8e086a3.rmeta: crates/simcore/src/lib.rs crates/simcore/src/check.rs crates/simcore/src/engine.rs crates/simcore/src/event.rs crates/simcore/src/plot.rs crates/simcore/src/rng.rs crates/simcore/src/stats.rs crates/simcore/src/table.rs crates/simcore/src/time.rs

crates/simcore/src/lib.rs:
crates/simcore/src/check.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/event.rs:
crates/simcore/src/plot.rs:
crates/simcore/src/rng.rs:
crates/simcore/src/stats.rs:
crates/simcore/src/table.rs:
crates/simcore/src/time.rs:
