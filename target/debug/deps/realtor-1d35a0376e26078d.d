/root/repo/target/debug/deps/realtor-1d35a0376e26078d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librealtor-1d35a0376e26078d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
