/root/repo/target/debug/deps/transport-b8bf1a277aa744a0.d: crates/bench/benches/transport.rs Cargo.toml

/root/repo/target/debug/deps/libtransport-b8bf1a277aa744a0.rmeta: crates/bench/benches/transport.rs Cargo.toml

crates/bench/benches/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
