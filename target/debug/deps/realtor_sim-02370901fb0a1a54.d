/root/repo/target/debug/deps/realtor_sim-02370901fb0a1a54.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/realtor_sim-02370901fb0a1a54: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sweep.rs:
crates/sim/src/world.rs:
