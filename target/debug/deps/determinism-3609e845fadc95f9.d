/root/repo/target/debug/deps/determinism-3609e845fadc95f9.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-3609e845fadc95f9: tests/determinism.rs

tests/determinism.rs:
