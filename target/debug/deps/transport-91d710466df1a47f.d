/root/repo/target/debug/deps/transport-91d710466df1a47f.d: crates/bench/benches/transport.rs Cargo.toml

/root/repo/target/debug/deps/libtransport-91d710466df1a47f.rmeta: crates/bench/benches/transport.rs Cargo.toml

crates/bench/benches/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
