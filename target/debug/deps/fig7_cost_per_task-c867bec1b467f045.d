/root/repo/target/debug/deps/fig7_cost_per_task-c867bec1b467f045.d: crates/bench/benches/fig7_cost_per_task.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_cost_per_task-c867bec1b467f045.rmeta: crates/bench/benches/fig7_cost_per_task.rs Cargo.toml

crates/bench/benches/fig7_cost_per_task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
