/root/repo/target/debug/deps/proptests-03da9f8201e9df8e.d: crates/agile/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-03da9f8201e9df8e.rmeta: crates/agile/tests/proptests.rs Cargo.toml

crates/agile/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
