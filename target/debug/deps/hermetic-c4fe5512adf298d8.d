/root/repo/target/debug/deps/hermetic-c4fe5512adf298d8.d: tests/hermetic.rs Cargo.toml

/root/repo/target/debug/deps/libhermetic-c4fe5512adf298d8.rmeta: tests/hermetic.rs Cargo.toml

tests/hermetic.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
