/root/repo/target/debug/deps/bench_smoke-4e65c505f9749e06.d: crates/bench/src/bin/bench_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libbench_smoke-4e65c505f9749e06.rmeta: crates/bench/src/bin/bench_smoke.rs Cargo.toml

crates/bench/src/bin/bench_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
