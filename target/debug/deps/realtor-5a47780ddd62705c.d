/root/repo/target/debug/deps/realtor-5a47780ddd62705c.d: src/lib.rs

/root/repo/target/debug/deps/librealtor-5a47780ddd62705c.rlib: src/lib.rs

/root/repo/target/debug/deps/librealtor-5a47780ddd62705c.rmeta: src/lib.rs

src/lib.rs:
