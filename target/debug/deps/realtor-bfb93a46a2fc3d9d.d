/root/repo/target/debug/deps/realtor-bfb93a46a2fc3d9d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librealtor-bfb93a46a2fc3d9d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
