/root/repo/target/debug/deps/realtor_node-10cee0190e4c503a.d: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_node-10cee0190e4c503a.rmeta: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs Cargo.toml

crates/node/src/lib.rs:
crates/node/src/admission.rs:
crates/node/src/monitor.rs:
crates/node/src/queue.rs:
crates/node/src/rt.rs:
crates/node/src/scheduler.rs:
crates/node/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
