/root/repo/target/debug/deps/determinism-cd9ffc7fa7e8dc44.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-cd9ffc7fa7e8dc44.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
