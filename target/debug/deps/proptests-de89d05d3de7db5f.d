/root/repo/target/debug/deps/proptests-de89d05d3de7db5f.d: crates/agile/tests/proptests.rs

/root/repo/target/debug/deps/proptests-de89d05d3de7db5f: crates/agile/tests/proptests.rs

crates/agile/tests/proptests.rs:
