/root/repo/target/debug/deps/realtor_net-0012c05cb73021d4.d: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_net-0012c05cb73021d4.rmeta: crates/net/src/lib.rs crates/net/src/channel.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/routing.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/channel.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
