/root/repo/target/debug/deps/realtor-f285641d67bdc9ec.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librealtor-f285641d67bdc9ec.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
