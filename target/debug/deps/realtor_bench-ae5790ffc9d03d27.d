/root/repo/target/debug/deps/realtor_bench-ae5790ffc9d03d27.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/realtor_bench-ae5790ffc9d03d27: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
