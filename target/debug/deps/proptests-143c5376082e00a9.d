/root/repo/target/debug/deps/proptests-143c5376082e00a9.d: crates/workload/tests/proptests.rs

/root/repo/target/debug/deps/proptests-143c5376082e00a9: crates/workload/tests/proptests.rs

crates/workload/tests/proptests.rs:
