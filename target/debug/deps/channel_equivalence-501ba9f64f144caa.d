/root/repo/target/debug/deps/channel_equivalence-501ba9f64f144caa.d: tests/channel_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libchannel_equivalence-501ba9f64f144caa.rmeta: tests/channel_equivalence.rs Cargo.toml

tests/channel_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
