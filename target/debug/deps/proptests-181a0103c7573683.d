/root/repo/target/debug/deps/proptests-181a0103c7573683.d: crates/agile/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-181a0103c7573683.rmeta: crates/agile/tests/proptests.rs Cargo.toml

crates/agile/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
