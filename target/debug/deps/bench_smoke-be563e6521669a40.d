/root/repo/target/debug/deps/bench_smoke-be563e6521669a40.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/debug/deps/bench_smoke-be563e6521669a40: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
