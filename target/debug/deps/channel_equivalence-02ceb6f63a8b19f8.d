/root/repo/target/debug/deps/channel_equivalence-02ceb6f63a8b19f8.d: tests/channel_equivalence.rs

/root/repo/target/debug/deps/channel_equivalence-02ceb6f63a8b19f8: tests/channel_equivalence.rs

tests/channel_equivalence.rs:
