/root/repo/target/debug/deps/bench_smoke-d9631a11f2577dcc.d: crates/bench/src/bin/bench_smoke.rs

/root/repo/target/debug/deps/bench_smoke-d9631a11f2577dcc: crates/bench/src/bin/bench_smoke.rs

crates/bench/src/bin/bench_smoke.rs:
