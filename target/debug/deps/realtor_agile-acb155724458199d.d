/root/repo/target/debug/deps/realtor_agile-acb155724458199d.d: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/librealtor_agile-acb155724458199d.rmeta: crates/agile/src/lib.rs crates/agile/src/clock.rs crates/agile/src/cluster.rs crates/agile/src/codec.rs crates/agile/src/component.rs crates/agile/src/host.rs crates/agile/src/naming.rs crates/agile/src/transport.rs Cargo.toml

crates/agile/src/lib.rs:
crates/agile/src/clock.rs:
crates/agile/src/cluster.rs:
crates/agile/src/codec.rs:
crates/agile/src/component.rs:
crates/agile/src/host.rs:
crates/agile/src/naming.rs:
crates/agile/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
