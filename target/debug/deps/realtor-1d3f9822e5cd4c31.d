/root/repo/target/debug/deps/realtor-1d3f9822e5cd4c31.d: src/lib.rs

/root/repo/target/debug/deps/realtor-1d3f9822e5cd4c31: src/lib.rs

src/lib.rs:
