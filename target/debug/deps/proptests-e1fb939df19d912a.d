/root/repo/target/debug/deps/proptests-e1fb939df19d912a.d: crates/agile/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e1fb939df19d912a: crates/agile/tests/proptests.rs

crates/agile/tests/proptests.rs:
