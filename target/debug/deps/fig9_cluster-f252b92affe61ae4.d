/root/repo/target/debug/deps/fig9_cluster-f252b92affe61ae4.d: crates/bench/benches/fig9_cluster.rs

/root/repo/target/debug/deps/fig9_cluster-f252b92affe61ae4: crates/bench/benches/fig9_cluster.rs

crates/bench/benches/fig9_cluster.rs:
