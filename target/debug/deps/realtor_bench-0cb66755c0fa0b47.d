/root/repo/target/debug/deps/realtor_bench-0cb66755c0fa0b47.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/realtor_bench-0cb66755c0fa0b47: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
