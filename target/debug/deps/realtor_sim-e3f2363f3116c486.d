/root/repo/target/debug/deps/realtor_sim-e3f2363f3116c486.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/librealtor_sim-e3f2363f3116c486.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

/root/repo/target/debug/deps/librealtor_sim-e3f2363f3116c486.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/metrics.rs crates/sim/src/sweep.rs crates/sim/src/world.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sweep.rs:
crates/sim/src/world.rs:
