/root/repo/target/debug/deps/proptests-db85702e139ed489.d: crates/node/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-db85702e139ed489.rmeta: crates/node/tests/proptests.rs Cargo.toml

crates/node/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
