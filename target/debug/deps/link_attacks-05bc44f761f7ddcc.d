/root/repo/target/debug/deps/link_attacks-05bc44f761f7ddcc.d: crates/sim/tests/link_attacks.rs

/root/repo/target/debug/deps/link_attacks-05bc44f761f7ddcc: crates/sim/tests/link_attacks.rs

crates/sim/tests/link_attacks.rs:
