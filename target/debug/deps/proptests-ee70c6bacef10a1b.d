/root/repo/target/debug/deps/proptests-ee70c6bacef10a1b.d: crates/net/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ee70c6bacef10a1b: crates/net/tests/proptests.rs

crates/net/tests/proptests.rs:
