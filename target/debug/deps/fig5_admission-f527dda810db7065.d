/root/repo/target/debug/deps/fig5_admission-f527dda810db7065.d: crates/bench/benches/fig5_admission.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_admission-f527dda810db7065.rmeta: crates/bench/benches/fig5_admission.rs Cargo.toml

crates/bench/benches/fig5_admission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
