/root/repo/target/debug/deps/realtor_node-b99507596b32359a.d: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

/root/repo/target/debug/deps/librealtor_node-b99507596b32359a.rlib: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

/root/repo/target/debug/deps/librealtor_node-b99507596b32359a.rmeta: crates/node/src/lib.rs crates/node/src/admission.rs crates/node/src/monitor.rs crates/node/src/queue.rs crates/node/src/rt.rs crates/node/src/scheduler.rs crates/node/src/task.rs

crates/node/src/lib.rs:
crates/node/src/admission.rs:
crates/node/src/monitor.rs:
crates/node/src/queue.rs:
crates/node/src/rt.rs:
crates/node/src/scheduler.rs:
crates/node/src/task.rs:
