/root/repo/target/debug/deps/realtor_bench-1414f8b55757cfa5.d: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/librealtor_bench-1414f8b55757cfa5.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/librealtor_bench-1414f8b55757cfa5.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
