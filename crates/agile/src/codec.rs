//! Wire encoding for datagrams.
//!
//! The Agile Objects implementation sends HELP over IP multicast and PLEDGE
//! over UDP (§6), so discovery messages cross a byte boundary. This module
//! is that boundary: a small explicit binary codec over plain `Vec<u8>`
//! buffers — the format is four fixed-layout message types, and hand-rolling
//! keeps the wire honest and the dependency set closed (the workspace builds
//! with zero external crates).
//!
//! Layout: one tag byte, then fixed-width big-endian fields.

use realtor_core::{Advert, Help, Message, Pledge};
use realtor_simcore::SimTime;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "datagram truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_HELP: u8 = 0x01;
const TAG_PLEDGE: u8 = 0x02;
const TAG_ADVERT: u8 = 0x03;
const TAG_ADMISSION_REQ: u8 = 0x04;
const TAG_ADMISSION_REP: u8 = 0x05;

const FLAG_COMMIT: u8 = 0b01;
const FLAG_RECOVERY: u8 = 0b10;

/// Cap on the component snapshot carried by an admission request. Snapshots
/// are a few dozen bytes; anything larger on the wire is corruption, and
/// rejecting it here keeps a flipped length field from asking the decoder
/// for gigabytes.
const MAX_COMPONENT_BYTES: u32 = 64 * 1024;

/// Reliable admission-negotiation request (crosses the TCP-like channel as
/// bytes, like every other wire message).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRequest {
    /// Queue demand of the migrating component.
    pub size_secs: f64,
    /// Component snapshot; empty for a reserve-only probe (non-speculative
    /// first phase).
    pub component: Vec<u8>,
    /// True when this request transfers the component (commit), false for a
    /// reserve-only probe.
    pub commit: bool,
    /// True when the component is being re-admitted after its host died
    /// (supervised recovery) rather than freshly migrated — recovery
    /// admissions must not recount in the migration statistics.
    pub recovery: bool,
}

/// Reply to an [`AdmissionRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionReply {
    /// Whether the receiver admitted (or reserved) the work.
    pub accepted: bool,
}

/// Big-endian field writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start a payload with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an IEEE-754 `f64` in big-endian byte order.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Finish and take the payload.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Big-endian field reader over a byte slice; every accessor checks bounds
/// and returns [`CodecError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a big-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Encode a discovery message into a fresh datagram payload.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut buf = Writer::with_capacity(64);
    match msg {
        Message::Help(h) => {
            buf.put_u8(TAG_HELP);
            buf.put_u64(h.organizer as u64);
            buf.put_u32(h.member_count);
            buf.put_f64(h.urgency);
            buf.put_u8(h.relay_ttl);
        }
        Message::Pledge(p) => {
            buf.put_u8(TAG_PLEDGE);
            buf.put_u64(p.pledger as u64);
            buf.put_f64(p.headroom_secs);
            buf.put_u32(p.community_count);
            buf.put_f64(p.grant_probability);
            buf.put_u64(p.sent_at.ticks());
        }
        Message::Advert(a) => {
            buf.put_u8(TAG_ADVERT);
            buf.put_u64(a.advertiser as u64);
            buf.put_f64(a.headroom_secs);
            buf.put_u64(a.sent_at.ticks());
        }
    }
    buf.into_vec()
}

/// Decode a datagram payload back into a discovery message.
pub fn decode_message(payload: &[u8]) -> Result<Message, CodecError> {
    let mut buf = Reader::new(payload);
    match buf.get_u8()? {
        TAG_HELP => Ok(Message::Help(Help {
            organizer: buf.get_u64()? as usize,
            member_count: buf.get_u32()?,
            urgency: buf.get_f64()?,
            relay_ttl: buf.get_u8()?,
        })),
        TAG_PLEDGE => Ok(Message::Pledge(Pledge {
            pledger: buf.get_u64()? as usize,
            headroom_secs: buf.get_f64()?,
            community_count: buf.get_u32()?,
            grant_probability: buf.get_f64()?,
            sent_at: SimTime::from_ticks(buf.get_u64()?),
        })),
        TAG_ADVERT => Ok(Message::Advert(Advert {
            advertiser: buf.get_u64()? as usize,
            headroom_secs: buf.get_f64()?,
            sent_at: SimTime::from_ticks(buf.get_u64()?),
        })),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode an admission-negotiation request.
pub fn encode_admission_request(req: &AdmissionRequest) -> Vec<u8> {
    let mut buf = Writer::with_capacity(16 + req.component.len());
    buf.put_u8(TAG_ADMISSION_REQ);
    let mut flags = 0u8;
    if req.commit {
        flags |= FLAG_COMMIT;
    }
    if req.recovery {
        flags |= FLAG_RECOVERY;
    }
    buf.put_u8(flags);
    buf.put_f64(req.size_secs);
    buf.put_u32(req.component.len() as u32);
    let mut v = buf.into_vec();
    v.extend_from_slice(&req.component);
    v
}

/// Decode an admission-negotiation request; rejects truncation, unknown
/// tags, and absurd component lengths.
pub fn decode_admission_request(payload: &[u8]) -> Result<AdmissionRequest, CodecError> {
    let mut buf = Reader::new(payload);
    match buf.get_u8()? {
        TAG_ADMISSION_REQ => {
            let flags = buf.get_u8()?;
            let size_secs = buf.get_f64()?;
            let len = buf.get_u32()?;
            if len > MAX_COMPONENT_BYTES || (len as usize) > buf.remaining() {
                return Err(CodecError::Truncated);
            }
            let component = buf.take(len as usize)?.to_vec();
            Ok(AdmissionRequest {
                size_secs,
                component,
                commit: flags & FLAG_COMMIT != 0,
                recovery: flags & FLAG_RECOVERY != 0,
            })
        }
        t => Err(CodecError::BadTag(t)),
    }
}

/// Encode an admission reply.
pub fn encode_admission_reply(rep: &AdmissionReply) -> Vec<u8> {
    let mut buf = Writer::with_capacity(2);
    buf.put_u8(TAG_ADMISSION_REP);
    buf.put_u8(rep.accepted as u8);
    buf.into_vec()
}

/// Decode an admission reply.
pub fn decode_admission_reply(payload: &[u8]) -> Result<AdmissionReply, CodecError> {
    let mut buf = Reader::new(payload);
    match buf.get_u8()? {
        TAG_ADMISSION_REP => Ok(AdmissionReply {
            accepted: buf.get_u8()? != 0,
        }),
        t => Err(CodecError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let encoded = encode_message(&msg);
        let decoded = decode_message(&encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn help_round_trips() {
        round_trip(Message::Help(Help {
            organizer: 17,
            member_count: 12,
            urgency: 0.625,
            relay_ttl: 3,
        }));
    }

    #[test]
    fn pledge_round_trips() {
        round_trip(Message::Pledge(Pledge {
            pledger: 4,
            headroom_secs: 37.5,
            community_count: 9,
            grant_probability: 0.75,
            sent_at: SimTime::from_secs(12),
        }));
    }

    #[test]
    fn advert_round_trips() {
        round_trip(Message::Advert(Advert {
            advertiser: 3,
            headroom_secs: 99.0,
            sent_at: SimTime::from_secs(7),
        }));
    }

    #[test]
    fn truncated_rejected() {
        let full = encode_message(&Message::Advert(Advert {
            advertiser: 1,
            headroom_secs: 1.0,
            sent_at: SimTime::ZERO,
        }));
        for cut in 0..full.len() {
            assert_eq!(
                decode_message(&full[..cut]),
                Err(CodecError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(decode_message(&[0xFF, 0, 0, 0]), Err(CodecError::BadTag(0xFF)));
    }

    #[test]
    fn admission_request_round_trips() {
        for (commit, recovery) in [(false, false), (true, false), (true, true), (false, true)] {
            let req = AdmissionRequest {
                size_secs: 12.25,
                component: vec![1, 2, 3, 4, 5],
                commit,
                recovery,
            };
            let decoded = decode_admission_request(&encode_admission_request(&req)).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn admission_reply_round_trips() {
        for accepted in [false, true] {
            let rep = AdmissionReply { accepted };
            assert_eq!(
                decode_admission_reply(&encode_admission_reply(&rep)).unwrap(),
                rep
            );
        }
    }

    #[test]
    fn admission_request_truncations_rejected() {
        let full = encode_admission_request(&AdmissionRequest {
            size_secs: 3.0,
            component: vec![9; 16],
            commit: true,
            recovery: false,
        });
        for cut in 0..full.len() {
            assert_eq!(
                decode_admission_request(&full[..cut]),
                Err(CodecError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn admission_request_rejects_absurd_length() {
        let mut w = Writer::with_capacity(16);
        w.put_u8(TAG_ADMISSION_REQ);
        w.put_u8(FLAG_COMMIT);
        w.put_f64(1.0);
        w.put_u32(u32::MAX); // claims a 4 GiB component
        assert_eq!(
            decode_admission_request(&w.into_vec()),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn admission_messages_reject_wrong_tags() {
        assert_eq!(
            decode_admission_request(&[TAG_ADMISSION_REP, 1]),
            Err(CodecError::BadTag(TAG_ADMISSION_REP))
        );
        assert_eq!(
            decode_admission_reply(&[TAG_ADMISSION_REQ, 0]),
            Err(CodecError::BadTag(TAG_ADMISSION_REQ))
        );
    }

    #[test]
    fn reader_tracks_remaining() {
        let mut r = Reader::new(&[1, 0, 0, 0, 2]);
        assert_eq!(r.remaining(), 5);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u32().unwrap(), 2);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.get_u8(), Err(CodecError::Truncated));
    }
}
