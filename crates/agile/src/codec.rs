//! Wire encoding for datagrams.
//!
//! The Agile Objects implementation sends HELP over IP multicast and PLEDGE
//! over UDP (§6), so discovery messages cross a byte boundary. This module
//! is that boundary: a small explicit binary codec over `bytes` buffers (no
//! serde *format* crate is in the approved offline set, and the format is
//! four fixed-layout message types — hand-rolling keeps the wire honest and
//! the dependency set closed).
//!
//! Layout: one tag byte, then fixed-width big-endian fields.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use realtor_core::{Advert, Help, Message, Pledge};

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "datagram truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_HELP: u8 = 0x01;
const TAG_PLEDGE: u8 = 0x02;
const TAG_ADVERT: u8 = 0x03;

/// Encode a discovery message into a fresh datagram payload.
pub fn encode_message(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match msg {
        Message::Help(h) => {
            buf.put_u8(TAG_HELP);
            buf.put_u64(h.organizer as u64);
            buf.put_u32(h.member_count);
            buf.put_f64(h.urgency);
            buf.put_u8(h.relay_ttl);
        }
        Message::Pledge(p) => {
            buf.put_u8(TAG_PLEDGE);
            buf.put_u64(p.pledger as u64);
            buf.put_f64(p.headroom_secs);
            buf.put_u32(p.community_count);
            buf.put_f64(p.grant_probability);
        }
        Message::Advert(a) => {
            buf.put_u8(TAG_ADVERT);
            buf.put_u64(a.advertiser as u64);
            buf.put_f64(a.headroom_secs);
        }
    }
    buf.freeze()
}

/// Decode a datagram payload back into a discovery message.
pub fn decode_message(mut buf: Bytes) -> Result<Message, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    };
    match tag {
        TAG_HELP => {
            need(&buf, 8 + 4 + 8 + 1)?;
            Ok(Message::Help(Help {
                organizer: buf.get_u64() as usize,
                member_count: buf.get_u32(),
                urgency: buf.get_f64(),
                relay_ttl: buf.get_u8(),
            }))
        }
        TAG_PLEDGE => {
            need(&buf, 8 + 8 + 4 + 8)?;
            Ok(Message::Pledge(Pledge {
                pledger: buf.get_u64() as usize,
                headroom_secs: buf.get_f64(),
                community_count: buf.get_u32(),
                grant_probability: buf.get_f64(),
            }))
        }
        TAG_ADVERT => {
            need(&buf, 8 + 8)?;
            Ok(Message::Advert(Advert {
                advertiser: buf.get_u64() as usize,
                headroom_secs: buf.get_f64(),
            }))
        }
        t => Err(CodecError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let encoded = encode_message(&msg);
        let decoded = decode_message(encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn help_round_trips() {
        round_trip(Message::Help(Help {
            organizer: 17,
            member_count: 12,
            urgency: 0.625,
            relay_ttl: 3,
        }));
    }

    #[test]
    fn pledge_round_trips() {
        round_trip(Message::Pledge(Pledge {
            pledger: 4,
            headroom_secs: 37.5,
            community_count: 9,
            grant_probability: 0.75,
        }));
    }

    #[test]
    fn advert_round_trips() {
        round_trip(Message::Advert(Advert {
            advertiser: 3,
            headroom_secs: 99.0,
        }));
    }

    #[test]
    fn truncated_rejected() {
        let full = encode_message(&Message::Advert(Advert {
            advertiser: 1,
            headroom_secs: 1.0,
        }));
        for cut in 0..full.len() {
            let sliced = full.slice(0..cut);
            assert_eq!(decode_message(sliced), Err(CodecError::Truncated), "cut {cut}");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = Bytes::from_static(&[0xFF, 0, 0, 0]);
        assert_eq!(decode_message(buf), Err(CodecError::BadTag(0xFF)));
    }
}
