//! Migratable components.
//!
//! §6: *"we implement each task as a timer waiting to expire. This
//! considerably simplifies migration, as the only state of the task is the
//! current value of un-expired time."* [`AgileComponent`] is exactly that
//! object; [`AgileComponent::snapshot`]/[`AgileComponent::restore`] are the
//! state-transfer boundary the migration subsystem ships across hosts.

use crate::codec::{Reader, Writer};
use crate::naming::ComponentId;

/// A timer-style migratable component.
#[derive(Debug, Clone, PartialEq)]
pub struct AgileComponent {
    /// Identity, stable across migrations.
    pub id: ComponentId,
    /// Remaining un-expired time in (simulated) seconds.
    pub remaining_secs: f64,
    /// How many times this component has migrated (also the naming-service
    /// version of its current binding).
    pub migrations: u64,
}

impl AgileComponent {
    /// A fresh component with `size_secs` of work.
    pub fn new(id: ComponentId, size_secs: f64) -> Self {
        assert!(size_secs > 0.0);
        AgileComponent {
            id,
            remaining_secs: size_secs,
            migrations: 0,
        }
    }

    /// Serialize the migratable state.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut buf = Writer::with_capacity(24);
        buf.put_u64(self.id.0);
        buf.put_f64(self.remaining_secs);
        buf.put_u64(self.migrations);
        buf.into_vec()
    }

    /// Reconstruct from a snapshot; `None` on a malformed buffer.
    pub fn restore(snapshot: &[u8]) -> Option<Self> {
        let mut buf = Reader::new(snapshot);
        Some(AgileComponent {
            id: ComponentId(buf.get_u64().ok()?),
            remaining_secs: buf.get_f64().ok()?,
            migrations: buf.get_u64().ok()?,
        })
    }

    /// Account for one completed migration (bumps the naming version).
    pub fn migrated(&mut self) {
        self.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trip() {
        let mut c = AgileComponent::new(ComponentId(99), 12.5);
        c.migrated();
        c.remaining_secs = 7.25;
        let copy = AgileComponent::restore(&c.snapshot()).unwrap();
        assert_eq!(copy, c);
    }

    #[test]
    fn malformed_snapshot_rejected() {
        assert!(AgileComponent::restore(&[1, 2, 3]).is_none());
    }

    #[test]
    fn migration_counter() {
        let mut c = AgileComponent::new(ComponentId(1), 1.0);
        assert_eq!(c.migrations, 0);
        c.migrated();
        c.migrated();
        assert_eq!(c.migrations, 2);
    }
}
