//! Cluster orchestration: spawn N hosts on the in-process fabric, replay a
//! workload in scaled time, aggregate statistics — the machinery behind the
//! paper's Section-6 measurement (Figure 9).

use crate::clock::Clock;
use crate::host::{AdmissionRequest, Host, HostConfig, HostControl, HostStats};
use crate::naming::NameService;
use crate::transport::{request_channel, Network, RequestClient};
use realtor_workload::Trace;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of hosts (the paper's cluster: 20).
    pub hosts: usize,
    /// Per-host configuration.
    pub host: HostConfig,
    /// Simulated seconds per wall second (1.0 = real time).
    pub time_scale: f64,
    /// Datagram loss probability (HELP/PLEDGE only; negotiation is TCP-like
    /// and never lossy).
    pub loss_probability: f64,
    /// Datagram duplication probability (same scope as loss).
    pub duplication_probability: f64,
    /// Seed for the channel impairment model.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            hosts: 20,
            host: HostConfig::default(),
            time_scale: 1000.0,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            seed: 0,
        }
    }
}

/// Aggregated cluster statistics.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Tasks submitted.
    pub offered: u64,
    /// Tasks admitted at their arrival host.
    pub admitted_local: u64,
    /// Tasks admitted after migration.
    pub admitted_migrated: u64,
    /// Tasks rejected.
    pub rejected: u64,
    /// Successful migrations.
    pub migrations: u64,
    /// Tasks submitted to attacked (down) hosts.
    pub lost_to_attacks: u64,
    /// HELP floods sent.
    pub helps_sent: u64,
    /// Unicast datagrams sent.
    pub datagrams_sent: u64,
    /// Datagrams dropped by the loss model.
    pub datagrams_dropped: u64,
    /// Extra datagram copies created by the duplication model.
    pub datagrams_duplicated: u64,
    /// Mean wall-clock migration latency (seconds) and sample count.
    pub migration_latency_mean: f64,
    /// Number of migration-latency samples.
    pub migration_latency_count: u64,
    /// Components still registered in the naming service at shutdown.
    pub live_components: usize,
}

impl ClusterReport {
    /// Total admitted tasks.
    pub fn admitted(&self) -> u64 {
        self.admitted_local + self.admitted_migrated
    }

    /// The Figure-9 metric.
    pub fn admission_probability(&self) -> f64 {
        realtor_simcore::stats::ratio(self.admitted(), self.offered)
    }
}

/// A running cluster.
///
/// ```
/// use realtor_agile::{Cluster, ClusterConfig};
///
/// let cluster = Cluster::start(&ClusterConfig {
///     hosts: 3,
///     time_scale: 5_000.0, // 1 simulated second = 0.2 ms wall
///     ..Default::default()
/// });
/// cluster.submit(0, 2.5);
/// cluster.settle(1.0);
/// let report = cluster.shutdown();
/// assert_eq!(report.offered, 1);
/// assert_eq!(report.admitted(), 1);
/// ```
pub struct Cluster {
    controls: Vec<Sender<HostControl>>,
    stats: Vec<Arc<HostStats>>,
    threads: Vec<JoinHandle<()>>,
    naming: NameService,
    network: Network,
    clock: Clock,
}

impl Cluster {
    /// Build and start a cluster.
    pub fn start(cfg: &ClusterConfig) -> Cluster {
        assert!(cfg.hosts > 0);
        let clock = Clock::start(cfg.time_scale);
        let quality = realtor_net::LinkQuality {
            loss: cfg.loss_probability,
            duplication: cfg.duplication_probability,
            ..realtor_net::LinkQuality::IDEAL
        };
        let (network, endpoints) = Network::with_quality(cfg.hosts, quality, cfg.seed);
        let naming = NameService::new();

        let mut admission_clients: Vec<RequestClient<AdmissionRequest, bool>> = Vec::new();
        let mut admission_servers = Vec::new();
        for _ in 0..cfg.hosts {
            let (client, server) = request_channel();
            admission_clients.push(client);
            admission_servers.push(server);
        }

        let mut controls = Vec::new();
        let mut stats = Vec::new();
        let mut threads = Vec::new();
        let mut servers = admission_servers.into_iter();
        for (id, endpoint) in endpoints.into_iter().enumerate() {
            let (ctl_tx, ctl_rx) = channel();
            let host_stats = Arc::new(HostStats::default());
            let host = Host::new(
                id,
                cfg.host.clone(),
                clock,
                endpoint,
                ctl_rx,
                servers.next().expect("one server per host"),
                admission_clients.clone(),
                naming.clone(),
                Arc::clone(&host_stats),
            );
            controls.push(ctl_tx);
            stats.push(host_stats);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("agile-host-{id}"))
                    .spawn(move || host.run())
                    .expect("spawn host"),
            );
        }
        Cluster {
            controls,
            stats,
            threads,
            naming,
            network,
            clock,
        }
    }

    /// The cluster clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The shared naming service.
    pub fn naming(&self) -> &NameService {
        &self.naming
    }

    /// Submit one task to `host` immediately.
    pub fn submit(&self, host: usize, size_secs: f64) {
        let _ = self.controls[host].send(HostControl::Submit { size_secs });
    }

    /// Simulate an external attack on `host`: it stops answering datagrams
    /// and admission requests, and its queued work is lost.
    pub fn kill_host(&self, host: usize) {
        let _ = self.controls[host].send(HostControl::Kill);
    }

    /// Bring an attacked host back with fresh soft state.
    pub fn revive_host(&self, host: usize) {
        let _ = self.controls[host].send(HostControl::Revive);
    }

    /// Replay a workload trace in scaled time (blocks until the last arrival
    /// has been submitted).
    pub fn run_workload(&self, trace: &Trace) {
        for rec in &trace.records {
            self.clock.sleep_until(rec.at);
            self.submit(rec.node % self.controls.len(), rec.size_secs);
        }
    }

    /// Let in-flight work settle for `sim_secs` of simulated time.
    pub fn settle(&self, sim_secs: f64) {
        std::thread::sleep(
            self.clock
                .to_wall(realtor_simcore::SimDuration::from_secs_f64(sim_secs)),
        );
    }

    /// Stop every host and aggregate the statistics.
    pub fn shutdown(self) -> ClusterReport {
        for c in &self.controls {
            let _ = c.send(HostControl::Stop);
        }
        for t in self.threads {
            t.join().expect("host thread join");
        }
        let mut report = ClusterReport {
            datagrams_dropped: self.network.dropped_count(),
            datagrams_duplicated: self.network.duplicated_count(),
            live_components: self.naming.len(),
            ..Default::default()
        };
        let mut latency = realtor_simcore::stats::Welford::new();
        use std::sync::atomic::Ordering::Relaxed;
        for s in &self.stats {
            report.offered += s.offered.load(Relaxed);
            report.admitted_local += s.admitted_local.load(Relaxed);
            report.admitted_migrated += s.admitted_migrated.load(Relaxed);
            report.rejected += s.rejected.load(Relaxed);
            report.migrations += s.migrations_out.load(Relaxed);
            report.lost_to_attacks += s.lost_to_attacks.load(Relaxed);
            report.helps_sent += s.helps_sent.load(Relaxed);
            report.datagrams_sent += s.datagrams_sent.load(Relaxed);
            latency.merge(&s.migration_latency.lock().expect("latency lock"));
        }
        report.migration_latency_mean = latency.mean();
        report.migration_latency_count = latency.count();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realtor_simcore::SimTime;
    use realtor_workload::WorkloadSpec;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            hosts: 4,
            time_scale: 2000.0,
            ..Default::default()
        }
    }

    #[test]
    fn light_load_admits_everything() {
        let cluster = Cluster::start(&small_cfg());
        let trace = WorkloadSpec::paper(0.5, 4, SimTime::from_secs(60), 5).generate();
        cluster.run_workload(&trace);
        cluster.settle(5.0);
        let report = cluster.shutdown();
        assert_eq!(report.offered, trace.len() as u64);
        assert_eq!(report.rejected, 0, "light load must admit everything");
        assert_eq!(report.admitted(), report.offered);
    }

    #[test]
    fn overload_rejects_and_migrates() {
        // 4 hosts × 50 s queues; λ=4 of mean-5s tasks = 20 work-s/s against
        // 4 work-s/s of capacity: heavy overload.
        let cluster = Cluster::start(&small_cfg());
        let trace = WorkloadSpec::paper(4.0, 4, SimTime::from_secs(120), 6).generate();
        cluster.run_workload(&trace);
        cluster.settle(5.0);
        let report = cluster.shutdown();
        assert!(report.offered > 0);
        assert!(report.rejected > 0, "overload must reject some tasks");
        assert!(
            report.helps_sent > 0,
            "REALTOR must have solicited under overload"
        );
        let p = report.admission_probability();
        assert!(p > 0.1 && p < 0.95, "admission probability {p}");
    }

    #[test]
    fn submissions_count_once() {
        let cluster = Cluster::start(&small_cfg());
        for _ in 0..10 {
            cluster.submit(0, 1.0);
        }
        cluster.settle(3.0);
        let report = cluster.shutdown();
        assert_eq!(report.offered, 10);
        assert_eq!(report.admitted() + report.rejected, 10);
    }

    #[test]
    fn lossy_network_still_functions() {
        let mut cfg = small_cfg();
        cfg.loss_probability = 0.5;
        cfg.seed = 3;
        let cluster = Cluster::start(&cfg);
        let trace = WorkloadSpec::paper(3.0, 4, SimTime::from_secs(60), 7).generate();
        cluster.run_workload(&trace);
        cluster.settle(5.0);
        let report = cluster.shutdown();
        assert_eq!(report.offered, trace.len() as u64);
        // Soft state degrades gracefully: the cluster keeps admitting.
        assert!(report.admission_probability() > 0.2);
    }
}
