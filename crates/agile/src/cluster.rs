//! Cluster orchestration: spawn N hosts on the in-process fabric, replay a
//! workload in scaled time, aggregate statistics — the machinery behind the
//! paper's Section-6 measurement (Figure 9).
//!
//! Survivability: a supervisor thread watches every host — a thread that
//! ends without a clean stop has *crashed*, one that stops heartbeating is
//! *wedged* and gets fenced off — recovers the interrupted work from the
//! dead host's shared [`HostCore`] through bounded-retry re-admission, and
//! restarts the host amnesiac (fresh soft state, fresh transport channels,
//! re-joining discovery via HELP like any newcomer). Shutdown is
//! timeout-bounded and idempotent: a wedged host is fenced and detached,
//! never joined unconditionally, so it can never hang the driver. The
//! resulting [`ClusterReport`] must satisfy the simulator's ledger identity
//! `interrupted == recovered + destroyed` (see [`ClusterReport::validate`]).

use crate::clock::Clock;
use crate::host::{
    Host, HostConfig, HostControl, HostCore, HostStats, SubmitOutcome, EXIT_CRASHED, EXIT_RUNNING,
};
use crate::naming::NameService;
use crate::supervisor::{
    file_interrupts, recover_item, AdmissionDirectory, ClusterLedger, RecoveryItem,
    SupervisorConfig,
};
use crate::transport::{
    request_channel, Network, DEFAULT_MAILBOX_CAPACITY,
};
use realtor_simcore::metrics::MetricsSnapshot;
use realtor_simcore::stats::LogHistogram;
use realtor_simcore::trace::{TraceKind, TraceValue, Tracer};
use realtor_simcore::SimRng;
use realtor_workload::Trace;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering::Relaxed};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of hosts (the paper's cluster: 20).
    pub hosts: usize,
    /// Per-host configuration.
    pub host: HostConfig,
    /// Simulated seconds per wall second (1.0 = real time).
    pub time_scale: f64,
    /// Datagram loss probability (HELP/PLEDGE only; negotiation is TCP-like
    /// and never lossy).
    pub loss_probability: f64,
    /// Datagram duplication probability (same scope as loss).
    pub duplication_probability: f64,
    /// Seed for the channel impairment model, retry jitter, and supervisor
    /// target selection.
    pub seed: u64,
    /// Bound on each host's datagram inbox; overflow is shed and counted.
    pub mailbox_capacity: usize,
    /// Watchdog and recovery policy.
    pub supervisor: SupervisorConfig,
    /// Total wall-clock budget for [`Cluster::shutdown`]: hosts that have
    /// not ended by then are fenced and detached instead of joined.
    pub shutdown_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            hosts: 20,
            host: HostConfig::default(),
            time_scale: 1000.0,
            loss_probability: 0.0,
            duplication_probability: 0.0,
            seed: 0,
            mailbox_capacity: DEFAULT_MAILBOX_CAPACITY,
            supervisor: SupervisorConfig::default(),
            shutdown_timeout: Duration::from_secs(2),
        }
    }
}

/// How one host's final incarnation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostExitStatus {
    /// Ended cleanly on `Stop`.
    Stopped,
    /// Died without cleanup and was not (or not yet) restarted.
    Crashed,
    /// Stopped responding and was fenced off, never joined.
    Wedged,
}

/// Per-host exit record in the [`ClusterReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostExit {
    /// Host id.
    pub host: usize,
    /// How the final incarnation ended.
    pub status: HostExitStatus,
    /// Amnesiac restarts the supervisor performed for this host.
    pub restarts: u64,
}

/// Aggregated cluster statistics.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Tasks submitted.
    pub offered: u64,
    /// Tasks admitted at their arrival host.
    pub admitted_local: u64,
    /// Tasks admitted after migration.
    pub admitted_migrated: u64,
    /// Tasks rejected.
    pub rejected: u64,
    /// Successful migrations.
    pub migrations: u64,
    /// Tasks submitted to attacked (down) hosts.
    pub lost_to_attacks: u64,
    /// Queued tasks interrupted by host deaths.
    pub interrupted: u64,
    /// Interrupted tasks re-admitted at another host.
    pub recovered: u64,
    /// Interrupted tasks whose recovery failed or was abandoned.
    pub destroyed: u64,
    /// Recovery negotiation attempts charged (successful or not).
    pub recovery_tries: u64,
    /// Amnesiac host restarts performed by the supervisor.
    pub restarts: u64,
    /// Negotiation attempts retried after transient failures.
    pub negotiation_retries: u64,
    /// Negotiations abandoned by the deadline budget.
    pub negotiation_abandoned: u64,
    /// HELP floods sent.
    pub helps_sent: u64,
    /// Unicast datagrams sent.
    pub datagrams_sent: u64,
    /// Datagrams dropped by the loss model.
    pub datagrams_dropped: u64,
    /// Extra datagram copies created by the duplication model.
    pub datagrams_duplicated: u64,
    /// Datagrams shed because the destination inbox was full.
    pub shed_datagrams: u64,
    /// Admission requests refused by a full server queue (backpressure).
    pub shed_admissions: u64,
    /// Mean wall-clock migration latency (seconds) and sample count.
    pub migration_latency_mean: f64,
    /// Number of migration-latency samples.
    pub migration_latency_count: u64,
    /// Components still registered in the naming service at shutdown.
    pub live_components: usize,
    /// Maximum observed datagram-inbox depth per host, across every
    /// incarnation (see [`Network::mailbox_high_water`]) — attributes
    /// shed-on-full datagrams to the depth that caused them.
    pub mailbox_high_water: Vec<u64>,
    /// Wall-clock admission latency (nanoseconds, submit → admitted),
    /// merged across every host's histogram.
    pub admission_latency_ns: LogHistogram,
    /// Wall-clock recovery latency (nanoseconds, pickup → settled) for
    /// every interrupted component, recovered or destroyed.
    pub recovery_latency_ns: LogHistogram,
    /// How each host's final incarnation ended.
    pub host_exits: Vec<HostExit>,
}

impl ClusterReport {
    /// Total admitted tasks.
    pub fn admitted(&self) -> u64 {
        self.admitted_local + self.admitted_migrated
    }

    /// The Figure-9 metric.
    pub fn admission_probability(&self) -> f64 {
        realtor_simcore::stats::ratio(self.admitted(), self.offered)
    }

    /// Check the runtime's accounting identities: every offered task was
    /// admitted (locally or after migration) or rejected, and every
    /// interrupted task was recovered or destroyed — the same ledger
    /// discipline the simulator enforces.
    pub fn validate(&self) -> Result<(), String> {
        let accounted = self.admitted_local + self.admitted_migrated + self.rejected;
        if self.offered != accounted {
            return Err(format!(
                "conservation violated: offered {} != admitted_local {} + admitted_migrated {} + rejected {}",
                self.offered, self.admitted_local, self.admitted_migrated, self.rejected
            ));
        }
        if self.interrupted != self.recovered + self.destroyed {
            return Err(format!(
                "ledger violated: interrupted {} != recovered {} + destroyed {}",
                self.interrupted, self.recovered, self.destroyed
            ));
        }
        Ok(())
    }
}

/// One incarnation's runtime handles; replaced wholesale on restart.
struct SlotRuntime {
    control: Sender<HostControl>,
    handle: Option<JoinHandle<()>>,
    exit: Arc<AtomicU8>,
    fenced: Arc<AtomicBool>,
    beat: Arc<AtomicU64>,
    /// Supervisor bookkeeping: last observed heartbeat and when it moved.
    last_beat: u64,
    last_change: Instant,
    core: Arc<Mutex<HostCore>>,
    dead: Arc<AtomicBool>,
    control_pending: Arc<AtomicU64>,
}

/// One host slot: counters survive restarts, the runtime does not.
struct Slot {
    stats: Arc<HostStats>,
    restarts: AtomicU64,
    /// The last dead incarnation was wedged (vs crashed) — the exit status
    /// to report when the slot is down at shutdown.
    wedged: AtomicBool,
    runtime: Mutex<SlotRuntime>,
}

struct ClusterInner {
    cfg: ClusterConfig,
    slots: Vec<Slot>,
    directory: AdmissionDirectory,
    naming: NameService,
    network: Network,
    clock: Clock,
    ledger: Arc<ClusterLedger>,
    recovery: Arc<Mutex<Vec<RecoveryItem>>>,
    tracer: Tracer,
}

/// Spawn one host incarnation into `slot`-shaped runtime handles. The
/// transport inbox is freshly reattached and the admission client swapped
/// into the shared directory, so peers immediately reach the new
/// incarnation; `epoch` keeps component-id spaces of successive
/// incarnations disjoint.
#[allow(clippy::too_many_arguments)]
fn launch_host(
    id: usize,
    cfg: &ClusterConfig,
    clock: Clock,
    network: &Network,
    directory: &AdmissionDirectory,
    naming: &NameService,
    stats: Arc<HostStats>,
    recovery: Arc<Mutex<Vec<RecoveryItem>>>,
    ledger: Arc<ClusterLedger>,
    tracer: Tracer,
    epoch: u64,
) -> SlotRuntime {
    let endpoint = network.reattach(id);
    let (control, control_rx) = channel();
    let (client, admission_server) = request_channel();
    directory.install(id, client);
    let core = Arc::new(Mutex::new(HostCore::new(cfg.host.capacity_secs)));
    let dead = Arc::new(AtomicBool::new(false));
    let beat = Arc::new(AtomicU64::new(0));
    let fenced = Arc::new(AtomicBool::new(false));
    let exit = Arc::new(AtomicU8::new(EXIT_RUNNING));
    let control_pending = Arc::new(AtomicU64::new(0));
    let host = Host {
        id,
        cfg: cfg.host.clone(),
        clock,
        endpoint,
        control: control_rx,
        admission_server,
        directory: directory.clone(),
        naming: naming.clone(),
        stats,
        core: Arc::clone(&core),
        dead: Arc::clone(&dead),
        beat: Arc::clone(&beat),
        fenced: Arc::clone(&fenced),
        exit: Arc::clone(&exit),
        control_pending: Arc::clone(&control_pending),
        recovery,
        ledger,
        tracer,
        retry_rng: SimRng::indexed_stream(cfg.seed, "host-retry", ((epoch & 0xff) << 32) | id as u64),
        component_epoch: epoch,
    };
    let handle = std::thread::Builder::new()
        .name(format!("agile-host-{id}"))
        .spawn(move || host.run())
        .expect("spawn host");
    SlotRuntime {
        control,
        handle: Some(handle),
        exit,
        fenced,
        beat,
        last_beat: 0,
        last_change: Instant::now(),
        core,
        dead,
        control_pending,
    }
}

/// The supervisor: drain the recovery queue, then check every host for a
/// crash (thread finished without a clean stop) or a wedge (heartbeat
/// stale), recover its work, and restart it amnesiac.
fn supervise(inner: &ClusterInner, stop: &AtomicBool) {
    let sup = &inner.cfg.supervisor;
    let mut rng = SimRng::stream(inner.cfg.seed, "supervisor");
    while !stop.load(Relaxed) {
        let items: Vec<RecoveryItem> = {
            let mut q = inner.recovery.lock().expect("recovery queue lock");
            q.drain(..).collect()
        };
        for item in items {
            if stop.load(Relaxed) {
                // Shutdown raced in: hand the item back so shutdown can
                // settle it as destroyed instead of dropping it.
                inner.recovery.lock().expect("recovery queue lock").push(item);
                continue;
            }
            recover_item(
                &item,
                &inner.directory,
                &inner.naming,
                &inner.ledger,
                sup,
                &mut rng,
                &inner.tracer,
                inner.clock,
            );
        }
        for (id, slot) in inner.slots.iter().enumerate() {
            let mut rt = slot.runtime.lock().expect("slot runtime lock");
            let Some(handle) = &rt.handle else { continue };
            let died = if handle.is_finished() {
                let handle = rt.handle.take().expect("checked some");
                let _ = handle.join();
                if rt.exit.load(Relaxed) != EXIT_CRASHED {
                    continue; // clean stop (shutdown racing the watchdog)
                }
                true
            } else {
                let beat = rt.beat.load(Relaxed);
                if beat != rt.last_beat {
                    rt.last_beat = beat;
                    rt.last_change = Instant::now();
                    false
                } else if rt.last_change.elapsed() > sup.stall_timeout {
                    // Wedged: fence the incarnation (it must exit, untouched,
                    // whenever it wakes) and detach its thread — never join
                    // a thread that may never finish.
                    rt.fenced.store(true, Relaxed);
                    rt.dead.store(true, Relaxed);
                    drop(rt.handle.take());
                    slot.wedged.store(true, Relaxed);
                    true
                } else {
                    false
                }
            };
            if died {
                let now = inner.clock.now();
                let items = rt
                    .core
                    .lock()
                    .expect("core lock")
                    .drain_on_death(now, id, &inner.naming);
                file_interrupts(
                    items,
                    &inner.ledger,
                    &slot.stats,
                    &inner.tracer,
                    now,
                    &inner.recovery,
                );
                if sup.restart {
                    let epoch = slot.restarts.fetch_add(1, Relaxed) + 1;
                    *rt = launch_host(
                        id,
                        &inner.cfg,
                        inner.clock,
                        &inner.network,
                        &inner.directory,
                        &inner.naming,
                        Arc::clone(&slot.stats),
                        Arc::clone(&inner.recovery),
                        Arc::clone(&inner.ledger),
                        inner.tracer.clone(),
                        epoch,
                    );
                    inner.tracer.emit(
                        inner.clock.now(),
                        Some(id),
                        TraceKind::NodeRestore,
                        &[("epoch", TraceValue::U64(epoch))],
                    );
                    inner.tracer.count_node("node_restarts", id, 1);
                }
            }
        }
        std::thread::sleep(sup.poll);
    }
}

/// A running cluster.
///
/// ```
/// use realtor_agile::{Cluster, ClusterConfig};
///
/// let cluster = Cluster::start(&ClusterConfig {
///     hosts: 3,
///     time_scale: 5_000.0, // 1 simulated second = 0.2 ms wall
///     ..Default::default()
/// });
/// cluster.submit(0, 2.5);
/// cluster.quiesce(std::time::Duration::from_millis(5), std::time::Duration::from_secs(2));
/// let report = cluster.shutdown();
/// assert_eq!(report.offered, 1);
/// assert_eq!(report.admitted(), 1);
/// assert!(report.validate().is_ok());
/// ```
pub struct Cluster {
    inner: Arc<ClusterInner>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    supervisor_stop: Arc<AtomicBool>,
    report: Mutex<Option<ClusterReport>>,
}

impl Cluster {
    /// Build and start a cluster with tracing disabled.
    pub fn start(cfg: &ClusterConfig) -> Cluster {
        Self::start_with(cfg, Tracer::disabled())
    }

    /// Build and start a cluster that emits survivability events and
    /// per-host counters into `tracer` (the A14 trace schema).
    pub fn start_with(cfg: &ClusterConfig, tracer: Tracer) -> Cluster {
        assert!(cfg.hosts > 0);
        let clock = Clock::start(cfg.time_scale);
        let quality = realtor_net::LinkQuality {
            loss: cfg.loss_probability,
            duplication: cfg.duplication_probability,
            ..realtor_net::LinkQuality::IDEAL
        };
        let (network, endpoints) =
            Network::with_options(cfg.hosts, quality, cfg.seed, cfg.mailbox_capacity);
        drop(endpoints); // each slot reattaches its own inbox in launch_host
        let naming = NameService::new();
        // Placeholder clients (their server halves are dropped, so they
        // answer Closed); launch_host installs the real ones.
        let directory = AdmissionDirectory::new(
            (0..cfg.hosts).map(|_| request_channel().0).collect(),
        );
        let ledger = Arc::new(ClusterLedger::default());
        let recovery = Arc::new(Mutex::new(Vec::new()));
        let slots: Vec<Slot> = (0..cfg.hosts)
            .map(|id| {
                let stats = Arc::new(HostStats::default());
                let runtime = launch_host(
                    id,
                    cfg,
                    clock,
                    &network,
                    &directory,
                    &naming,
                    Arc::clone(&stats),
                    Arc::clone(&recovery),
                    Arc::clone(&ledger),
                    tracer.clone(),
                    0,
                );
                Slot {
                    stats,
                    restarts: AtomicU64::new(0),
                    wedged: AtomicBool::new(false),
                    runtime: Mutex::new(runtime),
                }
            })
            .collect();
        let inner = Arc::new(ClusterInner {
            cfg: cfg.clone(),
            slots,
            directory,
            naming,
            network,
            clock,
            ledger,
            recovery,
            tracer,
        });
        let supervisor_stop = Arc::new(AtomicBool::new(false));
        let supervisor = if cfg.supervisor.enabled {
            let sup_inner = Arc::clone(&inner);
            let sup_stop = Arc::clone(&supervisor_stop);
            Some(
                std::thread::Builder::new()
                    .name("agile-supervisor".into())
                    .spawn(move || supervise(&sup_inner, &sup_stop))
                    .expect("spawn supervisor"),
            )
        } else {
            None
        };
        Cluster {
            inner,
            supervisor: Mutex::new(supervisor),
            supervisor_stop,
            report: Mutex::new(None),
        }
    }

    /// The cluster clock.
    pub fn clock(&self) -> Clock {
        self.inner.clock
    }

    /// The shared naming service.
    pub fn naming(&self) -> &NameService {
        &self.inner.naming
    }

    /// The survivability ledger (live view; settled only after shutdown).
    pub fn ledger(&self) -> &ClusterLedger {
        &self.inner.ledger
    }

    /// Amnesiac restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.inner.slots.iter().map(|s| s.restarts.load(Relaxed)).sum()
    }

    /// A point-in-time [`MetricsSnapshot`] of the running cluster: ledger
    /// and transport counters, per-host admission counters, live and
    /// high-water mailbox-depth gauges, and the admission/recovery latency
    /// histograms — ready to render with
    /// [`MetricsSnapshot::to_prometheus_text`]. Safe to call concurrently
    /// with submissions, faults, and recovery.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let inner = &*self.inner;
        let mut snap = MetricsSnapshot::new(inner.clock.now().as_secs_f64());
        let ledger = &inner.ledger;
        snap.push_counter("agile_interrupted_total", None, ledger.interrupted.load(Relaxed));
        snap.push_counter("agile_recovered_total", None, ledger.recovered.load(Relaxed));
        snap.push_counter("agile_destroyed_total", None, ledger.destroyed.load(Relaxed));
        snap.push_counter("agile_recovery_tries_total", None, ledger.recovery_tries.load(Relaxed));
        snap.push_counter("agile_datagrams_dropped_total", None, inner.network.dropped_count());
        snap.push_counter("agile_datagrams_shed_total", None, inner.network.shed_count());
        snap.push_counter("agile_admissions_shed_total", None, inner.directory.shed_total());
        snap.push_gauge("agile_live_components", None, inner.naming.len() as f64);
        for (id, slot) in inner.slots.iter().enumerate() {
            let s = &slot.stats;
            snap.push_counter("agile_offered_total", Some(id), s.offered.load(Relaxed));
            snap.push_counter(
                "agile_admitted_total",
                Some(id),
                s.admitted_local.load(Relaxed) + s.admitted_migrated.load(Relaxed),
            );
            snap.push_counter("agile_rejected_total", Some(id), s.rejected.load(Relaxed));
            snap.push_counter("agile_restarts_total", Some(id), slot.restarts.load(Relaxed));
            snap.push_gauge(
                "agile_mailbox_depth",
                Some(id),
                inner.network.mailbox_depth(id) as f64,
            );
            snap.push_gauge(
                "agile_mailbox_high_water",
                Some(id),
                inner.network.mailbox_high_water(id) as f64,
            );
            snap.push_histogram(
                "agile_admission_latency_ns",
                Some(id),
                s.admission_latency_ns.lock().expect("latency lock").clone(),
            );
        }
        snap.push_histogram(
            "agile_recovery_latency_ns",
            None,
            ledger
                .recovery_latency_ns
                .lock()
                .expect("recovery latency lock")
                .clone(),
        );
        snap
    }

    /// Send a control message, keeping the pending-control accounting that
    /// [`Cluster::quiesce`] relies on. Returns false if the host's control
    /// channel is gone (its thread ended and was not restarted).
    fn send_control(&self, host: usize, msg: HostControl) -> bool {
        let rt = self.inner.slots[host].runtime.lock().expect("slot runtime lock");
        rt.control_pending.fetch_add(1, Relaxed);
        if rt.control.send(msg).is_err() {
            rt.control_pending.fetch_sub(1, Relaxed);
            return false;
        }
        true
    }

    /// Submit one task to `host` immediately (fire-and-forget).
    pub fn submit(&self, host: usize, size_secs: f64) {
        if !self.send_control(
            host,
            HostControl::Submit {
                size_secs,
                reply: None,
            },
        ) {
            let s = &self.inner.slots[host].stats;
            s.offered.fetch_add(1, Relaxed);
            s.rejected.fetch_add(1, Relaxed);
            s.lost_to_attacks.fetch_add(1, Relaxed);
        }
    }

    /// Submit one task and wait (up to `timeout`) for its admission outcome
    /// — the closed-loop client path. A task whose host thread is gone, or
    /// whose outcome does not arrive in time, reports [`SubmitOutcome::Lost`].
    pub fn submit_sync(&self, host: usize, size_secs: f64, timeout: Duration) -> SubmitOutcome {
        let (tx, rx) = channel();
        if !self.send_control(
            host,
            HostControl::Submit {
                size_secs,
                reply: Some(tx),
            },
        ) {
            let s = &self.inner.slots[host].stats;
            s.offered.fetch_add(1, Relaxed);
            s.rejected.fetch_add(1, Relaxed);
            s.lost_to_attacks.fetch_add(1, Relaxed);
            return SubmitOutcome::Lost;
        }
        rx.recv_timeout(timeout).unwrap_or(SubmitOutcome::Lost)
    }

    /// Simulate an external attack on `host`: it stops answering datagrams
    /// and admission requests; its queued work is interrupted and handed to
    /// the supervisor for recovery.
    pub fn kill_host(&self, host: usize) {
        self.inner.tracer.emit(
            self.inner.clock.now(),
            Some(host),
            TraceKind::NodeKill,
            &[("style", TraceValue::Str("cooperative"))],
        );
        self.inner.tracer.count_node("node_kills", host, 1);
        self.send_control(host, HostControl::Kill);
    }

    /// Bring an attacked host back with fresh soft state.
    pub fn revive_host(&self, host: usize) {
        self.send_control(host, HostControl::Revive);
        self.inner.tracer.emit(
            self.inner.clock.now(),
            Some(host),
            TraceKind::NodeRestore,
            &[("style", TraceValue::Str("revive"))],
        );
    }

    /// Kill `host`'s thread outright — no cleanup, no farewell. Its queued
    /// work stays in the shared core until the supervisor recovers it and
    /// restarts the host amnesiac.
    pub fn crash_host(&self, host: usize) {
        self.inner.tracer.emit(
            self.inner.clock.now(),
            Some(host),
            TraceKind::NodeKill,
            &[("style", TraceValue::Str("crash"))],
        );
        self.inner.tracer.count_node("node_kills", host, 1);
        self.send_control(host, HostControl::Crash);
    }

    /// Wedge `host` for `wall`: it stops heartbeating (and serving its
    /// control plane) until the stall elapses — from the supervisor's point
    /// of view, indistinguishable from a hung thread.
    pub fn stall_host(&self, host: usize, wall: Duration) {
        self.send_control(host, HostControl::Stall(wall));
    }

    /// Replay a workload trace in scaled time (blocks until the last arrival
    /// has been submitted).
    pub fn run_workload(&self, trace: &Trace) {
        for rec in &trace.records {
            self.inner.clock.sleep_until(rec.at);
            self.submit(rec.node % self.inner.slots.len(), rec.size_secs);
        }
    }

    /// Let in-flight work settle for `sim_secs` of simulated time.
    pub fn settle(&self, sim_secs: f64) {
        std::thread::sleep(
            self.inner
                .clock
                .to_wall(realtor_simcore::SimDuration::from_secs_f64(sim_secs)),
        );
    }

    /// Control messages sent but not yet processed by live hosts.
    fn pending_controls(&self) -> u64 {
        self.inner
            .slots
            .iter()
            .map(|s| {
                let rt = s.runtime.lock().expect("slot runtime lock");
                match &rt.handle {
                    // A dead, unrestarted host will never drain its queue;
                    // its leftovers must not block quiescence forever.
                    None => 0,
                    Some(h) if h.is_finished() => 0,
                    Some(_) => rt.control_pending.load(Relaxed),
                }
            })
            .sum()
    }

    /// Drain until the cluster is quiet — no datagram in any inbox, no
    /// admission request awaiting service, no unprocessed control message,
    /// no component awaiting recovery — continuously for `grace`, or give
    /// up after `max`. Returns whether quiescence was reached. This replaces
    /// fixed settle times: it is exact under light load and bounded under
    /// pathology (a wedged host pins its queues until the supervisor fences
    /// it).
    pub fn quiesce(&self, grace: Duration, max: Duration) -> bool {
        let deadline = Instant::now() + max;
        let mut quiet_since: Option<Instant> = None;
        loop {
            let busy = self.inner.network.in_flight() > 0
                || self.inner.directory.in_flight_total() > 0
                || self.pending_controls() > 0
                || !self.inner.recovery.lock().expect("recovery queue lock").is_empty();
            if busy {
                quiet_since = None;
            } else if quiet_since.get_or_insert_with(Instant::now).elapsed() >= grace {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Stop every host and aggregate the statistics. Idempotent — the first
    /// call computes the report, later calls (and [`Drop`]) return it
    /// unchanged — and bounded by [`ClusterConfig::shutdown_timeout`]: a
    /// wedged host is fenced and detached, so shutdown can never hang.
    pub fn shutdown(&self) -> ClusterReport {
        let mut cached = self.report.lock().expect("report lock");
        if let Some(r) = cached.as_ref() {
            return r.clone();
        }
        // Stop the supervisor first so it cannot race restarts against
        // the teardown below.
        self.supervisor_stop.store(true, Relaxed);
        if let Some(h) = self.supervisor.lock().expect("supervisor lock").take() {
            let _ = h.join();
        }
        let inner = &*self.inner;
        for slot in &inner.slots {
            let rt = slot.runtime.lock().expect("slot runtime lock");
            rt.control_pending.fetch_add(1, Relaxed);
            if rt.control.send(HostControl::Stop).is_err() {
                rt.control_pending.fetch_sub(1, Relaxed);
            }
        }
        let deadline = Instant::now() + inner.cfg.shutdown_timeout;
        let mut host_exits = Vec::with_capacity(inner.slots.len());
        for (id, slot) in inner.slots.iter().enumerate() {
            let mut rt = slot.runtime.lock().expect("slot runtime lock");
            let status = match rt.handle.take() {
                None => {
                    if slot.wedged.load(Relaxed) {
                        HostExitStatus::Wedged
                    } else {
                        HostExitStatus::Crashed
                    }
                }
                Some(handle) => {
                    while !handle.is_finished() && Instant::now() < deadline {
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    if handle.is_finished() {
                        let _ = handle.join();
                        if rt.exit.load(Relaxed) == EXIT_CRASHED {
                            HostExitStatus::Crashed
                        } else {
                            HostExitStatus::Stopped
                        }
                    } else {
                        // Out of budget: fence and detach, never hang.
                        rt.fenced.store(true, Relaxed);
                        rt.dead.store(true, Relaxed);
                        HostExitStatus::Wedged
                    }
                }
            };
            if status != HostExitStatus::Stopped {
                // A host that did not stop cleanly never interrupted its own
                // queue; settle its resident work through the ledger.
                let now = inner.clock.now();
                let items = rt
                    .core
                    .lock()
                    .expect("core lock")
                    .drain_on_death(now, id, &inner.naming);
                file_interrupts(
                    items,
                    &inner.ledger,
                    &slot.stats,
                    &inner.tracer,
                    now,
                    &inner.recovery,
                );
            }
            host_exits.push(HostExit {
                host: id,
                status,
                restarts: slot.restarts.load(Relaxed),
            });
        }
        // Recovery ends with the run: whatever is still queued is destroyed,
        // closing the ledger identity.
        let leftovers: Vec<RecoveryItem> = {
            let mut q = inner.recovery.lock().expect("recovery queue lock");
            q.drain(..).collect()
        };
        let now = inner.clock.now();
        for item in leftovers {
            inner.ledger.destroyed.fetch_add(1, Relaxed);
            inner.naming.unregister(item.component.id);
            inner.tracer.emit(
                now,
                Some(item.from_host),
                TraceKind::TaskDestroy,
                &[("component", TraceValue::U64(item.component.id.0))],
            );
            inner.tracer.count_node("runtime_destroyed", item.from_host, 1);
        }
        let mut report = ClusterReport {
            datagrams_dropped: inner.network.dropped_count(),
            datagrams_duplicated: inner.network.duplicated_count(),
            shed_datagrams: inner.network.shed_count(),
            shed_admissions: inner.directory.shed_total(),
            interrupted: inner.ledger.interrupted.load(Relaxed),
            recovered: inner.ledger.recovered.load(Relaxed),
            destroyed: inner.ledger.destroyed.load(Relaxed),
            recovery_tries: inner.ledger.recovery_tries.load(Relaxed),
            live_components: inner.naming.len(),
            mailbox_high_water: (0..inner.slots.len())
                .map(|h| inner.network.mailbox_high_water(h))
                .collect(),
            recovery_latency_ns: inner
                .ledger
                .recovery_latency_ns
                .lock()
                .expect("recovery latency lock")
                .clone(),
            host_exits,
            ..Default::default()
        };
        let mut latency = realtor_simcore::stats::Welford::new();
        for slot in &inner.slots {
            let s = &slot.stats;
            report.offered += s.offered.load(Relaxed);
            report.admitted_local += s.admitted_local.load(Relaxed);
            report.admitted_migrated += s.admitted_migrated.load(Relaxed);
            report.rejected += s.rejected.load(Relaxed);
            report.migrations += s.migrations_out.load(Relaxed);
            report.lost_to_attacks += s.lost_to_attacks.load(Relaxed);
            report.negotiation_retries += s.negotiation_retries.load(Relaxed);
            report.negotiation_abandoned += s.negotiation_abandoned.load(Relaxed);
            report.helps_sent += s.helps_sent.load(Relaxed);
            report.datagrams_sent += s.datagrams_sent.load(Relaxed);
            report.restarts += slot.restarts.load(Relaxed);
            latency.merge(&s.migration_latency.lock().expect("latency lock"));
            report
                .admission_latency_ns
                .merge(&s.admission_latency_ns.lock().expect("latency lock"));
        }
        report.migration_latency_mean = latency.mean();
        report.migration_latency_count = latency.count();
        *cached = Some(report.clone());
        report
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let done = self
            .report
            .lock()
            .map(|g| g.is_some())
            .unwrap_or(true);
        if !done {
            let _ = self.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realtor_simcore::SimTime;
    use realtor_workload::WorkloadSpec;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            hosts: 4,
            time_scale: 2000.0,
            ..Default::default()
        }
    }

    fn drain(cluster: &Cluster) {
        assert!(
            cluster.quiesce(Duration::from_millis(10), Duration::from_secs(10)),
            "cluster failed to quiesce"
        );
    }

    #[test]
    fn light_load_admits_everything() {
        let cluster = Cluster::start(&small_cfg());
        let trace = WorkloadSpec::paper(0.5, 4, SimTime::from_secs(60), 5).generate();
        cluster.run_workload(&trace);
        drain(&cluster);
        let report = cluster.shutdown();
        assert_eq!(report.offered, trace.len() as u64);
        assert_eq!(report.rejected, 0, "light load must admit everything");
        assert_eq!(report.admitted(), report.offered);
        assert_eq!(report.interrupted, 0);
        assert_eq!(report.restarts, 0);
        report.validate().expect("identities hold");
        assert!(report
            .host_exits
            .iter()
            .all(|e| e.status == HostExitStatus::Stopped));
    }

    #[test]
    fn overload_rejects_and_migrates() {
        // 4 hosts × 50 s queues; λ=4 of mean-5s tasks = 20 work-s/s against
        // 4 work-s/s of capacity: heavy overload.
        let cluster = Cluster::start(&small_cfg());
        let trace = WorkloadSpec::paper(4.0, 4, SimTime::from_secs(120), 6).generate();
        cluster.run_workload(&trace);
        drain(&cluster);
        let report = cluster.shutdown();
        assert!(report.offered > 0);
        assert!(report.rejected > 0, "overload must reject some tasks");
        assert!(
            report.helps_sent > 0,
            "REALTOR must have solicited under overload"
        );
        let p = report.admission_probability();
        assert!(p > 0.1 && p < 0.95, "admission probability {p}");
        report.validate().expect("identities hold");
    }

    #[test]
    fn submissions_count_once() {
        let cluster = Cluster::start(&small_cfg());
        for _ in 0..10 {
            cluster.submit(0, 1.0);
        }
        drain(&cluster);
        let report = cluster.shutdown();
        assert_eq!(report.offered, 10);
        assert_eq!(report.admitted() + report.rejected, 10);
    }

    #[test]
    fn lossy_network_still_functions() {
        let mut cfg = small_cfg();
        cfg.loss_probability = 0.5;
        cfg.seed = 3;
        let cluster = Cluster::start(&cfg);
        let trace = WorkloadSpec::paper(3.0, 4, SimTime::from_secs(60), 7).generate();
        cluster.run_workload(&trace);
        drain(&cluster);
        let report = cluster.shutdown();
        assert_eq!(report.offered, trace.len() as u64);
        // Soft state degrades gracefully: the cluster keeps admitting.
        assert!(report.admission_probability() > 0.2);
        report.validate().expect("identities hold");
    }

    #[test]
    fn shutdown_is_idempotent() {
        let cluster = Cluster::start(&small_cfg());
        cluster.submit(0, 1.0);
        drain(&cluster);
        let a = cluster.shutdown();
        let b = cluster.shutdown();
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.host_exits, b.host_exits);
    }

    #[test]
    fn metrics_snapshot_and_latency_histograms_are_populated() {
        let cluster = Cluster::start(&small_cfg());
        // Overload so discovery traffic (HELP floods) actually queues.
        let trace = WorkloadSpec::paper(4.0, 4, SimTime::from_secs(120), 6).generate();
        cluster.run_workload(&trace);
        drain(&cluster);
        let snap = cluster.metrics_snapshot();
        let text = snap.to_prometheus_text();
        assert!(text.contains("# TYPE agile_offered_total counter\n"));
        assert!(text.contains("agile_mailbox_high_water{host=\"0\"}"));
        assert!(text.contains("# TYPE agile_admission_latency_ns histogram\n"));
        assert!(text.contains("agile_recovery_latency_ns_count 0\n"));
        let report = cluster.shutdown();
        assert_eq!(report.mailbox_high_water.len(), 4);
        assert!(
            report.mailbox_high_water.iter().any(|&hw| hw > 0),
            "discovery traffic must have queued somewhere"
        );
        assert_eq!(
            report.admission_latency_ns.count(),
            report.admitted(),
            "every admission records one latency sample"
        );
        assert!(report.admission_latency_ns.max() > 0);
    }

    #[test]
    fn submit_sync_reports_the_outcome() {
        let cluster = Cluster::start(&small_cfg());
        let got = cluster.submit_sync(1, 2.0, Duration::from_secs(5));
        assert_eq!(got, SubmitOutcome::AdmittedLocal);
        cluster.kill_host(1);
        drain(&cluster);
        let got = cluster.submit_sync(1, 2.0, Duration::from_secs(5));
        assert_eq!(got, SubmitOutcome::Lost);
        let report = cluster.shutdown();
        report.validate().expect("identities hold");
    }
}
