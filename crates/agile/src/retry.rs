//! Bounded retry with exponential backoff and seeded jitter.
//!
//! The runtime's reliable exchanges (admission negotiation, recovery
//! re-admission, naming lookups after a lost reply) share one policy object:
//! a capped exponential backoff whose jitter draws from a [`SimRng`] stream,
//! so two clusters started from the same seed retry at the same instants.
//! Retries are *deadline-aware*: [`RetryPolicy::attempt_fits`] rejects a try
//! whose backoff-plus-timeout cannot complete inside the caller's budget —
//! the attempt is abandoned (and charged by the caller) instead of burning
//! wall clock past the point where success would still matter, mirroring the
//! simulator's `recovery_tries` ledger discipline.

use realtor_simcore::SimRng;
use std::time::Duration;

/// Capped exponential backoff with jitter and a bounded try count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_tries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Relative jitter in `[0, 1]`: each backoff is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_tries: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(16),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// One attempt, no backoff — the pre-survivability behaviour.
    pub fn single() -> Self {
        RetryPolicy {
            max_tries: 1,
            ..Default::default()
        }
    }

    /// Backoff to sleep before retry number `retry` (0-based: the wait
    /// before the second attempt is `backoff(0, ..)`). Exponential in the
    /// retry index, capped at [`RetryPolicy::cap`], jittered from `rng`.
    pub fn backoff(&self, retry: u32, rng: &mut SimRng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .min(self.cap);
        if self.jitter <= 0.0 {
            return exp;
        }
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * rng.f64();
        Duration::from_secs_f64(exp.as_secs_f64() * factor.max(0.0))
    }

    /// Deadline gate: does an attempt that first sleeps `backoff` and then
    /// waits up to `timeout` still fit inside the budget, given that
    /// `elapsed` of it is already spent? A `false` answer means the caller
    /// should abandon (and charge) the exchange instead of retrying.
    pub fn attempt_fits(
        &self,
        elapsed: Duration,
        backoff: Duration,
        timeout: Duration,
        budget: Duration,
    ) -> bool {
        elapsed + backoff + timeout <= budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_tries: 8,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            jitter: 0.0,
        };
        let mut rng = SimRng::from_seed(1);
        assert_eq!(p.backoff(0, &mut rng), Duration::from_millis(2));
        assert_eq!(p.backoff(1, &mut rng), Duration::from_millis(4));
        assert_eq!(p.backoff(2, &mut rng), Duration::from_millis(8));
        assert_eq!(p.backoff(3, &mut rng), Duration::from_millis(10));
        assert_eq!(p.backoff(60, &mut rng), Duration::from_millis(10));
    }

    #[test]
    fn jitter_stays_in_band_and_is_seeded() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..Default::default()
        };
        let mut a = SimRng::stream(7, "retry");
        let mut b = SimRng::stream(7, "retry");
        for retry in 0..20 {
            let d = p.backoff(retry, &mut a);
            let exact = p
                .base
                .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
                .min(p.cap)
                .as_secs_f64();
            let got = d.as_secs_f64();
            assert!(got >= exact * 0.5 - 1e-12 && got <= exact * 1.5 + 1e-12);
            assert_eq!(d, p.backoff(retry, &mut b), "same seed, same backoff");
        }
    }

    #[test]
    fn deadline_gate_abandons_unaffordable_attempts() {
        let p = RetryPolicy::default();
        let ms = Duration::from_millis;
        assert!(p.attempt_fits(ms(0), ms(2), ms(20), ms(100)));
        assert!(!p.attempt_fits(ms(90), ms(2), ms(20), ms(100)));
        // Boundary: exactly fitting is allowed.
        assert!(p.attempt_fits(ms(78), ms(2), ms(20), ms(100)));
    }

    #[test]
    fn single_means_one_attempt() {
        assert_eq!(RetryPolicy::single().max_tries, 1);
    }
}
