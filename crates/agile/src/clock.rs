//! Scaled wall-clock time.
//!
//! The paper's cluster measurement (§6) runs tasks that are "timers waiting
//! to expire" over thousands of simulated seconds. To keep `cargo test` and
//! the Figure-9 experiment fast, the cluster runs on a scaled clock: one
//! simulated second maps to `1/scale` wall seconds. All protocol logic reads
//! [`Clock::now`] (a [`SimTime`]), so host code is identical at any scale —
//! scale 1.0 is true real time.

use realtor_simcore::{SimDuration, SimTime};
use std::time::{Duration, Instant};

/// A monotonically increasing scaled clock shared by a cluster.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    start: Instant,
    /// Simulated seconds per wall second.
    scale: f64,
}

impl Clock {
    /// Start a clock at simulated time zero, running `scale`× real time.
    pub fn start(scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite());
        Clock {
            start: Instant::now(),
            scale,
        }
    }

    /// The scale factor (simulated seconds per wall second).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.start.elapsed().as_secs_f64() * self.scale)
    }

    /// Convert a simulated duration to the wall-clock duration to sleep.
    pub fn to_wall(&self, d: SimDuration) -> Duration {
        Duration::from_secs_f64(d.as_secs_f64() / self.scale)
    }

    /// Convert a wall duration into simulated time.
    pub fn to_sim(&self, d: Duration) -> SimDuration {
        SimDuration::from_secs_f64(d.as_secs_f64() * self.scale)
    }

    /// Sleep (wall time) until the simulated instant `t`; returns
    /// immediately if `t` has passed.
    pub fn sleep_until(&self, t: SimTime) {
        let now = self.now();
        if t > now {
            std::thread::sleep(self.to_wall(t - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_scaled() {
        let c = Clock::start(1000.0);
        std::thread::sleep(Duration::from_millis(10));
        let t = c.now().as_secs_f64();
        // 10 ms wall at 1000x ≈ 10 simulated seconds (generous bounds for CI).
        assert!(t >= 9.0, "clock too slow: {t}");
        assert!(t < 60.0, "clock ran away: {t}");
    }

    #[test]
    fn conversions_round_trip() {
        let c = Clock::start(100.0);
        let sim = SimDuration::from_secs(5);
        let wall = c.to_wall(sim);
        assert_eq!(wall, Duration::from_millis(50));
        let back = c.to_sim(wall);
        assert!((back.as_secs_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sleep_until_past_instant_is_instant() {
        let c = Clock::start(1000.0);
        std::thread::sleep(Duration::from_millis(2));
        let before = Instant::now();
        c.sleep_until(SimTime::ZERO);
        assert!(before.elapsed() < Duration::from_millis(5));
    }
}
