//! # realtor-agile — the Agile Objects runtime
//!
//! A thread-per-host implementation of the infrastructure the paper measures
//! in Section 6 (a 20-node Linux cluster running migratable Java
//! components), built on in-process transports with the same delivery
//! semantics as the paper's stack:
//!
//! * [`transport`] — UDP-like datagrams (PLEDGE), IP-multicast-like groups
//!   (HELP), TCP-like reliable request channels (admission negotiation),
//!   with a seeded loss model and bounded, shed-on-full queues,
//! * [`codec`] — the explicit binary wire format of discovery datagrams and
//!   admission negotiation,
//! * [`clock`] — scaled wall-clock time (1 simulated second = `1/scale`
//!   wall seconds; scale 1.0 is true real time),
//! * [`naming`] — the versioned Agile Object naming service,
//! * [`component`] — timer-style migratable components ("the only state of
//!   the task is the current value of un-expired time"),
//! * [`host`] — the per-host runtime: REALTOR agent + admission-control
//!   thread + migration subsystem (speculative or two-phase),
//! * [`retry`] — bounded, seeded, deadline-aware retry for the reliable
//!   exchanges,
//! * [`supervisor`] — the watchdog policy: crash/wedge detection, amnesiac
//!   restart, and supervised recovery of interrupted work under the
//!   `interrupted == recovered + destroyed` ledger identity,
//! * [`fault`] — live fault injection: replay simulator `AttackScenario`s
//!   (kill/restore waves) against the running cluster,
//! * [`cluster`] — orchestration, supervision, and the Figure-9 measurement.
//!
//! The discovery protocols themselves are the *same code* that runs under
//! the discrete-event simulator: `realtor_core::DiscoveryProtocol` instances
//! driven by real threads, real channels and a real (scaled) clock.

#![warn(missing_docs)]

pub mod clock;
pub mod cluster;
pub mod codec;
pub mod component;
pub mod fault;
pub mod host;
pub mod naming;
pub mod retry;
pub mod supervisor;
pub mod transport;

pub use clock::Clock;
pub use cluster::{Cluster, ClusterConfig, ClusterReport, HostExit, HostExitStatus};
pub use component::AgileComponent;
pub use fault::{FaultCommand, FaultOp, FaultPlan, FaultStyle};
pub use host::{HostConfig, HostStats, SubmitOutcome};
pub use naming::{ComponentId, NameService};
pub use retry::RetryPolicy;
pub use supervisor::{ClusterLedger, SupervisorConfig};
pub use transport::{Endpoint, HostId, Network, RequestError};
