//! The Agile Object Naming Service.
//!
//! §3: *"In addition, the naming service is updated to reflect the new
//! location of the component."* Components are located by id; every
//! migration installs a new binding with a monotonically increasing version
//! so that late updates from slow migrations can never roll the registry
//! back (idempotence under message reordering).

use crate::transport::HostId;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Globally unique component identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u64);

#[derive(Debug, Clone, Copy)]
struct Binding {
    host: HostId,
    version: u64,
}

/// Shared name service; cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct NameService {
    table: Arc<RwLock<HashMap<ComponentId, Binding>>>,
}

impl NameService {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new component at `host`; returns its initial version (0).
    /// Re-registering an existing component is an error upstream and panics
    /// in debug builds.
    pub fn register(&self, id: ComponentId, host: HostId) -> u64 {
        let mut t = self.table.write().expect("naming write lock");
        debug_assert!(!t.contains_key(&id), "component {id:?} already registered");
        t.insert(id, Binding { host, version: 0 });
        0
    }

    /// Record a migration: bind `id` to `host` with `version`. Updates with
    /// a version not newer than the current binding are ignored; returns
    /// whether the update was applied.
    pub fn update(&self, id: ComponentId, host: HostId, version: u64) -> bool {
        let mut t = self.table.write().expect("naming write lock");
        match t.get_mut(&id) {
            Some(b) if version > b.version => {
                b.host = host;
                b.version = version;
                true
            }
            Some(_) => false,
            None => {
                t.insert(id, Binding { host, version });
                true
            }
        }
    }

    /// Current host of `id`, if registered.
    pub fn lookup(&self, id: ComponentId) -> Option<HostId> {
        self.table.read().expect("naming read lock").get(&id).map(|b| b.host)
    }

    /// Current `(host, version)` of `id`.
    pub fn lookup_versioned(&self, id: ComponentId) -> Option<(HostId, u64)> {
        self.table.read().expect("naming read lock").get(&id).map(|b| (b.host, b.version))
    }

    /// Bounded-retry lookup: wait for `id` to be bound to `host`, polling
    /// with exponential backoff (`base`, doubling, up to `tries` looks).
    ///
    /// The migration subsystem uses this after an admission commit whose
    /// *reply* timed out: if the commit actually landed, the receiving
    /// Admission Control updates the binding a moment later, so a brief
    /// retried lookup distinguishes "request lost, safe to retry" from
    /// "reply lost, component already transferred" — without which a retry
    /// would double-admit the component.
    pub fn await_binding(
        &self,
        id: ComponentId,
        host: HostId,
        tries: u32,
        base: std::time::Duration,
    ) -> bool {
        let mut backoff = base;
        for attempt in 0..tries {
            if self.lookup(id) == Some(host) {
                return true;
            }
            if attempt + 1 < tries {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
        self.lookup(id) == Some(host)
    }

    /// Remove a completed component.
    pub fn unregister(&self, id: ComponentId) {
        self.table.write().expect("naming write lock").remove(&id);
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.table.read().expect("naming read lock").len()
    }

    /// True when no component is registered.
    pub fn is_empty(&self) -> bool {
        self.table.read().expect("naming read lock").is_empty()
    }

    /// Components currently bound to `host`.
    pub fn components_at(&self, host: HostId) -> Vec<ComponentId> {
        let mut v: Vec<ComponentId> = self
            .table
            .read()
            .expect("naming read lock")
            .iter()
            .filter(|(_, b)| b.host == host)
            .map(|(&id, _)| id)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_unregister() {
        let ns = NameService::new();
        ns.register(ComponentId(1), 3);
        assert_eq!(ns.lookup(ComponentId(1)), Some(3));
        assert_eq!(ns.len(), 1);
        ns.unregister(ComponentId(1));
        assert!(ns.is_empty());
        assert_eq!(ns.lookup(ComponentId(1)), None);
    }

    #[test]
    fn stale_updates_are_ignored() {
        let ns = NameService::new();
        ns.register(ComponentId(1), 0);
        assert!(ns.update(ComponentId(1), 5, 2));
        assert!(!ns.update(ComponentId(1), 9, 1), "older version must lose");
        assert!(!ns.update(ComponentId(1), 9, 2), "equal version must lose");
        assert_eq!(ns.lookup_versioned(ComponentId(1)), Some((5, 2)));
        assert!(ns.update(ComponentId(1), 9, 3));
        assert_eq!(ns.lookup(ComponentId(1)), Some(9));
    }

    #[test]
    fn components_at_host() {
        let ns = NameService::new();
        ns.register(ComponentId(1), 0);
        ns.register(ComponentId(2), 1);
        ns.register(ComponentId(3), 0);
        assert_eq!(ns.components_at(0), vec![ComponentId(1), ComponentId(3)]);
        assert_eq!(ns.components_at(2), vec![]);
    }

    #[test]
    fn await_binding_sees_a_late_update() {
        let ns = NameService::new();
        ns.register(ComponentId(5), 0);
        let writer = {
            let ns = ns.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                ns.update(ComponentId(5), 2, 1);
            })
        };
        assert!(ns.await_binding(
            ComponentId(5),
            2,
            8,
            std::time::Duration::from_millis(2)
        ));
        writer.join().unwrap();
        // A binding that never lands reports false after the bounded looks.
        assert!(!ns.await_binding(
            ComponentId(5),
            7,
            3,
            std::time::Duration::from_micros(100)
        ));
    }

    #[test]
    fn concurrent_updates_converge_to_highest_version() {
        let ns = NameService::new();
        ns.register(ComponentId(7), 0);
        let handles: Vec<_> = (1..=8u64)
            .map(|v| {
                let ns = ns.clone();
                std::thread::spawn(move || {
                    ns.update(ComponentId(7), v as HostId, v);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ns.lookup_versioned(ComponentId(7)), Some((8, 8)));
    }
}
