//! Supervised recovery: the policy half of the cluster's watchdog.
//!
//! The cluster spawns a supervisor thread (see `cluster.rs`) that detects
//! dead host threads — a crashed thread is `is_finished()` without having
//! been stopped, a wedged one stops heartbeating — and restarts them
//! amnesiac, exactly like the paper's §1 recovery story: the replacement
//! re-joins discovery via HELP with fresh soft state. Work that was in
//! flight on the dead host is *interrupted*; this module re-admits it
//! elsewhere through ordinary admission negotiation with bounded, seeded,
//! deadline-aware retries. Every try is charged to the ledger, and the run
//! must satisfy the same identity the simulator enforces:
//! `interrupted == recovered + destroyed`.

use crate::clock::Clock;
use crate::codec::{
    decode_admission_reply, encode_admission_request, AdmissionRequest,
};
use crate::component::AgileComponent;
use crate::naming::NameService;
use crate::retry::RetryPolicy;
use crate::transport::{ClientDirectory, HostId, RequestError};
use realtor_simcore::stats::LogHistogram;
use realtor_simcore::trace::{TaskLineage, TraceKind, TraceValue, Tracer};
use realtor_simcore::{SimRng, SimTime};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The admission-negotiation channel directory (requests and replies cross
/// as codec bytes, like every other wire message).
pub type AdmissionDirectory = ClientDirectory<Vec<u8>, Vec<u8>>;

/// Watchdog and recovery policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Run the watchdog at all. Disabled, dead hosts stay dead (their
    /// interrupted work is destroyed at shutdown) — the pre-supervision
    /// behaviour, useful for experiments that script their own recovery.
    pub enabled: bool,
    /// Wall-clock poll period of the watchdog.
    pub poll: Duration,
    /// A live host thread heartbeats every loop iteration; one that has not
    /// beaten for this long is declared wedged, fenced off, and replaced.
    pub stall_timeout: Duration,
    /// Restart dead hosts (amnesiac). When false the watchdog only recovers
    /// the interrupted work and leaves the host down.
    pub restart: bool,
    /// Retry policy for re-admitting interrupted components.
    pub recovery: RetryPolicy,
    /// Per-try negotiation timeout for recovery admissions.
    pub negotiation_timeout: Duration,
    /// Total wall-clock budget per interrupted component: a retry that
    /// cannot finish inside it is abandoned (and the component destroyed).
    pub recovery_deadline: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            enabled: true,
            poll: Duration::from_millis(2),
            stall_timeout: Duration::from_millis(500),
            restart: true,
            recovery: RetryPolicy::default(),
            negotiation_timeout: Duration::from_millis(20),
            recovery_deadline: Duration::from_millis(250),
        }
    }
}

/// The runtime survivability ledger, mirroring the simulator's: every task
/// interrupted by a host death is eventually either recovered (re-admitted
/// elsewhere) or destroyed (recovery abandoned), and every recovery try is
/// charged whether or not it succeeds.
#[derive(Debug, Default)]
pub struct ClusterLedger {
    /// Tasks whose host died while they were queued.
    pub interrupted: AtomicU64,
    /// Interrupted tasks re-admitted at another host.
    pub recovered: AtomicU64,
    /// Interrupted tasks whose recovery was refused, timed out, or abandoned.
    pub destroyed: AtomicU64,
    /// Recovery negotiation attempts charged (includes failed tries).
    pub recovery_tries: AtomicU64,
    /// Wall-clock time from picking an interrupted component up to settling
    /// it (recovered or destroyed), in nanoseconds — mergeable and exported
    /// through the cluster report and metrics snapshots.
    pub recovery_latency_ns: Mutex<LogHistogram>,
}

impl ClusterLedger {
    /// The survivability identity: `interrupted == recovered + destroyed`.
    /// Only meaningful once every in-flight recovery has resolved (after
    /// shutdown).
    pub fn balanced(&self) -> bool {
        self.interrupted.load(Relaxed)
            == self.recovered.load(Relaxed) + self.destroyed.load(Relaxed)
    }
}

/// One interrupted component awaiting recovery.
#[derive(Debug, Clone)]
pub struct RecoveryItem {
    /// The component, with `remaining_secs` clipped to the work it had left.
    pub component: AgileComponent,
    /// The host that died under it (never retargeted there).
    pub from_host: HostId,
}

/// Charge freshly interrupted work to the ledger (and the dead host's own
/// counters), emit the trace events, and enqueue each item for supervised
/// recovery. Both death paths — a cooperative kill draining itself and the
/// supervisor draining a crashed host's core — go through here, so the
/// accounting cannot diverge between them.
pub fn file_interrupts(
    items: Vec<RecoveryItem>,
    ledger: &ClusterLedger,
    stats: &crate::host::HostStats,
    tracer: &Tracer,
    now: SimTime,
    queue: &Mutex<Vec<RecoveryItem>>,
) {
    if items.is_empty() {
        return;
    }
    let mut q = queue.lock().expect("recovery queue lock");
    for item in items {
        ledger.interrupted.fetch_add(1, Relaxed);
        stats.interrupted.fetch_add(1, Relaxed);
        tracer.emit_spanned(
            now,
            Some(item.from_host),
            TraceKind::TaskInterrupt,
            Some(TaskLineage(item.component.id.0).span()),
            None,
            &[
                ("component", TraceValue::U64(item.component.id.0)),
                ("remaining_secs", TraceValue::F64(item.component.remaining_secs)),
            ],
        );
        tracer.count_node("runtime_interrupted", item.from_host, 1);
        q.push(item);
    }
}

/// Re-admit one interrupted component somewhere else: bounded retries with
/// seeded backoff across rotating targets, abandoning when the deadline
/// budget cannot cover another try. Returns `true` when recovered. The
/// ledger is always settled: exactly one of `recovered`/`destroyed` is
/// incremented, and each negotiation attempt charges `recovery_tries`.
#[allow(clippy::too_many_arguments)]
pub fn recover_item(
    item: &RecoveryItem,
    directory: &AdmissionDirectory,
    naming: &NameService,
    ledger: &ClusterLedger,
    cfg: &SupervisorConfig,
    rng: &mut SimRng,
    tracer: &Tracer,
    clock: Clock,
) -> bool {
    let hosts = directory.len();
    let candidates: Vec<HostId> = (0..hosts).filter(|&h| h != item.from_host).collect();
    let id = item.component.id;
    let started = Instant::now();
    let mut recovered = false;
    if !candidates.is_empty() {
        let first = rng.index(candidates.len());
        for attempt in 0..cfg.recovery.max_tries {
            if attempt > 0 {
                let backoff = cfg.recovery.backoff(attempt - 1, rng);
                if !cfg.recovery.attempt_fits(
                    started.elapsed(),
                    backoff,
                    cfg.negotiation_timeout,
                    cfg.recovery_deadline,
                ) {
                    break; // abandoned: the deadline cannot cover another try
                }
                std::thread::sleep(backoff);
            }
            let target = candidates[(first + attempt as usize) % candidates.len()];
            ledger.recovery_tries.fetch_add(1, Relaxed);
            let req = AdmissionRequest {
                size_secs: item.component.remaining_secs,
                component: item.component.snapshot(),
                commit: true,
                recovery: true,
            };
            match directory
                .client(target)
                .request(encode_admission_request(&req), cfg.negotiation_timeout)
            {
                Ok(bytes) => {
                    if decode_admission_reply(&bytes).map(|r| r.accepted).unwrap_or(false) {
                        recovered = true;
                    }
                }
                Err(RequestError::Timeout) => {
                    // The commit may have landed with only the reply lost;
                    // the receiving AC updates the binding on restore, so a
                    // brief retried lookup disambiguates before we retry
                    // (and potentially double-admit).
                    recovered = naming.await_binding(
                        id,
                        target,
                        3,
                        Duration::from_micros(200),
                    );
                }
                Err(RequestError::Busy) | Err(RequestError::Closed) => {}
            }
            if recovered {
                break;
            }
        }
    }
    let settled_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    ledger
        .recovery_latency_ns
        .lock()
        .expect("recovery latency lock")
        .record(settled_ns);
    let span = Some(TaskLineage(id.0).span());
    if recovered {
        ledger.recovered.fetch_add(1, Relaxed);
        tracer.emit_spanned(
            clock.now(),
            Some(item.from_host),
            TraceKind::TaskRecover,
            span,
            None,
            &[
                ("component", TraceValue::U64(id.0)),
                ("remaining_secs", TraceValue::F64(item.component.remaining_secs)),
            ],
        );
        tracer.count_node("runtime_recovered", item.from_host, 1);
    } else {
        ledger.destroyed.fetch_add(1, Relaxed);
        naming.unregister(id);
        tracer.emit_spanned(
            clock.now(),
            Some(item.from_host),
            TraceKind::TaskDestroy,
            span,
            None,
            &[
                ("component", TraceValue::U64(id.0)),
                ("remaining_secs", TraceValue::F64(item.component.remaining_secs)),
            ],
        );
        tracer.count_node("runtime_destroyed", item.from_host, 1);
    }
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_admission_request, encode_admission_reply, AdmissionReply};
    use crate::naming::ComponentId;
    use crate::transport::request_channel;

    type ByteServer = crate::transport::RequestServer<Vec<u8>, Vec<u8>>;

    fn setup(hosts: usize) -> (AdmissionDirectory, Vec<ByteServer>) {
        let mut clients = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..hosts {
            let (c, s) = request_channel();
            clients.push(c);
            servers.push(s);
        }
        (AdmissionDirectory::new(clients), servers)
    }

    fn item(id: u64, from: HostId) -> RecoveryItem {
        RecoveryItem {
            component: AgileComponent::new(ComponentId(id), 4.0),
            from_host: from,
        }
    }

    #[test]
    fn recovery_lands_on_an_accepting_host_and_charges_the_try() {
        let (dir, servers) = setup(2);
        let naming = NameService::new();
        let ledger = ClusterLedger::default();
        let cfg = SupervisorConfig::default();
        // Host 1 accepts everything; host 0 is the dead source.
        let acceptor = std::thread::spawn(move || {
            servers[1].serve_one(Duration::from_secs(1), |bytes: Vec<u8>| {
                let req = decode_admission_request(&bytes).unwrap();
                assert!(req.commit && req.recovery);
                encode_admission_reply(&AdmissionReply { accepted: true })
            });
        });
        let mut rng = SimRng::from_seed(1);
        let ok = recover_item(
            &item(7, 0),
            &dir,
            &naming,
            &ledger,
            &cfg,
            &mut rng,
            &Tracer::disabled(),
            Clock::start(1000.0),
        );
        acceptor.join().unwrap();
        assert!(ok);
        assert_eq!(ledger.recovered.load(Relaxed), 1);
        assert_eq!(ledger.destroyed.load(Relaxed), 0);
        assert_eq!(ledger.recovery_tries.load(Relaxed), 1);
        assert_eq!(
            ledger.recovery_latency_ns.lock().unwrap().count(),
            1,
            "every settled item records its recovery latency"
        );
    }

    #[test]
    fn exhausted_retries_destroy_and_balance_the_ledger() {
        let (dir, _servers) = setup(3); // servers dropped: every channel closed
        let naming = NameService::new();
        naming.register(ComponentId(9), 0);
        let ledger = ClusterLedger::default();
        ledger.interrupted.fetch_add(1, Relaxed);
        let cfg = SupervisorConfig {
            recovery: RetryPolicy {
                max_tries: 3,
                base: Duration::from_micros(100),
                cap: Duration::from_micros(400),
                jitter: 0.0,
            },
            negotiation_timeout: Duration::from_millis(2),
            recovery_deadline: Duration::from_millis(100),
            ..Default::default()
        };
        let mut rng = SimRng::from_seed(2);
        let ok = recover_item(
            &item(9, 0),
            &dir,
            &naming,
            &ledger,
            &cfg,
            &mut rng,
            &Tracer::disabled(),
            Clock::start(1000.0),
        );
        assert!(!ok);
        assert!(ledger.balanced());
        assert_eq!(ledger.destroyed.load(Relaxed), 1);
        assert_eq!(ledger.recovery_tries.load(Relaxed), 3, "every try is charged");
        assert_eq!(naming.lookup(ComponentId(9)), None, "destroyed work unbinds");
    }

    #[test]
    fn deadline_abandons_instead_of_overrunning() {
        let (dir, _servers) = setup(2);
        let ledger = ClusterLedger::default();
        let cfg = SupervisorConfig {
            recovery: RetryPolicy {
                max_tries: 10,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(50),
                jitter: 0.0,
            },
            negotiation_timeout: Duration::from_millis(5),
            // Budget covers roughly one try: the rest must be abandoned.
            recovery_deadline: Duration::from_millis(8),
            ..Default::default()
        };
        let mut rng = SimRng::from_seed(3);
        let started = Instant::now();
        let ok = recover_item(
            &item(1, 0),
            &dir,
            &NameService::new(),
            &ledger,
            &cfg,
            &mut rng,
            &Tracer::disabled(),
            Clock::start(1000.0),
        );
        assert!(!ok);
        assert!(
            started.elapsed() < Duration::from_millis(60),
            "abandonment must respect the deadline budget, took {:?}",
            started.elapsed()
        );
        assert!(ledger.recovery_tries.load(Relaxed) < 10);
        assert_eq!(ledger.destroyed.load(Relaxed), 1);
    }
}
