//! In-process transports with the delivery semantics of the paper's stack:
//!
//! * **datagram** (≈ UDP, used for PLEDGE): unordered with respect to other
//!   senders, best-effort, optional loss,
//! * **multicast group** (≈ IP multicast, used for HELP): one send fans out
//!   to every current group member, best-effort, optional per-receiver loss,
//! * **request channel** (≈ TCP, used for admission negotiation and
//!   migration): reliable, connection-oriented, carries a typed request and
//!   a oneshot reply.
//!
//! Impairments are injected per receiver from a seeded RNG using the same
//! [`LinkQuality`] model (and the same `"channel"` stream label) as the
//! discrete-event simulator, so "lossy network" experiments are
//! reproducible and share their semantics across both substrates. Loss and
//! duplication apply; the latency/jitter components are ignored here — the
//! thread-per-host fabric delivers through in-memory queues whose real
//! scheduling delay already plays that role.

use realtor_net::{LinkQuality, Sampled};
use realtor_simcore::SimRng;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Host index within a cluster.
pub type HostId = usize;

/// A received datagram.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sending host.
    pub from: HostId,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

struct Shared {
    inboxes: Vec<Sender<Datagram>>,
    /// Multicast membership per group id (all hosts in group 0 by default).
    groups: Mutex<Vec<Vec<HostId>>>,
    quality: LinkQuality,
    channel_rng: Mutex<SimRng>,
    dropped: std::sync::atomic::AtomicU64,
    duplicated: std::sync::atomic::AtomicU64,
}

/// The cluster-wide fabric; cheap to clone.
#[derive(Clone)]
pub struct Network {
    shared: Arc<Shared>,
}

/// One host's handle onto the network.
pub struct Endpoint {
    host: HostId,
    network: Network,
    inbox: Receiver<Datagram>,
}

impl Network {
    /// Create a network for `hosts` hosts, all members of multicast group 0.
    /// Datagrams (unicast and multicast alike) are dropped independently
    /// with `loss_probability`.
    ///
    /// Returns the network and one endpoint per host.
    pub fn new(hosts: usize, loss_probability: f64, seed: u64) -> (Network, Vec<Endpoint>) {
        Self::with_quality(hosts, LinkQuality::lossy(loss_probability), seed)
    }

    /// Create a network whose datagrams cross `quality` (loss and
    /// duplication; the delay components are not modeled by this fabric).
    pub fn with_quality(
        hosts: usize,
        quality: LinkQuality,
        seed: u64,
    ) -> (Network, Vec<Endpoint>) {
        quality.validate();
        let mut inboxes = Vec::with_capacity(hosts);
        let mut receivers = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            let (tx, rx) = channel();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let network = Network {
            shared: Arc::new(Shared {
                inboxes,
                groups: Mutex::new(vec![(0..hosts).collect()]),
                quality,
                channel_rng: Mutex::new(SimRng::stream(seed, "channel")),
                dropped: Default::default(),
                duplicated: Default::default(),
            }),
        };
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(host, inbox)| Endpoint {
                host,
                network: network.clone(),
                inbox,
            })
            .collect();
        (network, endpoints)
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.shared.inboxes.len()
    }

    /// Total datagrams dropped by the loss model so far.
    pub fn dropped_count(&self) -> u64 {
        self.shared.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total extra copies created by the duplication model so far.
    pub fn duplicated_count(&self) -> u64 {
        self.shared
            .duplicated
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Define (or redefine) multicast group `group`.
    pub fn set_group(&self, group: usize, members: Vec<HostId>) {
        let mut groups = self.shared.groups.lock().expect("groups lock");
        if groups.len() <= group {
            groups.resize(group + 1, Vec::new());
        }
        groups[group] = members;
    }

    fn deliver(&self, from: HostId, to: HostId, payload: Vec<u8>) {
        use std::sync::atomic::Ordering::Relaxed;
        let copies = if self.shared.quality.is_ideal() {
            1
        } else {
            let sampled = self
                .shared
                .quality
                .sample(&mut self.shared.channel_rng.lock().expect("channel rng lock"));
            match sampled {
                Sampled::Lost => {
                    self.shared.dropped.fetch_add(1, Relaxed);
                    return;
                }
                Sampled::Delivered { duplicate: None, .. } => 1,
                Sampled::Delivered {
                    duplicate: Some(_), ..
                } => {
                    self.shared.duplicated.fetch_add(1, Relaxed);
                    2
                }
            }
        };
        for _ in 0..copies {
            // A closed inbox means the host has shut down; best-effort drop.
            let _ = self.shared.inboxes[to].send(Datagram {
                from,
                payload: payload.clone(),
            });
        }
    }
}

impl Endpoint {
    /// This endpoint's host id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Best-effort unicast (UDP-like).
    pub fn send(&self, to: HostId, payload: Vec<u8>) {
        self.network.deliver(self.host, to, payload);
    }

    /// Best-effort multicast to group `group` (IP-multicast-like). The
    /// sender does not receive its own transmission.
    pub fn multicast(&self, group: usize, payload: Vec<u8>) {
        let members = {
            let groups = self.network.shared.groups.lock().expect("groups lock");
            groups.get(group).cloned().unwrap_or_default()
        };
        for m in members {
            if m != self.host {
                self.network.deliver(self.host, m, payload.clone());
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Datagram> {
        self.inbox.try_recv().ok()
    }

    /// Blocking receive with a wall-clock timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Datagram> {
        self.inbox.recv_timeout(timeout).ok()
    }
}

/// A reliable request/reply channel (TCP-like), generic over the request and
/// reply types. Requests are never lost; the reply arrives on a per-request
/// oneshot channel.
pub struct RequestServer<Req, Rep> {
    rx: Receiver<(Req, Sender<Rep>)>,
}

/// Client half of a [`RequestServer`]; cheap to clone.
pub struct RequestClient<Req, Rep> {
    tx: Sender<(Req, Sender<Rep>)>,
}

// Manual impl: `derive(Clone)` would needlessly require Req/Rep: Clone.
impl<Req, Rep> Clone for RequestClient<Req, Rep> {
    fn clone(&self) -> Self {
        RequestClient {
            tx: self.tx.clone(),
        }
    }
}

/// Create a connected request/reply pair.
pub fn request_channel<Req, Rep>() -> (RequestClient<Req, Rep>, RequestServer<Req, Rep>) {
    let (tx, rx) = channel();
    (RequestClient { tx }, RequestServer { rx })
}

impl<Req, Rep> RequestClient<Req, Rep> {
    /// Send `req` and wait up to `timeout` for the reply. `None` on timeout
    /// or if the server has shut down.
    pub fn request(&self, req: Req, timeout: std::time::Duration) -> Option<Rep> {
        let (reply_tx, reply_rx) = channel();
        self.tx.send((req, reply_tx)).ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }
}

impl<Req, Rep> RequestServer<Req, Rep> {
    /// Wait up to `timeout` for the next request; the handler's return value
    /// is delivered to the caller.
    pub fn serve_one(
        &self,
        timeout: std::time::Duration,
        handler: impl FnOnce(Req) -> Rep,
    ) -> bool {
        match self.rx.recv_timeout(timeout) {
            Ok((req, reply)) => {
                let _ = reply.send(handler(req));
                true
            }
            Err(_) => false,
        }
    }

    /// Serve every request currently queued without blocking.
    pub fn serve_pending(&self, mut handler: impl FnMut(Req) -> Rep) -> usize {
        let mut served = 0;
        while let Ok((req, reply)) = self.rx.try_recv() {
            let _ = reply.send(handler(req));
            served += 1;
        }
        served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unicast_delivers() {
        let (_net, eps) = Network::new(3, 0.0, 1);
        eps[0].send(2, b"hello".to_vec());
        let d = eps[2].recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(d.from, 0);
        assert_eq!(&d.payload[..], b"hello");
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn multicast_reaches_group_except_sender() {
        let (_net, eps) = Network::new(4, 0.0, 1);
        eps[1].multicast(0, b"m".to_vec());
        for (i, ep) in eps.iter().enumerate() {
            let got = ep.recv_timeout(Duration::from_millis(50));
            if i == 1 {
                assert!(got.is_none(), "sender must not hear itself");
            } else {
                assert_eq!(got.unwrap().from, 1);
            }
        }
    }

    #[test]
    fn custom_groups() {
        let (net, eps) = Network::new(4, 0.0, 1);
        net.set_group(1, vec![0, 3]);
        eps[0].multicast(1, b"g1".to_vec());
        assert!(eps[3].recv_timeout(Duration::from_millis(50)).is_some());
        assert!(eps[1].try_recv().is_none());
        assert!(eps[2].try_recv().is_none());
    }

    #[test]
    fn full_loss_drops_everything() {
        let (net, eps) = Network::new(2, 1.0, 1);
        for _ in 0..50 {
            eps[0].send(1, b"x".to_vec());
        }
        assert!(eps[1].try_recv().is_none());
        assert_eq!(net.dropped_count(), 50);
    }

    #[test]
    fn partial_loss_is_seeded_and_partial() {
        let (net, eps) = Network::new(2, 0.5, 42);
        for _ in 0..1000 {
            eps[0].send(1, b"x".to_vec());
        }
        let dropped = net.dropped_count();
        assert!((300..700).contains(&(dropped as usize)), "dropped {dropped}");
        let mut received = 0;
        while eps[1].try_recv().is_some() {
            received += 1;
        }
        assert_eq!(received + dropped, 1000);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let quality = LinkQuality {
            duplication: 1.0,
            ..LinkQuality::IDEAL
        };
        let (net, eps) = Network::with_quality(2, quality, 1);
        for _ in 0..10 {
            eps[0].send(1, b"x".to_vec());
        }
        let mut received = 0;
        while eps[1].try_recv().is_some() {
            received += 1;
        }
        assert_eq!(received, 20, "every datagram must arrive twice");
        assert_eq!(net.duplicated_count(), 10);
        assert_eq!(net.dropped_count(), 0);
    }

    #[test]
    fn request_reply_round_trip() {
        let (client, server) = request_channel::<u32, u32>();
        let h = std::thread::spawn(move || {
            assert!(server.serve_one(Duration::from_secs(1), |x| x * 2));
        });
        let rep = client.request(21, Duration::from_secs(1));
        assert_eq!(rep, Some(42));
        h.join().unwrap();
    }

    #[test]
    fn request_times_out_without_server() {
        let (client, _server) = request_channel::<u32, u32>();
        let rep = client.request(1, Duration::from_millis(20));
        assert_eq!(rep, None);
    }

    #[test]
    fn serve_pending_drains_queue() {
        let (client, server) = request_channel::<u32, u32>();
        let mut replies = Vec::new();
        for i in 0..5 {
            // fire requests from a thread that doesn't wait for replies
            let c = client.clone();
            let (tx, rx) = channel();
            c.tx.send((i, tx)).unwrap();
            replies.push(rx);
        }
        let served = server.serve_pending(|x| x + 100);
        assert_eq!(served, 5);
        for (i, rx) in replies.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap(), i as u32 + 100);
        }
    }
}
