//! In-process transports with the delivery semantics of the paper's stack:
//!
//! * **datagram** (≈ UDP, used for PLEDGE): unordered with respect to other
//!   senders, best-effort, optional loss,
//! * **multicast group** (≈ IP multicast, used for HELP): one send fans out
//!   to every current group member, best-effort, optional per-receiver loss,
//! * **request channel** (≈ TCP, used for admission negotiation and
//!   migration): reliable, connection-oriented, carries a typed request and
//!   a oneshot reply.
//!
//! Impairments are injected per receiver from a seeded RNG using the same
//! [`LinkQuality`] model (and the same `"channel"` stream label) as the
//! discrete-event simulator, so "lossy network" experiments are
//! reproducible and share their semantics across both substrates. Loss and
//! duplication apply; the latency/jitter components are ignored here — the
//! thread-per-host fabric delivers through in-memory queues whose real
//! scheduling delay already plays that role.
//!
//! Every queue is **bounded**: host inboxes shed datagrams on overflow (a
//! real UDP socket buffer drops, it does not block the sender) and request
//! channels refuse with [`RequestError::Busy`] — explicit backpressure
//! instead of unbounded memory growth under overload or against a wedged
//! host. Shed events are counted ([`Network::shed_count`], per-client
//! [`RequestClient::shed_count`]) so experiments can report them, and every
//! queue exposes its in-flight depth so the cluster can detect quiescence.

use realtor_net::{LinkQuality, Sampled};
use realtor_simcore::SimRng;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};

/// Host index within a cluster.
pub type HostId = usize;

/// Default bound on a host's datagram inbox.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1024;

/// Default bound on a request channel's pending-request queue.
pub const DEFAULT_REQUEST_CAPACITY: usize = 64;

/// A received datagram.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sending host.
    pub from: HostId,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// One host's bounded inbox slot; replaced wholesale on reattach.
struct InboxSlot {
    tx: SyncSender<Datagram>,
    /// Datagrams enqueued but not yet received (this channel generation
    /// only — a reattach installs a fresh counter).
    depth: Arc<AtomicU64>,
}

struct Shared {
    inboxes: RwLock<Vec<InboxSlot>>,
    /// Per-host maximum observed inbox depth. Lives outside the inbox slot
    /// so it survives [`Network::reattach`] — the high-water mark spans
    /// every incarnation of the host, which is what makes shed-on-full
    /// events attributable to an observed depth after the fact.
    high_water: Vec<AtomicU64>,
    /// Multicast membership per group id (all hosts in group 0 by default).
    groups: Mutex<Vec<Vec<HostId>>>,
    quality: LinkQuality,
    channel_rng: Mutex<SimRng>,
    mailbox_capacity: usize,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    shed: AtomicU64,
}

/// The cluster-wide fabric; cheap to clone.
#[derive(Clone)]
pub struct Network {
    shared: Arc<Shared>,
}

/// One host's handle onto the network.
pub struct Endpoint {
    host: HostId,
    network: Network,
    inbox: Receiver<Datagram>,
    depth: Arc<AtomicU64>,
}

impl Network {
    /// Create a network for `hosts` hosts, all members of multicast group 0.
    /// Datagrams (unicast and multicast alike) are dropped independently
    /// with `loss_probability`.
    ///
    /// Returns the network and one endpoint per host.
    pub fn new(hosts: usize, loss_probability: f64, seed: u64) -> (Network, Vec<Endpoint>) {
        Self::with_quality(hosts, LinkQuality::lossy(loss_probability), seed)
    }

    /// Create a network whose datagrams cross `quality` (loss and
    /// duplication; the delay components are not modeled by this fabric),
    /// with the default inbox bound.
    pub fn with_quality(
        hosts: usize,
        quality: LinkQuality,
        seed: u64,
    ) -> (Network, Vec<Endpoint>) {
        Self::with_options(hosts, quality, seed, DEFAULT_MAILBOX_CAPACITY)
    }

    /// Full-control constructor: `mailbox_capacity` bounds every host inbox;
    /// datagrams arriving at a full inbox are shed (and counted).
    pub fn with_options(
        hosts: usize,
        quality: LinkQuality,
        seed: u64,
        mailbox_capacity: usize,
    ) -> (Network, Vec<Endpoint>) {
        quality.validate();
        assert!(mailbox_capacity > 0, "mailbox capacity must be positive");
        let mut inboxes = Vec::with_capacity(hosts);
        let mut receivers = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            let (tx, rx) = sync_channel(mailbox_capacity);
            let depth = Arc::new(AtomicU64::new(0));
            inboxes.push(InboxSlot {
                tx,
                depth: Arc::clone(&depth),
            });
            receivers.push((rx, depth));
        }
        let network = Network {
            shared: Arc::new(Shared {
                inboxes: RwLock::new(inboxes),
                high_water: (0..hosts).map(|_| AtomicU64::new(0)).collect(),
                groups: Mutex::new(vec![(0..hosts).collect()]),
                quality,
                channel_rng: Mutex::new(SimRng::stream(seed, "channel")),
                mailbox_capacity,
                dropped: Default::default(),
                duplicated: Default::default(),
                shed: Default::default(),
            }),
        };
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(host, (inbox, depth))| Endpoint {
                host,
                network: network.clone(),
                inbox,
                depth,
            })
            .collect();
        (network, endpoints)
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.shared.inboxes.read().expect("inboxes lock").len()
    }

    /// Total datagrams dropped by the loss model so far.
    pub fn dropped_count(&self) -> u64 {
        self.shared.dropped.load(Relaxed)
    }

    /// Total extra copies created by the duplication model so far.
    pub fn duplicated_count(&self) -> u64 {
        self.shared.duplicated.load(Relaxed)
    }

    /// Total datagrams shed because the destination inbox was full.
    pub fn shed_count(&self) -> u64 {
        self.shared.shed.load(Relaxed)
    }

    /// Datagrams currently enqueued in `host`'s inbox.
    pub fn mailbox_depth(&self, host: HostId) -> u64 {
        self.shared.inboxes.read().expect("inboxes lock")[host]
            .depth
            .load(Relaxed)
    }

    /// Maximum inbox depth ever observed for `host`, across every channel
    /// incarnation (a [`Network::reattach`] resets the live depth, not this
    /// mark) — the gauge that makes shed-on-full events attributable.
    pub fn mailbox_high_water(&self, host: HostId) -> u64 {
        self.shared.high_water[host].load(Relaxed)
    }

    /// Datagrams currently enqueued across all inboxes (in-flight work the
    /// cluster's quiescence check waits out).
    pub fn in_flight(&self) -> u64 {
        self.shared
            .inboxes
            .read()
            .expect("inboxes lock")
            .iter()
            .map(|s| s.depth.load(Relaxed))
            .sum()
    }

    /// Replace `host`'s inbox with a fresh bounded channel and return the
    /// new endpoint — the transport half of an amnesiac host restart.
    /// Datagrams still queued for the old endpoint are lost with it, exactly
    /// like the socket buffer of a crashed process.
    pub fn reattach(&self, host: HostId) -> Endpoint {
        let (tx, rx) = sync_channel(self.shared.mailbox_capacity);
        let depth = Arc::new(AtomicU64::new(0));
        {
            let mut inboxes = self.shared.inboxes.write().expect("inboxes lock");
            inboxes[host] = InboxSlot {
                tx,
                depth: Arc::clone(&depth),
            };
        }
        Endpoint {
            host,
            network: self.clone(),
            inbox: rx,
            depth,
        }
    }

    /// Define (or redefine) multicast group `group`.
    pub fn set_group(&self, group: usize, members: Vec<HostId>) {
        let mut groups = self.shared.groups.lock().expect("groups lock");
        if groups.len() <= group {
            groups.resize(group + 1, Vec::new());
        }
        groups[group] = members;
    }

    fn deliver(&self, from: HostId, to: HostId, payload: Vec<u8>) {
        let copies = if self.shared.quality.is_ideal() {
            1
        } else {
            let sampled = self
                .shared
                .quality
                .sample(&mut self.shared.channel_rng.lock().expect("channel rng lock"));
            match sampled {
                Sampled::Lost => {
                    self.shared.dropped.fetch_add(1, Relaxed);
                    return;
                }
                Sampled::Delivered { duplicate: None, .. } => 1,
                Sampled::Delivered {
                    duplicate: Some(_), ..
                } => {
                    self.shared.duplicated.fetch_add(1, Relaxed);
                    2
                }
            }
        };
        let inboxes = self.shared.inboxes.read().expect("inboxes lock");
        let slot = &inboxes[to];
        for _ in 0..copies {
            let depth = slot.depth.fetch_add(1, Relaxed) + 1;
            match slot.tx.try_send(Datagram {
                from,
                payload: payload.clone(),
            }) {
                Ok(()) => {
                    self.shared.high_water[to].fetch_max(depth, Relaxed);
                }
                Err(TrySendError::Full(_)) => {
                    // Bounded mailbox: a full inbox sheds, like a UDP socket
                    // buffer — the sender is never blocked by a slow peer.
                    slot.depth.fetch_sub(1, Relaxed);
                    self.shared.shed.fetch_add(1, Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => {
                    // A closed inbox means the host has shut down.
                    slot.depth.fetch_sub(1, Relaxed);
                }
            }
        }
    }
}

impl Endpoint {
    /// This endpoint's host id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Best-effort unicast (UDP-like).
    pub fn send(&self, to: HostId, payload: Vec<u8>) {
        self.network.deliver(self.host, to, payload);
    }

    /// Best-effort multicast to group `group` (IP-multicast-like). The
    /// sender does not receive its own transmission.
    pub fn multicast(&self, group: usize, payload: Vec<u8>) {
        let members = {
            let groups = self.network.shared.groups.lock().expect("groups lock");
            groups.get(group).cloned().unwrap_or_default()
        };
        for m in members {
            if m != self.host {
                self.network.deliver(self.host, m, payload.clone());
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Datagram> {
        let d = self.inbox.try_recv().ok()?;
        self.depth.fetch_sub(1, Relaxed);
        Some(d)
    }

    /// Blocking receive with a wall-clock timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Datagram> {
        let d = self.inbox.recv_timeout(timeout).ok()?;
        self.depth.fetch_sub(1, Relaxed);
        Some(d)
    }
}

/// Why a [`RequestClient::request`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The server's bounded request queue is full — explicit backpressure.
    Busy,
    /// No reply arrived within the timeout (the request may or may not have
    /// been processed — retries must be idempotent).
    Timeout,
    /// The server has shut down.
    Closed,
}

/// A reliable request/reply channel (TCP-like), generic over the request and
/// reply types. Accepted requests are never lost; the reply arrives on a
/// per-request oneshot channel. The pending-request queue is bounded: a
/// full server refuses new requests with [`RequestError::Busy`] instead of
/// queueing without limit.
pub struct RequestServer<Req, Rep> {
    rx: Receiver<(Req, Sender<Rep>)>,
    in_flight: Arc<AtomicU64>,
}

/// Client half of a [`RequestServer`]; cheap to clone.
pub struct RequestClient<Req, Rep> {
    tx: SyncSender<(Req, Sender<Rep>)>,
    in_flight: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
}

// Manual impl: `derive(Clone)` would needlessly require Req/Rep: Clone.
impl<Req, Rep> Clone for RequestClient<Req, Rep> {
    fn clone(&self) -> Self {
        RequestClient {
            tx: self.tx.clone(),
            in_flight: Arc::clone(&self.in_flight),
            shed: Arc::clone(&self.shed),
        }
    }
}

/// Create a connected request/reply pair with the default queue bound.
pub fn request_channel<Req, Rep>() -> (RequestClient<Req, Rep>, RequestServer<Req, Rep>) {
    request_channel_with(DEFAULT_REQUEST_CAPACITY)
}

/// Create a connected request/reply pair whose pending queue holds at most
/// `capacity` requests.
pub fn request_channel_with<Req, Rep>(
    capacity: usize,
) -> (RequestClient<Req, Rep>, RequestServer<Req, Rep>) {
    assert!(capacity > 0, "request capacity must be positive");
    let (tx, rx) = sync_channel(capacity);
    let in_flight = Arc::new(AtomicU64::new(0));
    (
        RequestClient {
            tx,
            in_flight: Arc::clone(&in_flight),
            shed: Arc::new(AtomicU64::new(0)),
        },
        RequestServer { rx, in_flight },
    )
}

impl<Req, Rep> RequestClient<Req, Rep> {
    /// Send `req` and wait up to `timeout` for the reply.
    pub fn request(&self, req: Req, timeout: std::time::Duration) -> Result<Rep, RequestError> {
        let (reply_tx, reply_rx) = channel();
        self.in_flight.fetch_add(1, Relaxed);
        match self.tx.try_send((req, reply_tx)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.in_flight.fetch_sub(1, Relaxed);
                self.shed.fetch_add(1, Relaxed);
                return Err(RequestError::Busy);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.in_flight.fetch_sub(1, Relaxed);
                return Err(RequestError::Closed);
            }
        }
        // The server decrements in-flight when it takes the request; a
        // request stuck in the queue of a dead server stays visibly
        // in-flight until the channel drops.
        match reply_rx.recv_timeout(timeout) {
            Ok(rep) => Ok(rep),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(RequestError::Timeout),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(RequestError::Closed),
        }
    }

    /// Requests accepted by the queue but not yet taken by the server.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Relaxed)
    }

    /// Requests refused because the server queue was full.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Relaxed)
    }
}

impl<Req, Rep> RequestServer<Req, Rep> {
    /// Wait up to `timeout` for the next request; the handler's return value
    /// is delivered to the caller.
    pub fn serve_one(
        &self,
        timeout: std::time::Duration,
        handler: impl FnOnce(Req) -> Rep,
    ) -> bool {
        match self.rx.recv_timeout(timeout) {
            Ok((req, reply)) => {
                self.in_flight.fetch_sub(1, Relaxed);
                let _ = reply.send(handler(req));
                true
            }
            Err(_) => false,
        }
    }

    /// Serve every request currently queued without blocking.
    pub fn serve_pending(&self, mut handler: impl FnMut(Req) -> Rep) -> usize {
        let mut served = 0;
        while let Ok((req, reply)) = self.rx.try_recv() {
            self.in_flight.fetch_sub(1, Relaxed);
            let _ = reply.send(handler(req));
            served += 1;
        }
        served
    }
}

/// A swappable directory of request clients, one per host. Hosts negotiate
/// through the directory rather than through captured client lists, so an
/// amnesiac restart can [`ClientDirectory::install`] the replacement host's
/// fresh channel and every peer immediately reaches the new incarnation.
pub struct ClientDirectory<Req, Rep> {
    slots: Arc<RwLock<Vec<RequestClient<Req, Rep>>>>,
}

impl<Req, Rep> Clone for ClientDirectory<Req, Rep> {
    fn clone(&self) -> Self {
        ClientDirectory {
            slots: Arc::clone(&self.slots),
        }
    }
}

impl<Req, Rep> ClientDirectory<Req, Rep> {
    /// Build from the initial per-host clients.
    pub fn new(clients: Vec<RequestClient<Req, Rep>>) -> Self {
        ClientDirectory {
            slots: Arc::new(RwLock::new(clients)),
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.slots.read().expect("directory lock").len()
    }

    /// True when the directory holds no clients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current client for `host` (a cheap clone).
    pub fn client(&self, host: HostId) -> RequestClient<Req, Rep> {
        self.slots.read().expect("directory lock")[host].clone()
    }

    /// Swap in a fresh client for `host` (amnesiac restart).
    pub fn install(&self, host: HostId, client: RequestClient<Req, Rep>) {
        self.slots.write().expect("directory lock")[host] = client;
    }

    /// Requests in flight across every current client channel.
    pub fn in_flight_total(&self) -> u64 {
        self.slots
            .read()
            .expect("directory lock")
            .iter()
            .map(|c| c.in_flight())
            .sum()
    }

    /// Requests refused (Busy) across every current client channel.
    pub fn shed_total(&self) -> u64 {
        self.slots
            .read()
            .expect("directory lock")
            .iter()
            .map(|c| c.shed_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unicast_delivers() {
        let (_net, eps) = Network::new(3, 0.0, 1);
        eps[0].send(2, b"hello".to_vec());
        let d = eps[2].recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(d.from, 0);
        assert_eq!(&d.payload[..], b"hello");
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn multicast_reaches_group_except_sender() {
        let (_net, eps) = Network::new(4, 0.0, 1);
        eps[1].multicast(0, b"m".to_vec());
        for (i, ep) in eps.iter().enumerate() {
            let got = ep.recv_timeout(Duration::from_millis(50));
            if i == 1 {
                assert!(got.is_none(), "sender must not hear itself");
            } else {
                assert_eq!(got.unwrap().from, 1);
            }
        }
    }

    #[test]
    fn custom_groups() {
        let (net, eps) = Network::new(4, 0.0, 1);
        net.set_group(1, vec![0, 3]);
        eps[0].multicast(1, b"g1".to_vec());
        assert!(eps[3].recv_timeout(Duration::from_millis(50)).is_some());
        assert!(eps[1].try_recv().is_none());
        assert!(eps[2].try_recv().is_none());
    }

    #[test]
    fn full_loss_drops_everything() {
        let (net, eps) = Network::new(2, 1.0, 1);
        for _ in 0..50 {
            eps[0].send(1, b"x".to_vec());
        }
        assert!(eps[1].try_recv().is_none());
        assert_eq!(net.dropped_count(), 50);
    }

    #[test]
    fn partial_loss_is_seeded_and_partial() {
        let (net, eps) = Network::new(2, 0.5, 42);
        for _ in 0..1000 {
            eps[0].send(1, b"x".to_vec());
        }
        let dropped = net.dropped_count();
        assert!((300..700).contains(&(dropped as usize)), "dropped {dropped}");
        let mut received = 0;
        while eps[1].try_recv().is_some() {
            received += 1;
        }
        assert_eq!(received + dropped, 1000);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let quality = LinkQuality {
            duplication: 1.0,
            ..LinkQuality::IDEAL
        };
        let (net, eps) = Network::with_quality(2, quality, 1);
        for _ in 0..10 {
            eps[0].send(1, b"x".to_vec());
        }
        let mut received = 0;
        while eps[1].try_recv().is_some() {
            received += 1;
        }
        assert_eq!(received, 20, "every datagram must arrive twice");
        assert_eq!(net.duplicated_count(), 10);
        assert_eq!(net.dropped_count(), 0);
    }

    #[test]
    fn full_mailbox_sheds_instead_of_blocking() {
        let (net, eps) = Network::with_options(2, LinkQuality::IDEAL, 1, 4);
        for _ in 0..10 {
            eps[0].send(1, b"x".to_vec());
        }
        assert_eq!(net.shed_count(), 6, "overflow beyond capacity 4 is shed");
        let mut received = 0;
        while eps[1].try_recv().is_some() {
            received += 1;
        }
        assert_eq!(received, 4);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn in_flight_tracks_queue_depth() {
        let (net, eps) = Network::new(2, 0.0, 1);
        assert_eq!(net.in_flight(), 0);
        eps[0].send(1, b"a".to_vec());
        eps[0].send(1, b"b".to_vec());
        assert_eq!(net.in_flight(), 2);
        eps[1].try_recv().unwrap();
        assert_eq!(net.in_flight(), 1);
        eps[1].try_recv().unwrap();
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn reattach_gives_a_fresh_inbox() {
        let (net, mut eps) = Network::new(2, 0.0, 1);
        eps[0].send(1, b"stale".to_vec());
        // The old endpoint (and its queued datagram) dies with the host.
        let fresh = net.reattach(1);
        eps[1] = fresh;
        assert_eq!(net.in_flight(), 0, "reattach resets the depth accounting");
        eps[0].send(1, b"fresh".to_vec());
        let d = eps[1].recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(&d.payload[..], b"fresh");
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn mailbox_high_water_survives_reattach() {
        let (net, mut eps) = Network::new(2, 0.0, 1);
        eps[0].send(1, b"a".to_vec());
        eps[0].send(1, b"b".to_vec());
        eps[0].send(1, b"c".to_vec());
        assert_eq!(net.mailbox_depth(1), 3);
        assert_eq!(net.mailbox_high_water(1), 3);
        eps[1] = net.reattach(1);
        assert_eq!(net.mailbox_depth(1), 0, "reattach resets the live depth");
        assert_eq!(
            net.mailbox_high_water(1),
            3,
            "the high-water mark spans incarnations"
        );
        eps[0].send(1, b"d".to_vec());
        assert_eq!(net.mailbox_high_water(1), 3, "a lower depth never lowers it");
    }

    #[test]
    fn request_reply_round_trip() {
        let (client, server) = request_channel::<u32, u32>();
        let h = std::thread::spawn(move || {
            assert!(server.serve_one(Duration::from_secs(1), |x| x * 2));
        });
        let rep = client.request(21, Duration::from_secs(1));
        assert_eq!(rep, Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn request_times_out_without_service() {
        let (client, _server) = request_channel::<u32, u32>();
        let rep = client.request(1, Duration::from_millis(20));
        assert_eq!(rep, Err(RequestError::Timeout));
    }

    #[test]
    fn request_reports_closed_server() {
        let (client, server) = request_channel::<u32, u32>();
        drop(server);
        assert_eq!(
            client.request(1, Duration::from_millis(20)),
            Err(RequestError::Closed)
        );
    }

    #[test]
    fn full_request_queue_refuses_busy() {
        let (client, server) = request_channel_with::<u32, u32>(2);
        assert_eq!(client.request(1, Duration::from_millis(1)), Err(RequestError::Timeout));
        assert_eq!(client.request(2, Duration::from_millis(1)), Err(RequestError::Timeout));
        assert_eq!(client.in_flight(), 2);
        // Queue full: explicit backpressure, not unbounded growth.
        assert_eq!(client.request(3, Duration::from_millis(1)), Err(RequestError::Busy));
        assert_eq!(client.shed_count(), 1);
        let served = server.serve_pending(|x| x);
        assert_eq!(served, 2);
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn serve_pending_drains_queue() {
        let (client, server) = request_channel::<u32, u32>();
        let mut replies = Vec::new();
        for i in 0..5 {
            // fire requests from a thread that doesn't wait for replies
            let c = client.clone();
            let (tx, rx) = channel();
            c.tx.try_send((i, tx)).unwrap();
            c.in_flight.fetch_add(1, Relaxed);
            replies.push(rx);
        }
        let served = server.serve_pending(|x| x + 100);
        assert_eq!(served, 5);
        for (i, rx) in replies.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap(), i as u32 + 100);
        }
    }

    #[test]
    fn directory_swaps_clients_on_install() {
        let (c1, s1) = request_channel::<u32, u32>();
        let dir = ClientDirectory::new(vec![c1]);
        drop(s1); // the first incarnation dies
        assert_eq!(
            dir.client(0).request(1, Duration::from_millis(10)),
            Err(RequestError::Closed)
        );
        let (c2, s2) = request_channel::<u32, u32>();
        dir.install(0, c2);
        let h = std::thread::spawn(move || {
            assert!(s2.serve_one(Duration::from_secs(1), |x| x + 1));
        });
        assert_eq!(dir.client(0).request(41, Duration::from_secs(1)), Ok(42));
        h.join().unwrap();
    }
}
