//! The per-host runtime: one main thread driving the discovery agent, task
//! admission and migration, plus one admission-control thread serving
//! reliable negotiation requests — mirroring the component split of the
//! paper's Figure 1 (REALTOR, Admission Control, Job Scheduler, Migration
//! Subsystem).
//!
//! Survivability wiring: the host heartbeats every loop iteration so the
//! cluster supervisor can detect a wedged thread, publishes its exit status
//! when the thread ends, and keeps its admission state in a shared
//! [`HostCore`] that the supervisor can drain for recovery when the host
//! dies without running its own cleanup (a crash). Admission negotiation
//! retries transient failures (timeout, backpressure, closed channel) under
//! a bounded, seeded, deadline-aware [`RetryPolicy`]; an explicit refusal is
//! final and never retried, so fault-free behaviour is unchanged.

use crate::clock::Clock;
use crate::codec::{
    decode_admission_reply, decode_admission_request, decode_message, encode_admission_reply,
    encode_admission_request, encode_message, AdmissionReply, AdmissionRequest,
};
use crate::component::AgileComponent;
use crate::naming::{ComponentId, NameService};
use crate::retry::RetryPolicy;
use crate::supervisor::{file_interrupts, AdmissionDirectory, ClusterLedger, RecoveryItem};
use crate::transport::{Endpoint, HostId, RequestError, RequestServer};
use realtor_core::protocol::{Action, Actions, DiscoveryProtocol, LocalView, TimerToken};
use realtor_core::{ProtocolConfig, ProtocolKind};
use realtor_node::{ResourceMonitor, WorkQueue};
use realtor_simcore::stats::{LogHistogram, Welford};
use realtor_simcore::trace::Tracer;
use realtor_simcore::{SimRng, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The multicast group carrying HELP floods (all hosts).
pub const HELP_GROUP: usize = 0;

/// Exit status: the host thread is still running.
pub const EXIT_RUNNING: u8 = 0;
/// Exit status: the host thread ended cleanly (`Stop`, or fenced off).
pub const EXIT_STOPPED: u8 = 1;
/// Exit status: the host thread died without cleanup (`Crash`).
pub const EXIT_CRASHED: u8 = 2;

/// Host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Queue capacity in simulated seconds (Figure 9 uses 50).
    pub capacity_secs: f64,
    /// Discovery protocol to run.
    pub protocol: ProtocolKind,
    /// Protocol parameters.
    pub protocol_config: ProtocolConfig,
    /// Wall-clock poll quantum of the host loop.
    pub tick: Duration,
    /// Wall-clock admission-negotiation timeout (per attempt).
    pub negotiation_timeout: Duration,
    /// Retry policy for transient negotiation failures (timeout, Busy,
    /// Closed). Explicit refusals are final regardless of this policy.
    pub negotiation_retry: RetryPolicy,
    /// Total wall-clock budget for one migration negotiation: a retry whose
    /// backoff-plus-timeout cannot fit is abandoned and charged.
    pub negotiation_deadline: Duration,
    /// Ship the component state with the admission request (one round trip,
    /// §3's "speculative migration") instead of negotiating first and moving
    /// after (two round trips).
    pub speculative_migration: bool,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            capacity_secs: 50.0,
            protocol: ProtocolKind::Realtor,
            protocol_config: ProtocolConfig::paper(),
            tick: Duration::from_micros(200),
            negotiation_timeout: Duration::from_millis(20),
            negotiation_retry: RetryPolicy::default(),
            negotiation_deadline: Duration::from_millis(100),
            speculative_migration: true,
        }
    }
}

/// How a submitted task fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted into the local queue.
    AdmittedLocal,
    /// Admitted at another host after migration.
    AdmittedMigrated,
    /// Refused everywhere (or nowhere to go).
    Rejected,
    /// The target host was dead; the arrival vanished.
    Lost,
}

/// Control-plane messages to a host.
#[derive(Debug)]
pub enum HostControl {
    /// A task of the given size arrives at this host.
    Submit {
        /// Service demand in simulated seconds.
        size_secs: f64,
        /// Where to report the admission outcome (closed-loop clients);
        /// `None` for fire-and-forget submission.
        reply: Option<Sender<SubmitOutcome>>,
    },
    /// Simulate an external attack: the host stops answering datagrams and
    /// admissions; its queued work is interrupted and filed for recovery.
    Kill,
    /// Bring an attacked host back with fresh (soft) state.
    Revive,
    /// Die on the spot without any cleanup: the thread exits with
    /// [`EXIT_CRASHED`] and leaves its [`HostCore`] for the supervisor.
    Crash,
    /// Stop heartbeating for the given wall duration (a wedged host, from
    /// the supervisor's point of view).
    Stall(Duration),
    /// Shut the host down cleanly.
    Stop,
}

/// Per-host counters, shared with the cluster.
#[derive(Debug, Default)]
pub struct HostStats {
    /// Tasks submitted to this host.
    pub offered: AtomicU64,
    /// Tasks admitted locally.
    pub admitted_local: AtomicU64,
    /// Tasks admitted here after migrating in.
    pub admitted_migrated: AtomicU64,
    /// Tasks this host rejected outright.
    pub rejected: AtomicU64,
    /// Migrations this host initiated that succeeded.
    pub migrations_out: AtomicU64,
    /// Tasks submitted while this host was down (lost to the attack).
    pub lost_to_attacks: AtomicU64,
    /// Queued tasks interrupted by this host's death.
    pub interrupted: AtomicU64,
    /// Negotiation attempts retried after a transient failure.
    pub negotiation_retries: AtomicU64,
    /// Negotiations abandoned because the deadline budget could not cover
    /// another attempt.
    pub negotiation_abandoned: AtomicU64,
    /// HELP floods sent.
    pub helps_sent: AtomicU64,
    /// PLEDGE/ADVERT datagrams sent.
    pub datagrams_sent: AtomicU64,
    /// Wall-clock migration latencies (seconds).
    pub migration_latency: Mutex<Welford>,
    /// Wall-clock latency of every successful admission (nanoseconds, from
    /// submit to outcome, local and migrated alike), as a mergeable
    /// [`LogHistogram`] the cluster folds into its report and metrics
    /// snapshots.
    pub admission_latency_ns: Mutex<LogHistogram>,
}

/// One task resident in a host's queue.
#[derive(Debug, Clone)]
pub struct InflightTask {
    /// Component identity.
    pub id: ComponentId,
    /// Original service demand (simulated seconds).
    pub size_secs: f64,
    /// Simulated instant at which the fluid queue finishes it.
    pub drain_at: SimTime,
    /// Migration count at admission (the naming version of its binding).
    pub migrations: u64,
}

/// The shared admission state of one host: the fluid work queue plus the
/// identity of every resident task. Shared between the host main loop, the
/// admission-control thread, and the cluster supervisor — which drains it
/// with [`HostCore::drain_on_death`] when the host dies without running its
/// own cleanup.
#[derive(Debug)]
pub struct HostCore {
    /// The fluid work queue (admission bookkeeping).
    pub queue: WorkQueue,
    /// Resident tasks, in admission order.
    pub inflight: Vec<InflightTask>,
    capacity_secs: f64,
}

impl HostCore {
    /// An empty core with the given queue capacity.
    pub fn new(capacity_secs: f64) -> Self {
        HostCore {
            queue: WorkQueue::new(capacity_secs),
            inflight: Vec::new(),
            capacity_secs,
        }
    }

    /// Is `id` resident here? (Admission dedup for retried commits.)
    pub fn contains(&self, id: ComponentId) -> bool {
        self.inflight.iter().any(|t| t.id == id)
    }

    /// The host died: tasks that had already drained unbind from naming,
    /// unfinished ones become [`RecoveryItem`]s carrying their remaining
    /// work (fluid approximation: time until their drain instant). The
    /// queue is reset for the amnesiac successor.
    pub fn drain_on_death(
        &mut self,
        now: SimTime,
        from_host: HostId,
        naming: &NameService,
    ) -> Vec<RecoveryItem> {
        let mut items = Vec::new();
        for t in self.inflight.drain(..) {
            if t.drain_at <= now {
                naming.unregister(t.id);
                continue;
            }
            let remaining = (t.drain_at - now).as_secs_f64().min(t.size_secs);
            items.push(RecoveryItem {
                component: AgileComponent {
                    id: t.id,
                    remaining_secs: remaining,
                    migrations: t.migrations,
                },
                from_host,
            });
        }
        self.queue = WorkQueue::new(self.capacity_secs);
        items
    }
}

/// Everything a host thread needs; assembled by the cluster builder (fields
/// are public because the cluster wires replacements during amnesiac
/// restarts).
pub struct Host {
    /// This host's id.
    pub id: HostId,
    /// Configuration.
    pub cfg: HostConfig,
    /// The cluster clock.
    pub clock: Clock,
    /// Datagram/multicast endpoint.
    pub endpoint: Endpoint,
    /// Control-plane receiver.
    pub control: Receiver<HostControl>,
    /// Admission-negotiation server (codec bytes on the wire).
    pub admission_server: RequestServer<Vec<u8>, Vec<u8>>,
    /// Admission clients of every host, swappable under restart.
    pub directory: AdmissionDirectory,
    /// The shared naming service.
    pub naming: NameService,
    /// Shared counters.
    pub stats: Arc<HostStats>,
    /// Shared admission state (see [`HostCore`]).
    pub core: Arc<Mutex<HostCore>>,
    /// Attacked/dead flag (refuses admissions and drops datagrams).
    pub dead: Arc<AtomicBool>,
    /// Heartbeat counter, bumped every loop iteration.
    pub beat: Arc<AtomicU64>,
    /// Set by the supervisor to fence off a wedged incarnation: the thread
    /// exits as soon as it observes the flag and must touch nothing else.
    pub fenced: Arc<AtomicBool>,
    /// Exit status ([`EXIT_RUNNING`] until the thread ends).
    pub exit: Arc<AtomicU8>,
    /// Control messages sent but not yet processed (quiescence accounting).
    pub control_pending: Arc<AtomicU64>,
    /// Cluster-wide queue of interrupted components awaiting recovery.
    pub recovery: Arc<Mutex<Vec<RecoveryItem>>>,
    /// Cluster-wide survivability ledger.
    pub ledger: Arc<ClusterLedger>,
    /// Event/counter sink.
    pub tracer: Tracer,
    /// Seeded RNG for retry jitter (stream per host).
    pub retry_rng: SimRng,
    /// Incarnation number (0 = original, bumped per amnesiac restart).
    /// Keeps component-id spaces of successive incarnations disjoint, so a
    /// restarted host can never collide with components its predecessor
    /// created that are still alive elsewhere.
    pub component_epoch: u64,
}

impl Host {
    /// Run the host until a `Stop`/`Crash` control message arrives or the
    /// supervisor fences it off. Spawns the admission-control thread
    /// internally and joins it before returning.
    pub fn run(self) {
        let Host {
            id,
            cfg,
            clock,
            endpoint,
            control,
            admission_server,
            directory,
            naming,
            stats,
            core,
            dead,
            beat,
            fenced,
            exit,
            control_pending,
            recovery,
            ledger,
            tracer,
            retry_rng,
            component_epoch,
        } = self;
        let stop = Arc::new(AtomicBool::new(false));

        // --- Admission Control thread (Figure 1) -----------------------
        let usage_dirty = Arc::new(AtomicBool::new(false));
        let ac_core = Arc::clone(&core);
        let ac_stats = Arc::clone(&stats);
        let ac_dirty = Arc::clone(&usage_dirty);
        let ac_stop = Arc::clone(&stop);
        let ac_dead = Arc::clone(&dead);
        let ac_naming = naming.clone();
        let ac_tracer = tracer.clone();
        let ac_clock = clock;
        let admission_thread = std::thread::Builder::new()
            .name(format!("agile-ac-{id}"))
            .spawn(move || {
                let refuse = encode_admission_reply(&AdmissionReply { accepted: false });
                let accept = encode_admission_reply(&AdmissionReply { accepted: true });
                while !ac_stop.load(Ordering::Relaxed) {
                    admission_server.serve_one(Duration::from_millis(5), |bytes: Vec<u8>| {
                        // Malformed wire bytes are refused, never trusted.
                        let Ok(req) = decode_admission_request(&bytes) else {
                            return refuse.clone();
                        };
                        if ac_dead.load(Ordering::Relaxed) {
                            return refuse.clone(); // attacked hosts refuse everything
                        }
                        let now = ac_clock.now();
                        if !req.commit {
                            // Reserve-only probe (non-speculative first phase).
                            let ok = {
                                let c = ac_core.lock().expect("core lock");
                                c.queue.can_accept(now, req.size_secs)
                            };
                            return if ok { accept.clone() } else { refuse.clone() };
                        }
                        let Some(mut component) = AgileComponent::restore(&req.component) else {
                            return refuse.clone();
                        };
                        {
                            let mut c = ac_core.lock().expect("core lock");
                            if c.contains(component.id) {
                                // A retried commit whose first reply was lost:
                                // the component already lives here. Accepting
                                // again (without re-admitting) keeps the
                                // exchange idempotent.
                                return accept.clone();
                            }
                            if !c.queue.can_accept(now, req.size_secs) {
                                return refuse.clone();
                            }
                            c.queue.admit(now, req.size_secs).expect("checked can_accept");
                            let drain_at = c.queue.drain_time(now);
                            component.migrated();
                            c.inflight.push(InflightTask {
                                id: component.id,
                                size_secs: req.size_secs,
                                drain_at,
                                migrations: component.migrations,
                            });
                        }
                        if req.recovery {
                            // Recovery re-admission: the task was already
                            // counted at its original admission, so only the
                            // per-host trace counter moves (the cluster
                            // ledger's `recovered` is settled by the
                            // supervisor when the reply lands).
                            ac_tracer.count_node("runtime_recovered_in", id, 1);
                        } else {
                            ac_stats.admitted_migrated.fetch_add(1, Ordering::Relaxed);
                        }
                        ac_dirty.store(true, Ordering::Relaxed);
                        ac_naming.update(component.id, id, component.migrations);
                        accept.clone()
                    });
                }
            })
            .expect("spawn admission thread");

        // --- Main loop: REALTOR agent + Job Scheduler + Migration ------
        let mut driver = HostDriver::new(
            id,
            &cfg,
            clock,
            endpoint,
            directory,
            naming,
            Arc::clone(&stats),
            Arc::clone(&core),
            Arc::clone(&usage_dirty),
            recovery,
            ledger,
            tracer,
            retry_rng,
            component_epoch,
        );
        driver.start();
        let status = 'main: loop {
            beat.fetch_add(1, Ordering::Relaxed);
            if fenced.load(Ordering::Relaxed) {
                // A wedged incarnation that wakes up after replacement must
                // vanish without touching shared state.
                break 'main EXIT_STOPPED;
            }
            // 1. Control plane. Beat per message so a long drain (each
            //    submit can negotiate for up to the deadline budget) is not
            //    mistaken for a wedge; stop draining the moment this
            //    incarnation is fenced.
            let mut stopped = false;
            while !fenced.load(Ordering::Relaxed) {
                let Ok(msg) = control.try_recv() else { break };
                beat.fetch_add(1, Ordering::Relaxed);
                control_pending.fetch_sub(1, Ordering::Relaxed);
                match msg {
                    HostControl::Submit { size_secs, reply } => {
                        let outcome = if dead.load(Ordering::Relaxed) {
                            // Arrivals addressed to an attacked host vanish.
                            driver.stats.offered.fetch_add(1, Ordering::Relaxed);
                            driver.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            driver.stats.lost_to_attacks.fetch_add(1, Ordering::Relaxed);
                            SubmitOutcome::Lost
                        } else {
                            driver.submit(size_secs)
                        };
                        if let Some(tx) = reply {
                            let _ = tx.send(outcome);
                        }
                    }
                    HostControl::Kill => {
                        dead.store(true, Ordering::Relaxed);
                        driver.on_killed();
                    }
                    HostControl::Revive => {
                        dead.store(false, Ordering::Relaxed);
                        driver.on_revived();
                    }
                    HostControl::Crash => {
                        // No cleanup whatsoever: queued work stays in the
                        // shared core for the supervisor to recover.
                        dead.store(true, Ordering::Relaxed);
                        break 'main EXIT_CRASHED;
                    }
                    HostControl::Stall(d) => std::thread::sleep(d),
                    HostControl::Stop => stopped = true,
                }
            }
            if stopped {
                break 'main EXIT_STOPPED;
            }
            // 2. Discovery datagrams (blocking up to one tick). Dead hosts
            //    drain and drop their inbox without processing.
            if let Some(dgram) = driver.endpoint.recv_timeout(cfg.tick) {
                if !dead.load(Ordering::Relaxed) {
                    if let Ok(msg) = decode_message(&dgram.payload) {
                        driver.on_message(dgram.from, &msg);
                    }
                    while let Some(dgram) = driver.endpoint.try_recv() {
                        if let Ok(msg) = decode_message(&dgram.payload) {
                            driver.on_message(dgram.from, &msg);
                        }
                    }
                } else {
                    while driver.endpoint.try_recv().is_some() {}
                }
            }
            // 3. Timers, usage polling, completions.
            if !dead.load(Ordering::Relaxed) {
                driver.poll();
            }
        };
        stop.store(true, Ordering::Relaxed);
        admission_thread.join().expect("admission thread join");
        exit.store(status, Ordering::Relaxed);
    }
}

/// The single-threaded protocol/migration driver inside the host main loop.
struct HostDriver {
    id: HostId,
    clock: Clock,
    endpoint: Endpoint,
    directory: AdmissionDirectory,
    naming: NameService,
    stats: Arc<HostStats>,
    core: Arc<Mutex<HostCore>>,
    usage_dirty: Arc<AtomicBool>,
    recovery: Arc<Mutex<Vec<RecoveryItem>>>,
    ledger: Arc<ClusterLedger>,
    tracer: Tracer,
    protocol: Box<dyn DiscoveryProtocol>,
    actions: Actions,
    timers: Vec<(SimTime, TimerToken)>,
    monitor: ResourceMonitor,
    next_component: u64,
    capacity_secs: f64,
    negotiation_timeout: Duration,
    negotiation_deadline: Duration,
    retry: RetryPolicy,
    speculative: bool,
    rng: SimRng,
}

impl HostDriver {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: HostId,
        cfg: &HostConfig,
        clock: Clock,
        endpoint: Endpoint,
        directory: AdmissionDirectory,
        naming: NameService,
        stats: Arc<HostStats>,
        core: Arc<Mutex<HostCore>>,
        usage_dirty: Arc<AtomicBool>,
        recovery: Arc<Mutex<Vec<RecoveryItem>>>,
        ledger: Arc<ClusterLedger>,
        tracer: Tracer,
        rng: SimRng,
        epoch: u64,
    ) -> Self {
        let peer_ids: Vec<usize> = (0..directory.len()).collect();
        let protocol = cfg.protocol.build(
            id,
            cfg.protocol_config,
            &peer_ids,
            cfg.capacity_secs,
        );
        HostDriver {
            id,
            clock,
            endpoint,
            directory,
            naming,
            stats,
            core,
            usage_dirty,
            recovery,
            ledger,
            tracer,
            protocol,
            actions: Actions::new(),
            timers: Vec::new(),
            monitor: ResourceMonitor::new(1.0, vec![cfg.protocol_config.pledge_threshold]),
            // Host-disjoint id spaces, incarnation-disjoint within a host.
            next_component: ((id as u64) << 40) | ((epoch & 0xff) << 32),
            capacity_secs: cfg.capacity_secs,
            negotiation_timeout: cfg.negotiation_timeout,
            negotiation_deadline: cfg.negotiation_deadline,
            retry: cfg.negotiation_retry,
            speculative: cfg.speculative_migration,
            rng,
        }
    }

    fn view(&self, now: SimTime) -> LocalView {
        let c = self.core.lock().expect("core lock");
        LocalView::new(c.queue.headroom_at(now), self.capacity_secs)
    }

    fn start(&mut self) {
        let now = self.clock.now();
        let view = self.view(now);
        self.protocol.on_start(now, view, &mut self.actions);
        self.dispatch_actions(now);
    }

    fn dispatch_actions(&mut self, now: SimTime) {
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain() {
            match action {
                Action::Flood(msg) => {
                    self.endpoint.multicast(HELP_GROUP, encode_message(&msg));
                    self.stats.helps_sent.fetch_add(1, Ordering::Relaxed);
                }
                Action::Unicast(to, msg) => {
                    self.endpoint.send(to, encode_message(&msg));
                    self.stats.datagrams_sent.fetch_add(1, Ordering::Relaxed);
                }
                Action::SetTimer(token, delay) => {
                    self.timers.push((now + delay, token));
                }
                Action::DeclareDead(_) => {
                    // The agile substrate has no orphan-recovery machinery;
                    // dead-peer declarations are local knowledge only.
                }
            }
        }
        self.actions = actions;
    }

    fn on_message(&mut self, from: HostId, msg: &realtor_core::Message) {
        let now = self.clock.now();
        let view = self.view(now);
        self.protocol.on_message(now, from, msg, view, &mut self.actions);
        self.dispatch_actions(now);
    }

    fn record_admission_latency(&self, started: std::time::Instant) {
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.stats
            .admission_latency_ns
            .lock()
            .expect("latency lock")
            .record(ns);
    }

    fn submit(&mut self, size_secs: f64) -> SubmitOutcome {
        let now = self.clock.now();
        let submit_started = std::time::Instant::now();
        self.stats.offered.fetch_add(1, Ordering::Relaxed);

        let id = ComponentId(self.next_component);
        self.next_component += 1;

        // Check-and-admit must be atomic with respect to the admission
        // thread (which admits migrated-in components concurrently).
        let (frac_with, headroom, admitted_drain) = {
            let mut c = self.core.lock().expect("core lock");
            let f = c.queue.frac_with(now, size_secs);
            let h = c.queue.headroom_at(now);
            let d = c.queue.admit(now, size_secs).ok().map(|_| {
                let drain_at = c.queue.drain_time(now);
                c.inflight.push(InflightTask {
                    id,
                    size_secs,
                    drain_at,
                    migrations: 0,
                });
                drain_at
            });
            (f, h, d)
        };
        let view = LocalView {
            queue_frac: frac_with,
            headroom_secs: headroom,
            capacity_secs: self.capacity_secs,
        };
        self.protocol.on_task_arrival(now, view, &mut self.actions);
        self.dispatch_actions(now);

        if admitted_drain.is_some() {
            self.stats.admitted_local.fetch_add(1, Ordering::Relaxed);
            self.tracer.count_node("runtime_admitted", self.id, 1);
            self.naming.register(id, self.id);
            self.record_admission_latency(submit_started);
            self.usage_change(now);
            return SubmitOutcome::AdmittedLocal;
        }

        // One-shot migration, as in the simulation experiments.
        let component = AgileComponent::new(id, size_secs);
        let Some(dest) = self.protocol.pick_candidate(now, size_secs) else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return SubmitOutcome::Rejected;
        };
        let started = std::time::Instant::now();
        let admitted = self.migrate(component, dest, size_secs);
        let outcome = if admitted {
            self.stats
                .migration_latency
                .lock()
                .expect("latency lock")
                .record(started.elapsed().as_secs_f64());
            self.stats.migrations_out.fetch_add(1, Ordering::Relaxed);
            self.record_admission_latency(submit_started);
            SubmitOutcome::AdmittedMigrated
        } else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            SubmitOutcome::Rejected
        };
        self.protocol.on_migration_result(now, dest, admitted);
        outcome
    }

    /// Move `component` to `dest`; returns whether it was admitted there.
    fn migrate(&mut self, component: AgileComponent, dest: HostId, size_secs: f64) -> bool {
        self.naming.register(component.id, self.id);
        let ok = if self.speculative {
            // §3: "the migration of the component can happen concurrently to
            // the negotiation among the Admission Controls (speculative
            // migration)" — one round trip carrying the state; the receiver
            // bumps the migration count (naming version) on restore.
            let req = AdmissionRequest {
                size_secs,
                component: component.snapshot(),
                commit: true,
                recovery: false,
            };
            self.negotiate(dest, &req, Some(&component))
        } else {
            // Two phases: reserve, then transfer.
            let probe = AdmissionRequest {
                size_secs,
                component: Vec::new(),
                commit: false,
                recovery: false,
            };
            if !self.negotiate(dest, &probe, None) {
                false
            } else {
                let commit = AdmissionRequest {
                    size_secs,
                    component: component.snapshot(),
                    commit: true,
                    recovery: false,
                };
                self.negotiate(dest, &commit, Some(&component))
            }
        };
        if !ok {
            self.naming.unregister(component.id);
        }
        ok
    }

    /// One reliable exchange with `dest`'s Admission Control under the
    /// bounded-retry policy. Transient transport failures (timeout, a full
    /// server queue, a dead incarnation mid-restart) are retried with
    /// seeded backoff while the deadline budget allows; an explicit refusal
    /// is final. After a timed-out *commit*, the naming service is consulted
    /// first — if the binding moved, the commit landed and only the reply
    /// was lost, so retrying (and double-admitting) would be wrong.
    fn negotiate(
        &mut self,
        dest: HostId,
        req: &AdmissionRequest,
        committed: Option<&AgileComponent>,
    ) -> bool {
        let bytes = encode_admission_request(req);
        let started = std::time::Instant::now();
        for attempt in 0..self.retry.max_tries {
            if attempt > 0 {
                let backoff = self.retry.backoff(attempt - 1, &mut self.rng);
                if !self.retry.attempt_fits(
                    started.elapsed(),
                    backoff,
                    self.negotiation_timeout,
                    self.negotiation_deadline,
                ) {
                    self.stats.negotiation_abandoned.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                std::thread::sleep(backoff);
                self.stats.negotiation_retries.fetch_add(1, Ordering::Relaxed);
            }
            match self
                .directory
                .client(dest)
                .request(bytes.clone(), self.negotiation_timeout)
            {
                Ok(reply) => {
                    // A decoded refusal — or garbage — is final, not retried.
                    return decode_admission_reply(&reply)
                        .map(|r| r.accepted)
                        .unwrap_or(false);
                }
                Err(RequestError::Timeout) => {
                    if let Some(c) = committed {
                        if self.naming.await_binding(
                            c.id,
                            dest,
                            3,
                            Duration::from_micros(200),
                        ) {
                            return true; // commit landed, reply lost
                        }
                    }
                }
                Err(RequestError::Busy) | Err(RequestError::Closed) => {}
            }
        }
        false
    }

    /// The host came under attack: unfinished queued work is interrupted
    /// and filed for supervised recovery; all soft state is lost.
    fn on_killed(&mut self) {
        let now = self.clock.now();
        let items = self
            .core
            .lock()
            .expect("core lock")
            .drain_on_death(now, self.id, &self.naming);
        file_interrupts(
            items,
            &self.ledger,
            &self.stats,
            &self.tracer,
            now,
            &self.recovery,
        );
        self.timers.clear();
        self.protocol.on_reset(now);
    }

    /// The host recovered: restart the protocol from scratch. The core is
    /// normally already empty (the kill drained it); anything still resident
    /// is interrupted rather than silently lost, keeping the ledger exact.
    fn on_revived(&mut self) {
        let now = self.clock.now();
        let items = self
            .core
            .lock()
            .expect("core lock")
            .drain_on_death(now, self.id, &self.naming);
        file_interrupts(
            items,
            &self.ledger,
            &self.stats,
            &self.tracer,
            now,
            &self.recovery,
        );
        self.protocol.on_reset(now);
        let view = self.view(now);
        self.protocol.on_start(now, view, &mut self.actions);
        self.dispatch_actions(now);
    }

    fn usage_change(&mut self, now: SimTime) {
        let view = self.view(now);
        if self.monitor.sample(view.queue_frac).is_some() {
            self.protocol.on_usage_change(now, view, &mut self.actions);
            self.dispatch_actions(now);
        }
    }

    fn poll(&mut self) {
        let now = self.clock.now();
        // Timers.
        let mut due = Vec::new();
        self.timers.retain(|&(at, token)| {
            if at <= now {
                due.push(token);
                false
            } else {
                true
            }
        });
        for token in due {
            let view = self.view(now);
            self.protocol.on_timer(now, token, view, &mut self.actions);
            self.dispatch_actions(now);
        }
        // Usage: either the admission thread changed the queue, or it
        // drained across the watermark.
        if self.usage_dirty.swap(false, Ordering::Relaxed) {
            self.usage_change(now);
        } else {
            self.usage_change(now); // monitor debounces, so polling is cheap
        }
        // Completions (collect under the lock, unbind outside it).
        let completed: Vec<ComponentId> = {
            let mut c = self.core.lock().expect("core lock");
            let mut done = Vec::new();
            c.inflight.retain(|t| {
                if t.drain_at <= now {
                    done.push(t.id);
                    false
                } else {
                    true
                }
            });
            done
        };
        for id in completed {
            self.naming.unregister(id);
        }
    }
}
