//! The per-host runtime: one main thread driving the discovery agent, task
//! admission and migration, plus one admission-control thread serving
//! reliable negotiation requests — mirroring the component split of the
//! paper's Figure 1 (REALTOR, Admission Control, Job Scheduler, Migration
//! Subsystem).

use crate::clock::Clock;
use crate::codec::{decode_message, encode_message};
use crate::component::AgileComponent;
use crate::naming::{ComponentId, NameService};
use crate::transport::{Endpoint, HostId, RequestClient, RequestServer};
use realtor_core::protocol::{Action, Actions, DiscoveryProtocol, LocalView, TimerToken};
use realtor_core::{ProtocolConfig, ProtocolKind};
use realtor_node::{ResourceMonitor, WorkQueue};
use realtor_simcore::stats::Welford;
use realtor_simcore::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The multicast group carrying HELP floods (all hosts).
pub const HELP_GROUP: usize = 0;

/// Host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Queue capacity in simulated seconds (Figure 9 uses 50).
    pub capacity_secs: f64,
    /// Discovery protocol to run.
    pub protocol: ProtocolKind,
    /// Protocol parameters.
    pub protocol_config: ProtocolConfig,
    /// Wall-clock poll quantum of the host loop.
    pub tick: Duration,
    /// Wall-clock admission-negotiation timeout.
    pub negotiation_timeout: Duration,
    /// Ship the component state with the admission request (one round trip,
    /// §3's "speculative migration") instead of negotiating first and moving
    /// after (two round trips).
    pub speculative_migration: bool,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            capacity_secs: 50.0,
            protocol: ProtocolKind::Realtor,
            protocol_config: ProtocolConfig::paper(),
            tick: Duration::from_micros(200),
            negotiation_timeout: Duration::from_millis(20),
            speculative_migration: true,
        }
    }
}

/// Control-plane messages to a host.
#[derive(Debug)]
pub enum HostControl {
    /// A task of the given size arrives at this host.
    Submit {
        /// Service demand in simulated seconds.
        size_secs: f64,
    },
    /// Simulate an external attack: the host stops answering datagrams and
    /// admissions, and its queued work is lost.
    Kill,
    /// Bring an attacked host back with fresh (soft) state.
    Revive,
    /// Shut the host down.
    Stop,
}

/// Reliable admission-negotiation request (TCP-like channel).
#[derive(Debug)]
pub struct AdmissionRequest {
    /// Queue demand of the migrating component.
    pub size_secs: f64,
    /// Component snapshot; empty for a reserve-only probe (non-speculative
    /// first phase).
    pub component: Vec<u8>,
    /// True when this request transfers the component (commit), false for a
    /// reserve-only probe.
    pub commit: bool,
}

/// Per-host counters, shared with the cluster.
#[derive(Debug, Default)]
pub struct HostStats {
    /// Tasks submitted to this host.
    pub offered: AtomicU64,
    /// Tasks admitted locally.
    pub admitted_local: AtomicU64,
    /// Tasks admitted here after migrating in.
    pub admitted_migrated: AtomicU64,
    /// Tasks this host rejected outright.
    pub rejected: AtomicU64,
    /// Migrations this host initiated that succeeded.
    pub migrations_out: AtomicU64,
    /// Tasks submitted while this host was down (lost to the attack).
    pub lost_to_attacks: AtomicU64,
    /// HELP floods sent.
    pub helps_sent: AtomicU64,
    /// PLEDGE/ADVERT datagrams sent.
    pub datagrams_sent: AtomicU64,
    /// Wall-clock migration latencies (seconds).
    pub migration_latency: Mutex<Welford>,
}

/// Everything a host thread needs.
pub struct Host {
    id: HostId,
    cfg: HostConfig,
    clock: Clock,
    endpoint: Endpoint,
    control: Receiver<HostControl>,
    admission_server: RequestServer<AdmissionRequest, bool>,
    /// Admission clients of every host (index = host id).
    peers: Vec<RequestClient<AdmissionRequest, bool>>,
    naming: NameService,
    stats: Arc<HostStats>,
    queue: Arc<Mutex<WorkQueue>>,
    usage_dirty: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    dead: Arc<AtomicBool>,
}

impl Host {
    /// Assemble a host (the cluster builder calls this).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: HostId,
        cfg: HostConfig,
        clock: Clock,
        endpoint: Endpoint,
        control: Receiver<HostControl>,
        admission_server: RequestServer<AdmissionRequest, bool>,
        peers: Vec<RequestClient<AdmissionRequest, bool>>,
        naming: NameService,
        stats: Arc<HostStats>,
    ) -> Self {
        let queue = Arc::new(Mutex::new(WorkQueue::new(cfg.capacity_secs)));
        Host {
            id,
            cfg,
            clock,
            endpoint,
            control,
            admission_server,
            peers,
            naming,
            stats,
            queue,
            usage_dirty: Arc::new(AtomicBool::new(false)),
            stop: Arc::new(AtomicBool::new(false)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Run the host until a `Stop` control message arrives. Spawns the
    /// admission-control thread internally and joins it before returning.
    pub fn run(self) {
        let Host {
            id,
            cfg,
            clock,
            endpoint,
            control,
            admission_server,
            peers,
            naming,
            stats,
            queue,
            usage_dirty,
            stop,
            dead,
        } = self;

        // --- Admission Control thread (Figure 1) -----------------------
        let ac_queue = Arc::clone(&queue);
        let ac_stats = Arc::clone(&stats);
        let ac_dirty = Arc::clone(&usage_dirty);
        let ac_stop = Arc::clone(&stop);
        let ac_dead = Arc::clone(&dead);
        let ac_naming = naming.clone();
        let ac_clock = clock;
        let admission_thread = std::thread::Builder::new()
            .name(format!("agile-ac-{id}"))
            .spawn(move || {
                while !ac_stop.load(Ordering::Relaxed) {
                    admission_server.serve_one(Duration::from_millis(5), |req| {
                        if ac_dead.load(Ordering::Relaxed) {
                            return false; // attacked hosts refuse everything
                        }
                        let now = ac_clock.now();
                        let mut q = ac_queue.lock().expect("queue lock");
                        if !q.can_accept(now, req.size_secs) {
                            return false;
                        }
                        if req.commit {
                            q.admit(now, req.size_secs).expect("checked can_accept");
                            drop(q);
                            ac_stats.admitted_migrated.fetch_add(1, Ordering::Relaxed);
                            ac_dirty.store(true, Ordering::Relaxed);
                            if let Some(mut c) = AgileComponent::restore(&req.component) {
                                c.migrated();
                                ac_naming.update(c.id, id, c.migrations);
                            }
                        }
                        true
                    });
                }
            })
            .expect("spawn admission thread");

        // --- Main loop: REALTOR agent + Job Scheduler + Migration ------
        let mut driver = HostDriver::new(id, &cfg, clock, endpoint, peers, naming, stats, queue, usage_dirty);
        driver.start();
        loop {
            let is_dead = dead.load(Ordering::Relaxed);
            // 1. Control plane.
            let mut stopped = false;
            while let Ok(msg) = control.try_recv() {
                match msg {
                    HostControl::Submit { size_secs } => {
                        if is_dead {
                            // Arrivals addressed to an attacked host vanish.
                            driver.stats.offered.fetch_add(1, Ordering::Relaxed);
                            driver.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            driver.stats.lost_to_attacks.fetch_add(1, Ordering::Relaxed);
                        } else {
                            driver.submit(size_secs);
                        }
                    }
                    HostControl::Kill => {
                        dead.store(true, Ordering::Relaxed);
                        driver.on_killed();
                    }
                    HostControl::Revive => {
                        dead.store(false, Ordering::Relaxed);
                        driver.on_revived();
                    }
                    HostControl::Stop => stopped = true,
                }
            }
            if stopped {
                break;
            }
            // 2. Discovery datagrams (blocking up to one tick). Dead hosts
            //    drain and drop their inbox without processing.
            if let Some(dgram) = driver.endpoint.recv_timeout(cfg.tick) {
                if !dead.load(Ordering::Relaxed) {
                    if let Ok(msg) = decode_message(&dgram.payload) {
                        driver.on_message(dgram.from, &msg);
                    }
                    while let Some(dgram) = driver.endpoint.try_recv() {
                        if let Ok(msg) = decode_message(&dgram.payload) {
                            driver.on_message(dgram.from, &msg);
                        }
                    }
                } else {
                    while driver.endpoint.try_recv().is_some() {}
                }
            }
            // 3. Timers, usage polling, completions.
            if !dead.load(Ordering::Relaxed) {
                driver.poll();
            }
        }
        stop.store(true, Ordering::Relaxed);
        admission_thread.join().expect("admission thread join");
    }
}

/// The single-threaded protocol/migration driver inside the host main loop.
struct HostDriver {
    id: HostId,
    clock: Clock,
    endpoint: Endpoint,
    peers: Vec<RequestClient<AdmissionRequest, bool>>,
    naming: NameService,
    stats: Arc<HostStats>,
    queue: Arc<Mutex<WorkQueue>>,
    usage_dirty: Arc<AtomicBool>,
    protocol: Box<dyn DiscoveryProtocol>,
    actions: Actions,
    timers: Vec<(SimTime, TimerToken)>,
    monitor: ResourceMonitor,
    expiries: Vec<(SimTime, ComponentId)>,
    next_component: u64,
    capacity_secs: f64,
    negotiation_timeout: Duration,
    speculative: bool,
}

impl HostDriver {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: HostId,
        cfg: &HostConfig,
        clock: Clock,
        endpoint: Endpoint,
        peers: Vec<RequestClient<AdmissionRequest, bool>>,
        naming: NameService,
        stats: Arc<HostStats>,
        queue: Arc<Mutex<WorkQueue>>,
        usage_dirty: Arc<AtomicBool>,
    ) -> Self {
        let peer_ids: Vec<usize> = (0..peers.len()).collect();
        let protocol = cfg.protocol.build(
            id,
            cfg.protocol_config,
            &peer_ids,
            cfg.capacity_secs,
        );
        HostDriver {
            id,
            clock,
            endpoint,
            peers,
            naming,
            stats,
            queue,
            usage_dirty,
            protocol,
            actions: Actions::new(),
            timers: Vec::new(),
            monitor: ResourceMonitor::new(1.0, vec![cfg.protocol_config.pledge_threshold]),
            expiries: Vec::new(),
            next_component: (id as u64) << 40, // host-disjoint id spaces
            capacity_secs: cfg.capacity_secs,
            negotiation_timeout: cfg.negotiation_timeout,
            speculative: cfg.speculative_migration,
        }
    }

    fn view(&self, now: SimTime) -> LocalView {
        let q = self.queue.lock().expect("queue lock");
        LocalView::new(q.headroom_at(now), self.capacity_secs)
    }

    fn start(&mut self) {
        let now = self.clock.now();
        let view = self.view(now);
        self.protocol.on_start(now, view, &mut self.actions);
        self.dispatch_actions(now);
    }

    fn dispatch_actions(&mut self, now: SimTime) {
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain() {
            match action {
                Action::Flood(msg) => {
                    self.endpoint.multicast(HELP_GROUP, encode_message(&msg));
                    self.stats.helps_sent.fetch_add(1, Ordering::Relaxed);
                }
                Action::Unicast(to, msg) => {
                    self.endpoint.send(to, encode_message(&msg));
                    self.stats.datagrams_sent.fetch_add(1, Ordering::Relaxed);
                }
                Action::SetTimer(token, delay) => {
                    self.timers.push((now + delay, token));
                }
                Action::DeclareDead(_) => {
                    // The agile substrate has no orphan-recovery machinery;
                    // dead-peer declarations are local knowledge only.
                }
            }
        }
        self.actions = actions;
    }

    fn on_message(&mut self, from: HostId, msg: &realtor_core::Message) {
        let now = self.clock.now();
        let view = self.view(now);
        self.protocol.on_message(now, from, msg, view, &mut self.actions);
        self.dispatch_actions(now);
    }

    fn submit(&mut self, size_secs: f64) {
        let now = self.clock.now();
        self.stats.offered.fetch_add(1, Ordering::Relaxed);

        // Check-and-admit must be atomic with respect to the admission
        // thread (which admits migrated-in components concurrently).
        let (frac_with, headroom, admitted_drain) = {
            let mut q = self.queue.lock().expect("queue lock");
            let f = q.frac_with(now, size_secs);
            let h = q.headroom_at(now);
            let d = q.admit(now, size_secs).ok().map(|_| q.drain_time(now));
            (f, h, d)
        };
        let view = LocalView {
            queue_frac: frac_with,
            headroom_secs: headroom,
            capacity_secs: self.capacity_secs,
        };
        self.protocol.on_task_arrival(now, view, &mut self.actions);
        self.dispatch_actions(now);

        let id = ComponentId(self.next_component);
        self.next_component += 1;
        let component = AgileComponent::new(id, size_secs);

        if let Some(drain) = admitted_drain {
            self.stats.admitted_local.fetch_add(1, Ordering::Relaxed);
            self.naming.register(id, self.id);
            self.expiries.push((drain, id));
            self.usage_change(now);
            return;
        }

        // One-shot migration, as in the simulation experiments.
        let Some(dest) = self.protocol.pick_candidate(now, size_secs) else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let started = std::time::Instant::now();
        let admitted = self.migrate(component, dest, size_secs);
        if admitted {
            self.stats
                .migration_latency
                .lock()
                .expect("latency lock")
                .record(started.elapsed().as_secs_f64());
            self.stats.migrations_out.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        }
        self.protocol.on_migration_result(now, dest, admitted);
    }

    /// Move `component` to `dest`; returns whether it was admitted there.
    fn migrate(&mut self, component: AgileComponent, dest: HostId, size_secs: f64) -> bool {
        self.naming.register(component.id, self.id);
        if self.speculative {
            // §3: "the migration of the component can happen concurrently to
            // the negotiation among the Admission Controls (speculative
            // migration)" — one round trip carrying the state; the receiver
            // bumps the migration count (naming version) on restore.
            let req = AdmissionRequest {
                size_secs,
                component: component.snapshot(),
                commit: true,
            };
            let ok = self.peers[dest]
                .request(req, self.negotiation_timeout)
                .unwrap_or(false);
            if !ok {
                self.naming.unregister(component.id);
            }
            ok
        } else {
            // Two phases: reserve, then transfer.
            let probe = AdmissionRequest {
                size_secs,
                component: Vec::new(),
                commit: false,
            };
            let reserved = self.peers[dest]
                .request(probe, self.negotiation_timeout)
                .unwrap_or(false);
            if !reserved {
                self.naming.unregister(component.id);
                return false;
            }
            let commit = AdmissionRequest {
                size_secs,
                component: component.snapshot(),
                commit: true,
            };
            let ok = self.peers[dest]
                .request(commit, self.negotiation_timeout)
                .unwrap_or(false);
            if !ok {
                self.naming.unregister(component.id);
            }
            ok
        }
    }

    /// The host came under attack: queued work and all soft state are lost.
    fn on_killed(&mut self) {
        let now = self.clock.now();
        *self.queue.lock().expect("queue lock") = WorkQueue::new(self.capacity_secs);
        for (_, id) in self.expiries.drain(..) {
            self.naming.unregister(id);
        }
        self.timers.clear();
        self.protocol.on_reset(now);
    }

    /// The host recovered: restart the protocol from scratch.
    fn on_revived(&mut self) {
        let now = self.clock.now();
        *self.queue.lock().expect("queue lock") = WorkQueue::new(self.capacity_secs);
        self.protocol.on_reset(now);
        let view = self.view(now);
        self.protocol.on_start(now, view, &mut self.actions);
        self.dispatch_actions(now);
    }

    fn usage_change(&mut self, now: SimTime) {
        let view = self.view(now);
        if self.monitor.sample(view.queue_frac).is_some() {
            self.protocol.on_usage_change(now, view, &mut self.actions);
            self.dispatch_actions(now);
        }
    }

    fn poll(&mut self) {
        let now = self.clock.now();
        // Timers.
        let mut due = Vec::new();
        self.timers.retain(|&(at, token)| {
            if at <= now {
                due.push(token);
                false
            } else {
                true
            }
        });
        for token in due {
            let view = self.view(now);
            self.protocol.on_timer(now, token, view, &mut self.actions);
            self.dispatch_actions(now);
        }
        // Usage: either the admission thread changed the queue, or it
        // drained across the watermark.
        if self.usage_dirty.swap(false, Ordering::Relaxed) {
            self.usage_change(now);
        } else {
            self.usage_change(now); // monitor debounces, so polling is cheap
        }
        // Completions.
        let naming = &self.naming;
        self.expiries.retain(|&(at, id)| {
            if at <= now {
                naming.unregister(id);
                false
            } else {
                true
            }
        });
    }
}
