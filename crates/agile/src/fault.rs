//! Live fault injection: replay a simulator [`AttackScenario`] against a
//! running thread-per-host cluster.
//!
//! The same scripted scenarios that drive the discrete-event attack
//! experiments (strike-and-recover, rolling waves, …) compile here into a
//! concrete [`FaultPlan`] — victim hosts resolved from a seeded stream over
//! the currently-alive set, timed on the cluster's scaled clock — and a
//! replay thread executes it mid-load. Actions the runtime fabric does not
//! model (link cuts, partitions) are skipped and counted rather than
//! silently dropped, so a driver can report exactly what fraction of a
//! scenario applied.

use crate::cluster::Cluster;
use crate::transport::HostId;
use realtor_simcore::{SimRng, SimTime};
use realtor_workload::attack::{AttackAction, AttackScenario};

/// One concrete fault against one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Take the host down.
    Kill(HostId),
    /// Bring the host back.
    Restore(HostId),
}

/// A scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCommand {
    /// Simulated instant at which to apply the op.
    pub at: SimTime,
    /// The op.
    pub op: FaultOp,
}

/// How kills land on the victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStyle {
    /// The host observes the kill and interrupts its own work (the paper's
    /// attack warning arriving just in time for accounting, not evacuation).
    Cooperative,
    /// The host thread dies on the spot without cleanup; the supervisor
    /// must detect it, recover the work from the shared core, and restart
    /// it amnesiac. `Restore` commands are ignored — a crashed host comes
    /// back only through supervision.
    Crash,
}

/// A fully resolved, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Commands in time order.
    pub commands: Vec<FaultCommand>,
    /// Scenario events that do not apply to the runtime fabric (link cuts,
    /// degradations, partitions) and were skipped.
    pub skipped: usize,
}

impl FaultPlan {
    /// An empty plan.
    pub fn none() -> Self {
        FaultPlan {
            commands: Vec::new(),
            skipped: 0,
        }
    }

    /// True when no command is scheduled.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Resolve `scenario` against a cluster of `hosts` hosts. Victims of
    /// each kill wave are sampled without replacement from the hosts alive
    /// at that point of the script, using the seeded `"fault"` stream —
    /// the same plan for the same `(scenario, hosts, seed)` every run.
    pub fn from_attack(scenario: &AttackScenario, hosts: usize, seed: u64) -> Self {
        let mut rng = SimRng::stream(seed, "fault");
        let mut alive: Vec<HostId> = (0..hosts).collect();
        let mut dead: Vec<HostId> = Vec::new();
        let mut commands = Vec::new();
        let mut skipped = 0;
        let kill = |at: SimTime,
                        count: usize,
                        rng: &mut SimRng,
                        alive: &mut Vec<HostId>,
                        dead: &mut Vec<HostId>,
                        commands: &mut Vec<FaultCommand>| {
            let count = count.min(alive.len());
            let mut victims: Vec<HostId> = rng
                .sample_indices(alive.len(), count)
                .into_iter()
                .map(|i| alive[i])
                .collect();
            victims.sort_unstable();
            for v in victims {
                alive.retain(|&h| h != v);
                dead.push(v);
                commands.push(FaultCommand {
                    at,
                    op: FaultOp::Kill(v),
                });
            }
        };
        for ev in scenario.events() {
            match ev.action {
                AttackAction::Kill { count } => {
                    kill(ev.at, count, &mut rng, &mut alive, &mut dead, &mut commands);
                }
                AttackAction::KillAfterWarning { count, lead } => {
                    // The runtime has no evacuation machinery; the strike
                    // simply lands at warning-time + lead.
                    kill(
                        ev.at + lead,
                        count,
                        &mut rng,
                        &mut alive,
                        &mut dead,
                        &mut commands,
                    );
                }
                AttackAction::RestoreAll => {
                    dead.sort_unstable();
                    for v in dead.drain(..) {
                        alive.push(v);
                        commands.push(FaultCommand {
                            at: ev.at,
                            op: FaultOp::Restore(v),
                        });
                    }
                }
                AttackAction::Restore { count } => {
                    dead.sort_unstable();
                    for v in dead.drain(..count.min(dead.len())).collect::<Vec<_>>() {
                        alive.push(v);
                        commands.push(FaultCommand {
                            at: ev.at,
                            op: FaultOp::Restore(v),
                        });
                    }
                }
                AttackAction::CutLinks { .. }
                | AttackAction::RestoreLinks
                | AttackAction::DegradeLinks { .. }
                | AttackAction::RestoreLinkQuality
                | AttackAction::Partition { .. }
                | AttackAction::Heal => skipped += 1,
            }
        }
        commands.sort_by_key(|c| c.at);
        FaultPlan { commands, skipped }
    }
}

/// Replay `plan` against `cluster` on its scaled clock, blocking until the
/// last command has been applied. `Cooperative` kills go through the
/// control plane ([`Cluster::kill_host`]); `Crash` kills terminate the host
/// thread outright ([`Cluster::crash_host`]) and ignore restores, leaving
/// revival to the supervisor.
pub fn run_faults(cluster: &Cluster, plan: &FaultPlan, style: FaultStyle) {
    let clock = cluster.clock();
    for cmd in &plan.commands {
        clock.sleep_until(cmd.at);
        match (cmd.op, style) {
            (FaultOp::Kill(h), FaultStyle::Cooperative) => cluster.kill_host(h),
            (FaultOp::Kill(h), FaultStyle::Crash) => cluster.crash_host(h),
            (FaultOp::Restore(h), FaultStyle::Cooperative) => cluster.revive_host(h),
            (FaultOp::Restore(_), FaultStyle::Crash) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realtor_simcore::SimDuration;
    use realtor_workload::attack::AttackEvent;

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn strike_and_recover_resolves_victims_and_restores_them() {
        let s = AttackScenario::strike_and_recover(at(100), at(200), 3);
        let plan = FaultPlan::from_attack(&s, 10, 7);
        assert_eq!(plan.skipped, 0);
        assert_eq!(plan.commands.len(), 6);
        let kills: Vec<HostId> = plan
            .commands
            .iter()
            .filter_map(|c| match c.op {
                FaultOp::Kill(h) => Some(h),
                _ => None,
            })
            .collect();
        let restores: Vec<HostId> = plan
            .commands
            .iter()
            .filter_map(|c| match c.op {
                FaultOp::Restore(h) => Some(h),
                _ => None,
            })
            .collect();
        assert_eq!(kills.len(), 3);
        assert_eq!(restores, kills, "restore-all brings back exactly the victims");
        assert!(plan.commands.iter().all(|c| match c.op {
            FaultOp::Kill(_) => c.at == at(100),
            FaultOp::Restore(_) => c.at == at(200),
        }));
    }

    #[test]
    fn same_seed_same_plan_different_seed_differs() {
        let s = AttackScenario::rolling(at(50), SimDuration::from_secs(30), 2, 4);
        let a = FaultPlan::from_attack(&s, 16, 11);
        let b = FaultPlan::from_attack(&s, 16, 11);
        assert_eq!(a, b);
        let c = FaultPlan::from_attack(&s, 16, 12);
        assert_ne!(a, c, "victim choice must be seed-driven");
    }

    #[test]
    fn second_wave_targets_only_survivors() {
        let events = vec![
            AttackEvent {
                at: at(10),
                action: AttackAction::Kill { count: 3 },
            },
            AttackEvent {
                at: at(20),
                action: AttackAction::Kill { count: 3 },
            },
        ];
        let plan = FaultPlan::from_attack(&AttackScenario::new(events), 6, 3);
        let kills: Vec<HostId> = plan
            .commands
            .iter()
            .filter_map(|c| match c.op {
                FaultOp::Kill(h) => Some(h),
                _ => None,
            })
            .collect();
        assert_eq!(kills.len(), 6, "waves never re-kill a dead host");
        let mut sorted = kills.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn network_actions_are_skipped_and_counted() {
        let s = AttackScenario::partition_and_heal(at(10), at(20), 2);
        let plan = FaultPlan::from_attack(&s, 8, 1);
        assert!(plan.is_empty());
        assert_eq!(plan.skipped, 2);
    }

    #[test]
    fn warned_kill_lands_after_the_lead() {
        let s = AttackScenario::warned_strike_and_recover(
            at(100),
            SimDuration::from_secs(40),
            at(200),
            2,
        );
        let plan = FaultPlan::from_attack(&s, 8, 5);
        let kill_times: Vec<SimTime> = plan
            .commands
            .iter()
            .filter_map(|c| match c.op {
                FaultOp::Kill(_) => Some(c.at),
                _ => None,
            })
            .collect();
        assert!(kill_times.iter().all(|&t| t == at(140)));
    }
}
