//! Property-based tests for the Agile Objects runtime pieces that have
//! clean algebraic contracts: the wire codec, component snapshots and the
//! naming service. On the in-tree `check` harness.

use realtor_agile::codec::{
    decode_admission_reply, decode_admission_request, decode_message, encode_admission_reply,
    encode_admission_request, encode_message, AdmissionReply, AdmissionRequest,
};
use realtor_agile::{AgileComponent, ComponentId, NameService};
use realtor_core::{Advert, Help, Message, Pledge};
use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};

/// Raw generator output a message is built from — primitives only, so the
/// harness can shrink it; [`build_message`] maps it onto one of the three
/// message variants.
type RawMessage = (u8, usize, u32, f64, u8, f64);

fn gen_raw_message(r: &mut SimRng) -> RawMessage {
    (
        gen::u8_in(r, 0, 3),
        gen::usize_in(r, 0, 1000),
        gen::u32_in(r, 0, 100),
        gen::f64_in(r, 0.0, 1.0),
        gen::u8_in(r, 0, 4),
        gen::f64_in(r, 0.0, 1e6),
    )
}

fn build_message(&(variant, id, count, unit, ttl, secs): &RawMessage) -> Message {
    match variant {
        0 => Message::Help(Help {
            organizer: id,
            member_count: count,
            urgency: unit,
            relay_ttl: ttl,
        }),
        1 => Message::Pledge(Pledge {
            pledger: id,
            headroom_secs: secs,
            community_count: count,
            grant_probability: unit,
            sent_at: SimTime::from_ticks((id as u64).wrapping_mul(1_000_003)),
        }),
        _ => Message::Advert(Advert {
            advertiser: id,
            headroom_secs: secs,
            sent_at: SimTime::from_ticks((id as u64).wrapping_mul(999_983)),
        }),
    }
}

/// decode(encode(m)) == m for every message.
#[test]
fn codec_round_trips() {
    forall(
        "codec_round_trips",
        0xA61E01,
        256,
        gen_raw_message,
        |raw| {
            let msg = build_message(raw);
            let decoded = decode_message(&encode_message(&msg)).unwrap();
            prop_assert_eq!(decoded, msg);
            Ok(())
        },
    );
}

/// The decoder never panics on arbitrary bytes — it returns an error or
/// a message, but must be total.
#[test]
fn decoder_is_total() {
    forall(
        "decoder_is_total",
        0xA61E02,
        256,
        |r| gen::vec(r, 0, 128, gen::any_u8),
        |bytes| {
            let _ = decode_message(bytes);
            Ok(())
        },
    );
}

/// Any prefix truncation of a valid datagram is rejected, never
/// mis-decoded.
#[test]
fn truncation_always_detected() {
    forall(
        "truncation_always_detected",
        0xA61E03,
        256,
        |r| (gen_raw_message(r), gen::usize_in(r, 0, 28)),
        |(raw, keep)| {
            let full = encode_message(&build_message(raw));
            if *keep < full.len() {
                prop_assert!(decode_message(&full[..*keep]).is_err());
            }
            Ok(())
        },
    );
}

/// Component snapshots round-trip.
#[test]
fn component_snapshot_round_trips() {
    forall(
        "component_snapshot_round_trips",
        0xA61E04,
        256,
        |r| (gen::any_u64(r), gen::f64_in(r, 0.001, 1e6), gen::u64_in(r, 0, 100)),
        |&(id, size, migs)| {
            let mut c = AgileComponent::new(ComponentId(id), size);
            for _ in 0..migs {
                c.migrated();
            }
            let restored = AgileComponent::restore(&c.snapshot()).unwrap();
            prop_assert_eq!(restored, c);
            Ok(())
        },
    );
}

/// Raw generator output an admission request is built from.
type RawAdmission = (f64, Vec<u8>, u8, u8);

fn gen_raw_admission(r: &mut SimRng) -> RawAdmission {
    (
        gen::f64_in(r, 0.001, 1e6),
        gen::vec(r, 0, 64, gen::any_u8),
        gen::u8_in(r, 0, 1),
        gen::u8_in(r, 0, 1),
    )
}

fn build_admission(raw: &RawAdmission) -> AdmissionRequest {
    AdmissionRequest {
        size_secs: raw.0,
        component: raw.1.clone(),
        commit: raw.2 == 1,
        recovery: raw.3 == 1,
    }
}

/// Admission requests round-trip for every flag combination and component
/// payload, and replies for both outcomes.
#[test]
fn admission_messages_round_trip() {
    forall(
        "admission_messages_round_trip",
        0xA61E06,
        256,
        gen_raw_admission,
        |raw| {
            let req = build_admission(raw);
            let decoded = decode_admission_request(&encode_admission_request(&req)).unwrap();
            prop_assert_eq!(decoded, req);
            let rep = AdmissionReply {
                accepted: raw.2 == 1,
            };
            prop_assert_eq!(
                decode_admission_reply(&encode_admission_reply(&rep)).unwrap(),
                rep
            );
            Ok(())
        },
    );
}

/// Every proper prefix of an encoded admission request is rejected as
/// truncated — a cut TCP stream can never mis-decode.
#[test]
fn admission_truncation_always_detected() {
    forall(
        "admission_truncation_always_detected",
        0xA61E07,
        256,
        |r| (gen_raw_admission(r), gen::usize_in(r, 0, 128)),
        |(raw, keep)| {
            let full = encode_admission_request(&build_admission(raw));
            if *keep < full.len() {
                prop_assert!(decode_admission_request(&full[..*keep]).is_err());
            }
            Ok(())
        },
    );
}

/// The admission decoders never panic on arbitrary bytes.
#[test]
fn admission_decoders_are_total() {
    forall(
        "admission_decoders_are_total",
        0xA61E08,
        256,
        |r| gen::vec(r, 0, 96, gen::any_u8),
        |bytes| {
            let _ = decode_admission_request(bytes);
            let _ = decode_admission_reply(bytes);
            Ok(())
        },
    );
}

/// A duplicated buffer (the message concatenated with itself, as a
/// duplicating transport would deliver it) still decodes to the original
/// message — trailing bytes never corrupt the first frame.
#[test]
fn admission_duplication_is_harmless() {
    forall(
        "admission_duplication_is_harmless",
        0xA61E09,
        256,
        gen_raw_admission,
        |raw| {
            let req = build_admission(raw);
            let mut doubled = encode_admission_request(&req);
            doubled.extend_from_slice(&doubled.clone());
            prop_assert_eq!(decode_admission_request(&doubled).unwrap(), req);
            Ok(())
        },
    );
}

/// Naming-service updates converge to the highest version regardless of
/// application order.
#[test]
fn naming_updates_are_order_independent() {
    forall(
        "naming_updates_are_order_independent",
        0xA61E05,
        256,
        |r| gen::vec(r, 1, 30, |r| (gen::usize_in(r, 0, 8), gen::u64_in(r, 1, 50))),
        |updates| {
            let apply = |order: &[(usize, u64)]| {
                let ns = NameService::new();
                ns.register(ComponentId(1), 0);
                for &(host, version) in order {
                    ns.update(ComponentId(1), host, version);
                }
                ns.lookup_versioned(ComponentId(1)).unwrap()
            };
            let mut updates = updates.clone();
            let forward = apply(&updates);
            updates.reverse();
            let backward = apply(&updates);
            prop_assert_eq!(forward.1, backward.1, "versions must agree");
            // the winning host is whichever carried the max version; if several
            // carry the max the first applied wins, so only compare versions
            // unless the max is unique.
            let max_v = forward.1;
            let carriers: std::collections::BTreeSet<usize> = updates
                .iter()
                .filter(|&&(_, v)| v == max_v)
                .map(|&(h, _)| h)
                .collect();
            if carriers.len() == 1 {
                prop_assert_eq!(forward.0, backward.0);
            }
            Ok(())
        },
    );
}
