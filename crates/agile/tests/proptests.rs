//! Property-based tests for the Agile Objects runtime pieces that have
//! clean algebraic contracts: the wire codec, component snapshots and the
//! naming service.

use bytes::Bytes;
use proptest::prelude::*;
use realtor_agile::codec::{decode_message, encode_message};
use realtor_agile::{AgileComponent, ComponentId, NameService};
use realtor_core::{Advert, Help, Message, Pledge};

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (0usize..1000, 0u32..100, 0.0f64..=1.0, 0u8..4).prop_map(
            |(organizer, member_count, urgency, relay_ttl)| Message::Help(Help {
                organizer,
                member_count,
                urgency,
                relay_ttl,
            })
        ),
        (0usize..1000, 0.0f64..1e6, 0u32..100, 0.0f64..=1.0).prop_map(
            |(pledger, headroom_secs, community_count, grant_probability)| {
                Message::Pledge(Pledge {
                    pledger,
                    headroom_secs,
                    community_count,
                    grant_probability,
                })
            }
        ),
        (0usize..1000, 0.0f64..1e6).prop_map(|(advertiser, headroom_secs)| {
            Message::Advert(Advert {
                advertiser,
                headroom_secs,
            })
        }),
    ]
}

proptest! {
    /// decode(encode(m)) == m for every message.
    #[test]
    fn codec_round_trips(msg in arb_message()) {
        let decoded = decode_message(encode_message(&msg)).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// The decoder never panics on arbitrary bytes — it returns an error or
    /// a message, but must be total.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_message(Bytes::from(bytes));
    }

    /// Any prefix truncation of a valid datagram is rejected, never
    /// mis-decoded.
    #[test]
    fn truncation_always_detected(msg in arb_message(), keep in 0usize..28) {
        let full = encode_message(&msg);
        if keep < full.len() {
            prop_assert!(decode_message(full.slice(0..keep)).is_err());
        }
    }

    /// Component snapshots round-trip.
    #[test]
    fn component_snapshot_round_trips(id in 0u64..u64::MAX, size in 0.001f64..1e6, migs in 0u64..100) {
        let mut c = AgileComponent::new(ComponentId(id), size);
        for _ in 0..migs {
            c.migrated();
        }
        let restored = AgileComponent::restore(c.snapshot()).unwrap();
        prop_assert_eq!(restored, c);
    }

    /// Naming-service updates converge to the highest version regardless of
    /// application order.
    #[test]
    fn naming_updates_are_order_independent(mut updates in prop::collection::vec((0usize..8, 1u64..50), 1..30)) {
        let apply = |order: &[(usize, u64)]| {
            let ns = NameService::new();
            ns.register(ComponentId(1), 0);
            for &(host, version) in order {
                ns.update(ComponentId(1), host, version);
            }
            ns.lookup_versioned(ComponentId(1)).unwrap()
        };
        let forward = apply(&updates);
        updates.reverse();
        let backward = apply(&updates);
        prop_assert_eq!(forward.1, backward.1, "versions must agree");
        // the winning host is whichever carried the max version; if several
        // carry the max the first applied wins, so only compare versions
        // unless the max is unique.
        let max_v = forward.1;
        let carriers: std::collections::BTreeSet<usize> = updates
            .iter()
            .filter(|&&(_, v)| v == max_v)
            .map(|&(h, _)| h)
            .collect();
        if carriers.len() == 1 {
            prop_assert_eq!(forward.0, backward.0);
        }
    }
}
