//! Survivability integration tests for the live runtime: determinism with
//! faults disabled, the ledger identity under scripted kill/restore
//! schedules, supervised crash/wedge recovery, and bounded shutdown.

use realtor_agile::fault::run_faults;
use realtor_agile::{
    Cluster, ClusterConfig, ClusterReport, FaultPlan, FaultStyle, HostExitStatus, SubmitOutcome,
    SupervisorConfig,
};
use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};
use realtor_workload::attack::AttackScenario;
use realtor_workload::WorkloadSpec;
use std::time::{Duration, Instant};

fn drain(cluster: &Cluster) {
    assert!(
        cluster.quiesce(Duration::from_millis(10), Duration::from_secs(10)),
        "cluster failed to quiesce"
    );
}

fn wait_until(cond: impl Fn() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// The deterministic slice of a report: task accounting, the survivability
/// ledger, and exit statuses. Datagram counters are excluded — discovery
/// chatter depends on thread interleaving even when admission does not.
fn deterministic_slice(r: &ClusterReport) -> (Vec<u64>, Vec<HostExitStatus>) {
    (
        vec![
            r.offered,
            r.admitted_local,
            r.admitted_migrated,
            r.rejected,
            r.lost_to_attacks,
            r.interrupted,
            r.recovered,
            r.destroyed,
            r.recovery_tries,
            r.restarts,
            r.negotiation_abandoned,
        ],
        r.host_exits.iter().map(|e| e.status).collect(),
    )
}

fn zero_fault_run(seed: u64) -> ClusterReport {
    let cluster = Cluster::start(&ClusterConfig {
        hosts: 4,
        time_scale: 2000.0,
        seed,
        ..Default::default()
    });
    // Light enough that no queue ever overflows: admission is decided
    // locally everywhere and the outcome cannot depend on timing.
    let trace = WorkloadSpec::paper(0.3, 4, SimTime::from_secs(60), 5).generate();
    cluster.run_workload(&trace);
    drain(&cluster);
    cluster.shutdown()
}

/// With faults disabled, the survivable runtime behaves exactly like the
/// pre-supervision runtime: no interrupts, no restarts, no retries — and
/// two runs of the same workload produce identical reports.
#[test]
fn zero_fault_runs_are_report_identical() {
    let a = zero_fault_run(11);
    let b = zero_fault_run(11);
    assert_eq!(a.interrupted, 0);
    assert_eq!(a.recovered, 0);
    assert_eq!(a.destroyed, 0);
    assert_eq!(a.recovery_tries, 0);
    assert_eq!(a.restarts, 0);
    assert_eq!(a.negotiation_retries, 0);
    assert_eq!(a.rejected, 0);
    assert!(a
        .host_exits
        .iter()
        .all(|e| e.status == HostExitStatus::Stopped && e.restarts == 0));
    a.validate().expect("identities hold");
    assert_eq!(
        deterministic_slice(&a),
        deterministic_slice(&b),
        "zero-fault runs must be report-identical"
    );
}

/// Property: any scripted kill/restore schedule — cooperative or crash
/// style, with bounded-retry recovery in between — preserves both ledger
/// identities: `offered == admitted + rejected` and
/// `interrupted == recovered + destroyed`.
#[test]
fn kill_restore_schedules_preserve_the_ledger() {
    forall(
        "kill_restore_schedules_preserve_the_ledger",
        0xA61E0A,
        6,
        |r| {
            (
                gen::u64_in(r, 1, 1_000),
                gen::usize_in(r, 1, 2),  // victims per strike
                gen::u8_in(r, 0, 1),     // fault style
                gen::usize_in(r, 4, 10), // offered tasks
            )
        },
        |&(seed, victims, style, tasks)| {
            let cluster = Cluster::start(&ClusterConfig {
                hosts: 3,
                time_scale: 4_000.0,
                seed,
                supervisor: SupervisorConfig {
                    poll: Duration::from_millis(1),
                    ..Default::default()
                },
                ..Default::default()
            });
            for i in 0..tasks {
                cluster.submit(i % 3, 25.0);
            }
            let scenario = AttackScenario::strike_and_recover(
                SimTime::from_secs(4),
                SimTime::from_secs(30),
                victims,
            );
            let plan = FaultPlan::from_attack(&scenario, 3, seed);
            let style = if style == 0 {
                FaultStyle::Cooperative
            } else {
                FaultStyle::Crash
            };
            run_faults(&cluster, &plan, style);
            prop_assert!(
                cluster.quiesce(Duration::from_millis(10), Duration::from_secs(10)),
                "cluster failed to quiesce"
            );
            let report = cluster.shutdown();
            prop_assert!(
                report.validate().is_ok(),
                "ledger identity broken: {:?}",
                report.validate()
            );
            prop_assert_eq!(report.offered, tasks as u64);
            Ok(())
        },
    );
}

/// A crashed host thread is detected by the supervisor, its resident work
/// recovered at a surviving host, and the host restarted amnesiac — after
/// which it admits again.
#[test]
fn supervisor_restarts_a_crashed_host() {
    let cluster = Cluster::start(&ClusterConfig {
        hosts: 3,
        time_scale: 2_000.0,
        supervisor: SupervisorConfig {
            poll: Duration::from_millis(1),
            ..Default::default()
        },
        ..Default::default()
    });
    assert_eq!(
        cluster.submit_sync(0, 30.0, Duration::from_secs(5)),
        SubmitOutcome::AdmittedLocal
    );
    cluster.crash_host(0);
    assert!(
        wait_until(|| cluster.restarts() >= 1, Duration::from_secs(5)),
        "supervisor never restarted the crashed host"
    );
    // The amnesiac incarnation serves admissions again.
    let outcome = cluster.submit_sync(0, 2.0, Duration::from_secs(5));
    assert_ne!(outcome, SubmitOutcome::Rejected);
    assert_ne!(outcome, SubmitOutcome::Lost);
    drain(&cluster);
    let report = cluster.shutdown();
    report.validate().expect("identities hold");
    assert_eq!(report.interrupted, 1, "the resident task was interrupted");
    assert_eq!(report.recovered, 1, "an empty survivor must accept it");
    assert_eq!(report.destroyed, 0);
    assert!(report.recovery_tries >= 1, "every recovery try is charged");
    assert!(report.restarts >= 1);
    assert_eq!(report.host_exits[0].status, HostExitStatus::Stopped);
}

/// A host that stops heartbeating (wedged, not dead) is fenced off and
/// replaced; its work is recovered exactly like a crash.
#[test]
fn wedged_host_is_fenced_and_replaced() {
    // Scale 100: the 40-simulated-second task below is 400 ms of wall time,
    // so it is still resident when the watchdog fences the host (~60 ms in).
    let cluster = Cluster::start(&ClusterConfig {
        hosts: 3,
        time_scale: 100.0,
        supervisor: SupervisorConfig {
            poll: Duration::from_millis(5),
            stall_timeout: Duration::from_millis(50),
            ..Default::default()
        },
        ..Default::default()
    });
    assert_eq!(
        cluster.submit_sync(1, 40.0, Duration::from_secs(5)),
        SubmitOutcome::AdmittedLocal
    );
    cluster.stall_host(1, Duration::from_millis(600));
    assert!(
        wait_until(|| cluster.restarts() >= 1, Duration::from_secs(5)),
        "supervisor never fenced the wedged host"
    );
    let outcome = cluster.submit_sync(1, 2.0, Duration::from_secs(5));
    assert_ne!(outcome, SubmitOutcome::Lost);
    drain(&cluster);
    let report = cluster.shutdown();
    report.validate().expect("identities hold");
    assert!(report.interrupted >= 1);
    assert!(report.restarts >= 1);
    assert_eq!(report.host_exits[1].status, HostExitStatus::Stopped);
}

/// Shutdown is bounded even when a host is wedged and nobody is there to
/// fence it: the driver fences it itself within `shutdown_timeout`, reports
/// it as `Wedged`, and settles its resident work through the ledger.
#[test]
fn shutdown_is_bounded_with_a_wedged_host() {
    // Scale 100 keeps the 50-simulated-second task resident past the
    // 300 ms shutdown budget, so fencing must settle it via the ledger.
    let cluster = Cluster::start(&ClusterConfig {
        hosts: 2,
        time_scale: 100.0,
        shutdown_timeout: Duration::from_millis(300),
        supervisor: SupervisorConfig {
            enabled: false,
            ..Default::default()
        },
        ..Default::default()
    });
    assert_eq!(
        cluster.submit_sync(0, 50.0, Duration::from_secs(5)),
        SubmitOutcome::AdmittedLocal
    );
    cluster.stall_host(0, Duration::from_secs(5));
    std::thread::sleep(Duration::from_millis(20)); // let the stall begin
    let begun = Instant::now();
    let report = cluster.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(2),
        "shutdown took {:?}, must be bounded by the timeout",
        begun.elapsed()
    );
    assert_eq!(report.host_exits[0].status, HostExitStatus::Wedged);
    assert_eq!(report.host_exits[1].status, HostExitStatus::Stopped);
    report.validate().expect("identities hold");
    assert_eq!(report.interrupted, 1);
    // With no supervisor, recovery ends with the run: the task is destroyed.
    assert_eq!(report.destroyed, 1);
}

/// Backpressure: with an absurdly small mailbox the fabric sheds datagrams
/// and counts them, but admission keeps working and every identity holds.
#[test]
fn tiny_mailbox_sheds_but_survives() {
    let cluster = Cluster::start(&ClusterConfig {
        hosts: 4,
        time_scale: 2_000.0,
        mailbox_capacity: 2,
        seed: 9,
        ..Default::default()
    });
    let trace = WorkloadSpec::paper(4.0, 4, SimTime::from_secs(90), 9).generate();
    cluster.run_workload(&trace);
    drain(&cluster);
    let report = cluster.shutdown();
    report.validate().expect("identities hold");
    assert_eq!(report.offered, trace.len() as u64);
    assert!(report.admitted() > 0, "the cluster must keep admitting");
}
