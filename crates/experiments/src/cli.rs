//! Minimal hand-rolled CLI (clap is outside the approved dependency set).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Cli {
    pub command: String,
    options: BTreeMap<String, String>,
}

impl Cli {
    /// Parse `std::env::args`-style input (element 0 is the program name).
    pub fn parse(args: &[String]) -> Result<Cli, String> {
        let mut it = args.iter().skip(1);
        let command = it.next().cloned().unwrap_or_else(|| "help".to_string());
        let mut options = BTreeMap::new();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument: {arg}"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{key}"))?;
            options.insert(key.to_string(), value.clone());
        }
        Ok(Cli { command, options })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} must be an integer")))
            .unwrap_or(default)
    }

    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} must be a number")))
            .unwrap_or(default)
    }

    pub fn get_flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Parse `--lambdas 1,2,3` or `--lambdas 1..10` (inclusive, step 1).
    pub fn get_lambdas(&self, default: &[f64]) -> Vec<f64> {
        let Some(spec) = self.get("lambdas") else {
            return default.to_vec();
        };
        if let Some((lo, hi)) = spec.split_once("..") {
            let lo: u64 = lo.parse().expect("--lambdas range start");
            let hi: u64 = hi.parse().expect("--lambdas range end");
            (lo..=hi).map(|v| v as f64).collect()
        } else {
            spec.split(',')
                .map(|v| v.trim().parse().expect("--lambdas list entry"))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(s: &str) -> Cli {
        let args: Vec<String> = std::iter::once("prog".to_string())
            .chain(s.split_whitespace().map(|s| s.to_string()))
            .collect();
        Cli::parse(&args).unwrap()
    }

    #[test]
    fn parses_command_and_options() {
        let c = cli("fig5 --horizon 5000 --seed 7");
        assert_eq!(c.command, "fig5");
        assert_eq!(c.get_u64("horizon", 0), 5000);
        assert_eq!(c.get_u64("seed", 42), 7);
        assert_eq!(c.get_u64("missing", 9), 9);
    }

    #[test]
    fn parses_lambda_specs() {
        assert_eq!(cli("x --lambdas 2..4").get_lambdas(&[]), vec![2.0, 3.0, 4.0]);
        assert_eq!(
            cli("x --lambdas 1.5,2.5").get_lambdas(&[]),
            vec![1.5, 2.5]
        );
        assert_eq!(cli("x").get_lambdas(&[7.0]), vec![7.0]);
    }

    #[test]
    fn rejects_positional_and_dangling() {
        let args = vec!["p".into(), "cmd".into(), "oops".into()];
        assert!(Cli::parse(&args).is_err());
        let args = vec!["p".into(), "cmd".into(), "--key".into()];
        assert!(Cli::parse(&args).is_err());
    }

    #[test]
    fn missing_command_defaults_to_help() {
        let args = vec!["p".to_string()];
        assert_eq!(Cli::parse(&args).unwrap().command, "help");
    }
}
