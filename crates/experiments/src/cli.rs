//! Minimal hand-rolled CLI (clap is outside the approved dependency set).

use std::collections::BTreeMap;

/// Every scenario name the driver dispatches on, in help order.
pub const COMMANDS: &[&str] = &[
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "figures",
    "figures-ci",
    "fig9",
    "ablation-h",
    "ablation-threshold",
    "scalability",
    "attack",
    "lossy",
    "failover",
    "inter-community",
    "multi-resource",
    "speculative",
    "balance",
    "staleness",
    "dynamics",
    "deadlines",
    "trace",
    "analyze",
    "churn",
    "cluster",
    "all",
    "help",
];

/// The canned scenarios of the `trace` subcommand.
pub const TRACE_SCENARIOS: &[&str] = &["paper", "lossy", "failover"];

/// Reject unknown scenario names with a message that lists the valid ones.
pub fn validate_command(command: &str) -> Result<(), String> {
    if COMMANDS.contains(&command) {
        Ok(())
    } else {
        Err(format!(
            "unknown scenario '{command}'; expected one of: {}",
            COMMANDS.join(", ")
        ))
    }
}

/// Reject unknown `trace --scenario` names the same way.
pub fn validate_trace_scenario(name: &str) -> Result<(), String> {
    if TRACE_SCENARIOS.contains(&name) {
        Ok(())
    } else {
        Err(format!(
            "unknown trace scenario '{name}'; expected one of: {}",
            TRACE_SCENARIOS.join(", ")
        ))
    }
}

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Cli {
    pub command: String,
    options: BTreeMap<String, String>,
}

impl Cli {
    /// Parse `std::env::args`-style input (element 0 is the program name).
    pub fn parse(args: &[String]) -> Result<Cli, String> {
        let mut it = args.iter().skip(1);
        let command = it.next().cloned().unwrap_or_else(|| "help".to_string());
        let mut options = BTreeMap::new();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument: {arg}"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{key}"))?;
            options.insert(key.to_string(), value.clone());
        }
        Ok(Cli { command, options })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} must be an integer")))
            .unwrap_or(default)
    }

    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} must be a number")))
            .unwrap_or(default)
    }

    /// Parse `--jobs N` (worker count for sweep commands). Absent means
    /// serial (`1`); zero and non-integers are rejected with a clear
    /// message rather than a panic so `main` can exit non-zero.
    pub fn get_jobs(&self) -> Result<usize, String> {
        let Some(v) = self.get("jobs") else {
            return Ok(1);
        };
        match v.parse::<usize>() {
            Ok(0) => Err("--jobs must be >= 1".to_string()),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("--jobs must be a positive integer, got '{v}'")),
        }
    }

    pub fn get_flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Parse `--lambdas 1,2,3` or `--lambdas 1..10` (inclusive, step 1).
    pub fn get_lambdas(&self, default: &[f64]) -> Vec<f64> {
        let Some(spec) = self.get("lambdas") else {
            return default.to_vec();
        };
        if let Some((lo, hi)) = spec.split_once("..") {
            let lo: u64 = lo.parse().expect("--lambdas range start");
            let hi: u64 = hi.parse().expect("--lambdas range end");
            (lo..=hi).map(|v| v as f64).collect()
        } else {
            spec.split(',')
                .map(|v| v.trim().parse().expect("--lambdas list entry"))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(s: &str) -> Cli {
        let args: Vec<String> = std::iter::once("prog".to_string())
            .chain(s.split_whitespace().map(|s| s.to_string()))
            .collect();
        Cli::parse(&args).unwrap()
    }

    #[test]
    fn parses_command_and_options() {
        let c = cli("fig5 --horizon 5000 --seed 7");
        assert_eq!(c.command, "fig5");
        assert_eq!(c.get_u64("horizon", 0), 5000);
        assert_eq!(c.get_u64("seed", 42), 7);
        assert_eq!(c.get_u64("missing", 9), 9);
    }

    #[test]
    fn parses_lambda_specs() {
        assert_eq!(cli("x --lambdas 2..4").get_lambdas(&[]), vec![2.0, 3.0, 4.0]);
        assert_eq!(
            cli("x --lambdas 1.5,2.5").get_lambdas(&[]),
            vec![1.5, 2.5]
        );
        assert_eq!(cli("x").get_lambdas(&[7.0]), vec![7.0]);
    }

    #[test]
    fn rejects_positional_and_dangling() {
        let args = vec!["p".into(), "cmd".into(), "oops".into()];
        assert!(Cli::parse(&args).is_err());
        let args = vec!["p".into(), "cmd".into(), "--key".into()];
        assert!(Cli::parse(&args).is_err());
    }

    #[test]
    fn missing_command_defaults_to_help() {
        let args = vec!["p".to_string()];
        assert_eq!(Cli::parse(&args).unwrap().command, "help");
    }

    #[test]
    fn unknown_scenario_is_rejected_with_the_valid_names() {
        let err = validate_command("fig99").unwrap_err();
        assert!(err.contains("unknown scenario 'fig99'"), "{err}");
        assert!(err.contains("fig5"), "{err}");
        assert!(err.contains("trace"), "{err}");
        for cmd in COMMANDS {
            assert!(validate_command(cmd).is_ok(), "{cmd} should be valid");
        }
    }

    #[test]
    fn unknown_trace_scenario_is_rejected() {
        let err = validate_trace_scenario("mesh").unwrap_err();
        assert!(err.contains("unknown trace scenario 'mesh'"), "{err}");
        assert!(err.contains("failover"), "{err}");
        for s in TRACE_SCENARIOS {
            assert!(validate_trace_scenario(s).is_ok());
        }
    }

    #[test]
    fn jobs_defaults_to_serial_and_rejects_bad_values() {
        assert_eq!(cli("figures").get_jobs(), Ok(1));
        assert_eq!(cli("figures --jobs 1").get_jobs(), Ok(1));
        assert_eq!(cli("figures --jobs 8").get_jobs(), Ok(8));
        let err = cli("figures --jobs 0").get_jobs().unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
        let err = cli("figures --jobs two").get_jobs().unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        assert!(cli("figures --jobs -3").get_jobs().is_err());
        assert!(cli("figures --jobs 2.5").get_jobs().is_err());
    }
}
