//! Figure 9 — measured admission probability of REALTOR on the Agile
//! Objects cluster (20 hosts, 50-second queues), reproduced on the
//! thread-per-host runtime at a scaled clock.

use crate::output::{emit, OutDir};
use realtor_agile::{Cluster, ClusterConfig};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::SimTime;
use realtor_workload::WorkloadSpec;
use std::time::Duration;

/// One Figure-9 measurement point. After the last arrival the cluster is
/// drained to quiescence (no in-flight datagram, admission request, control
/// message, or pending recovery for a grace window) rather than settled for
/// a fixed wall time — exact under light load, bounded under pathology.
pub fn measure_point(lambda: f64, horizon_secs: u64, seed: u64, hosts: usize, scale: f64) -> f64 {
    let mut cfg = ClusterConfig {
        hosts,
        time_scale: scale,
        seed,
        ..Default::default()
    };
    cfg.host.capacity_secs = 50.0; // the paper's §6 queue size
    let cluster = Cluster::start(&cfg);
    let trace = WorkloadSpec::paper(lambda, hosts, SimTime::from_secs(horizon_secs), seed).generate();
    cluster.run_workload(&trace);
    assert!(
        cluster.quiesce(Duration::from_millis(10), Duration::from_secs(30)),
        "fig9 cluster failed to quiesce"
    );
    let report = cluster.shutdown();
    let report_validation = report.validate();
    assert!(report_validation.is_ok(), "{report_validation:?}");
    report.admission_probability()
}

/// Run the λ sweep and emit the table.
///
/// The paper's §6 observation is that the measured curve "shows the same
/// type of shape as in the simulation", so alongside the cluster
/// measurement we run the discrete-event simulator with identical
/// parameters (20 nodes, 50-second queues) for direct comparison.
pub fn run(lambdas: &[f64], horizon_secs: u64, seed: u64, scale: f64, out: &OutDir) {
    eprintln!(
        "figure 9: 20-host cluster, queue 50 s, REALTOR, horizon {horizon_secs}s, \
         clock scale {scale}x"
    );
    emit(out, "fig9_cluster_admission", &render(lambdas, horizon_secs, seed, scale));
}

/// Build the Figure-9 table (cluster measurement + simulator comparison,
/// both on the paper's 20-host/5x4-mesh geometry) — separated from [`run`]
/// so tests can assert the rendered output is byte-identical across
/// consecutive runs.
pub fn render(lambdas: &[f64], horizon_secs: u64, seed: u64, scale: f64) -> Table {
    let hosts = 20;
    let mut table = Table::new(
        "Figure 9 — Admission probability measured (20-host cluster, REALTOR, queue 50 s) \
         vs the simulator at identical parameters",
        &["lambda", "cluster-measured", "simulated"],
    )
    .float_precision(4);
    for &lambda in lambdas {
        let measured = measure_point(lambda, horizon_secs, seed, hosts, scale);
        let sim = {
            use realtor_core::ProtocolKind;
            use realtor_net::Topology;
            use realtor_sim::{run_scenario, Scenario};
            let scenario = Scenario::paper(ProtocolKind::Realtor, lambda, horizon_secs, seed)
                .with_topology(Topology::mesh(5, 4))
                .with_capacity(50.0);
            run_scenario(&scenario).admission_probability()
        };
        eprintln!("  lambda={lambda}: cluster={measured:.4} sim={sim:.4}");
        table.push_row(vec![
            Cell::Float(lambda),
            Cell::Float(measured),
            Cell::Float(sim),
        ]);
    }
    table
}
