//! Figure 9 — measured admission probability of REALTOR on the Agile
//! Objects cluster (20 hosts, 50-second queues), reproduced on the
//! thread-per-host runtime at a scaled clock.

use crate::output::{emit, OutDir};
use realtor_agile::{Cluster, ClusterConfig};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::SimTime;
use realtor_workload::WorkloadSpec;

/// One Figure-9 measurement point.
pub fn measure_point(lambda: f64, horizon_secs: u64, seed: u64, hosts: usize, scale: f64) -> f64 {
    let mut cfg = ClusterConfig {
        hosts,
        time_scale: scale,
        seed,
        ..Default::default()
    };
    cfg.host.capacity_secs = 50.0; // the paper's §6 queue size
    let cluster = Cluster::start(&cfg);
    let trace = WorkloadSpec::paper(lambda, hosts, SimTime::from_secs(horizon_secs), seed).generate();
    cluster.run_workload(&trace);
    cluster.settle(2.0);
    let report = cluster.shutdown();
    report.admission_probability()
}

/// Run the λ sweep and emit the table.
///
/// The paper's §6 observation is that the measured curve "shows the same
/// type of shape as in the simulation", so alongside the cluster
/// measurement we run the discrete-event simulator with identical
/// parameters (20 nodes, 50-second queues) for direct comparison.
pub fn run(lambdas: &[f64], horizon_secs: u64, seed: u64, scale: f64, out: &OutDir) {
    let hosts = 20;
    eprintln!(
        "figure 9: {hosts}-host cluster, queue 50 s, REALTOR, horizon {horizon_secs}s, \
         clock scale {scale}x"
    );
    let mut table = Table::new(
        "Figure 9 — Admission probability measured (20-host cluster, REALTOR, queue 50 s) \
         vs the simulator at identical parameters",
        &["lambda", "cluster-measured", "simulated"],
    )
    .float_precision(4);
    for &lambda in lambdas {
        let measured = measure_point(lambda, horizon_secs, seed, hosts, scale);
        let sim = {
            use realtor_core::ProtocolKind;
            use realtor_net::Topology;
            use realtor_sim::{run_scenario, Scenario};
            let scenario = Scenario::paper(ProtocolKind::Realtor, lambda, horizon_secs, seed)
                .with_topology(Topology::mesh(5, 4))
                .with_capacity(50.0);
            run_scenario(&scenario).admission_probability()
        };
        eprintln!("  lambda={lambda}: cluster={measured:.4} sim={sim:.4}");
        table.push_row(vec![
            Cell::Float(lambda),
            Cell::Float(measured),
            Cell::Float(sim),
        ]);
    }
    emit(out, "fig9_cluster_admission", &table);
}
