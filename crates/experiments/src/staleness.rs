//! Ablation A9 — information staleness: the paper's Figure-8 discussion
//! blames pull-based schemes' low effectiveness on out-of-date pledges
//! ("the information can be out-of-dated rather easily"). This ablation
//! quantifies that: sweep the `info_ttl` freshness bound on the candidate
//! store and report how admission and the one-shot migration *success*
//! ratio respond.
//!
//! A short TTL discards stale reports (fewer candidates, but honest);
//! `none` keeps the latest report forever (more candidates, more refusals).

use crate::output::{emit, OutDir};
use realtor_core::{ProtocolConfig, ProtocolKind};
use realtor_sim::sweep::run_parallel;
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::SimDuration;

/// Run the staleness sweep at a fixed overload point.
pub fn run(lambda: f64, horizon_secs: u64, seed: u64, out: &OutDir) {
    let ttls: [(&str, Option<SimDuration>); 5] = [
        ("none (keep forever)", None),
        ("100s", Some(SimDuration::from_secs(100))),
        ("20s", Some(SimDuration::from_secs(20))),
        ("5s", Some(SimDuration::from_secs(5))),
        ("1s", Some(SimDuration::from_secs(1))),
    ];
    let protocols = [
        ProtocolKind::PurePull,
        ProtocolKind::AdaptivePull,
        ProtocolKind::Realtor,
    ];
    let mut jobs = Vec::new();
    for &p in &protocols {
        for &(name, ttl) in &ttls {
            jobs.push((p, name, ttl));
        }
    }
    eprintln!("ablation A9 (staleness): {} points at lambda={lambda}", jobs.len());
    let results = run_parallel(&jobs, |&(p, _, ttl)| {
        let mut cfg = ProtocolConfig::paper();
        cfg.info_ttl = ttl;
        run_scenario(&Scenario::paper(p, lambda, horizon_secs, seed).with_protocol_config(cfg))
    });
    let mut table = Table::new(
        format!("Ablation A9 — candidate-info staleness bound (lambda={lambda})"),
        &[
            "protocol",
            "info-ttl",
            "admission-probability",
            "migration-attempts",
            "migration-success-ratio",
        ],
    )
    .float_precision(4);
    for ((p, name, _), r) in jobs.into_iter().zip(results) {
        table.push_row(vec![
            p.label().into(),
            name.into(),
            Cell::Float(r.admission_probability()),
            Cell::Int(r.migration_attempts as i64),
            Cell::Float(realtor_simcore::stats::ratio(
                r.migration_successes,
                r.migration_attempts,
            )),
        ]);
    }
    emit(out, "ablation_a9_staleness", &table);
}
