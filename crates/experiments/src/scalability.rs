//! Ablation A3 — the paper's scalability claim: REALTOR *"has an overhead
//! that is system-size independent."*
//!
//! We grow the mesh from 3×3 to 20×20 while scaling the arrival rate
//! proportionally (constant per-node load), and report the discovery
//! overhead per node per admitted task. Under the claim this quantity should
//! stay roughly flat for REALTOR; the flood cost model naturally charges
//! bigger networks more per flood, so the interesting comparison is REALTOR
//! against the pure baselines.

use crate::output::{emit, OutDir};
use realtor_core::ProtocolKind;
use realtor_net::Topology;
use realtor_sim::sweep::run_parallel;
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::table::{Cell, Table};

/// Run the size sweep at `per_node_lambda` arrivals per node per second.
pub fn run(per_node_lambda: f64, horizon_secs: u64, seed: u64, out: &OutDir) {
    let sides = [3usize, 5, 8, 10, 14, 20];
    let protocols = [
        ProtocolKind::Realtor,
        ProtocolKind::PurePush,
        ProtocolKind::PurePull,
    ];
    let mut jobs = Vec::new();
    for &p in &protocols {
        for &side in &sides {
            jobs.push((p, side));
        }
    }
    eprintln!(
        "ablation A3 (scalability): meshes {:?}, per-node lambda {per_node_lambda}",
        sides
    );
    let results = run_parallel(&jobs, |&(p, side)| {
        let n = side * side;
        let lambda = per_node_lambda * n as f64;
        let scenario = Scenario::paper(p, lambda, horizon_secs, seed)
            .with_topology(Topology::mesh(side, side));
        run_scenario(&scenario)
    });
    let mut table = Table::new(
        format!(
            "Ablation A3 — overhead vs system size (per-node lambda {per_node_lambda}, \
             constant per-node load)"
        ),
        &[
            "protocol",
            "nodes",
            "links",
            "admission-probability",
            "msg-cost-per-node-per-admitted-task",
        ],
    )
    .float_precision(4);
    for ((p, side), r) in jobs.into_iter().zip(results) {
        let n = side * side;
        let links = 2 * side * side - 2 * side;
        let per_node = if r.admitted() == 0 {
            0.0
        } else {
            r.total_messages() / n as f64 / r.admitted() as f64
        };
        table.push_row(vec![
            p.label().into(),
            Cell::Int(n as i64),
            Cell::Int(links as i64),
            Cell::Float(r.admission_probability()),
            Cell::Float(per_node),
        ]);
    }
    emit(out, "ablation_a3_scalability", &table);
}
