//! Ablation A3 — the paper's scalability claim: REALTOR *"has an overhead
//! that is system-size independent."*
//!
//! We grow the mesh from 3×3 to 20×20 while scaling the arrival rate
//! proportionally (constant per-node load), and report the discovery
//! overhead per node per admitted task. Under the claim this quantity should
//! stay roughly flat for REALTOR; the flood cost model naturally charges
//! bigger networks more per flood, so the interesting comparison is REALTOR
//! against the pure baselines.
//!
//! This driver exercises the runner's **streamed** output path: each cell
//! renders its own CSV row the moment it finishes and the rows merge in
//! grid order, asserted byte-identical to the serial table writer by
//! [`emit_streamed`].

use crate::output::{emit_streamed, OutDir};
use realtor_core::ProtocolKind;
use realtor_net::Topology;
use realtor_runner::{run_grid_csv, GridCell, RunOpts, SweepGrid};
use realtor_sim::{run_scenario, Scenario, SimResult};
use realtor_simcore::table::{Cell, Table};

/// The mesh sides swept (N = side²).
const SIDES: [usize; 6] = [3, 5, 8, 10, 14, 20];

/// The protocols compared.
const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Realtor,
    ProtocolKind::PurePush,
    ProtocolKind::PurePull,
];

/// One output row of the A3 table.
fn row_cells(cell: &GridCell, r: &SimResult) -> Vec<Cell> {
    let n = cell.side * cell.side;
    let links = 2 * cell.side * cell.side - 2 * cell.side;
    let per_node = if r.admitted() == 0 {
        0.0
    } else {
        r.total_messages() / n as f64 / r.admitted() as f64
    };
    vec![
        cell.protocol.label().into(),
        Cell::Int(n as i64),
        Cell::Int(links as i64),
        Cell::Float(r.admission_probability()),
        Cell::Float(per_node),
    ]
}

/// Run the size sweep at `per_node_lambda` arrivals per node per second.
pub fn run(per_node_lambda: f64, horizon_secs: u64, seed: u64, jobs: usize, out: &OutDir) {
    eprintln!(
        "ablation A3 (scalability): meshes {SIDES:?}, per-node lambda {per_node_lambda}, \
         jobs {jobs}"
    );
    let grid = SweepGrid::new(seed)
        .with_protocols(&PROTOCOLS)
        .with_sides(&SIDES);
    let mut table = Table::new(
        format!(
            "Ablation A3 — overhead vs system size (per-node lambda {per_node_lambda}, \
             constant per-node load)"
        ),
        &[
            "protocol",
            "nodes",
            "links",
            "admission-probability",
            "msg-cost-per-node-per-admitted-task",
        ],
    )
    .float_precision(4);
    // Streamed path: every cell renders its row via the same `Table` row
    // renderer the serial writer uses, so the merged bytes match the
    // assembled table by construction.
    let (results, csv) = run_grid_csv(&grid, &RunOpts::jobs(jobs), &table.csv_header(), |cell| {
        let n = cell.side * cell.side;
        let lambda = per_node_lambda * n as f64;
        let scenario = Scenario::paper(cell.protocol, lambda, horizon_secs, cell.seed)
            .with_topology(Topology::mesh(cell.side, cell.side));
        let r = run_scenario(&scenario);
        let chunk = table.csv_row_of(&row_cells(cell, &r));
        (r, chunk)
    });
    for (cell, r) in grid.cells().iter().zip(&results) {
        table.push_row(row_cells(cell, r));
    }
    emit_streamed(out, "ablation_a3_scalability", &table, &csv);
}
