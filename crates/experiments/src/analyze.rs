//! The `analyze` subcommand (A19) — offline causal analysis of any trace
//! JSONL produced by the A14 trace layer (the DES `trace` command or the
//! live cluster's `cluster_run.jsonl`).
//!
//! The input is parsed by a hand-rolled flat-JSON-object reader (the trace
//! writer emits exactly that shape; no serde in the dependency set). From
//! the `(span, parent)` causal links the analyzer reconstructs the
//! discovery → admission → recovery lineage of every task and reports:
//!
//! * **per-phase latency breakdowns** — admission (arrival → admit),
//!   negotiation (attempt span open → resolve), recovery (interrupt →
//!   re-admission), as [`LogHistogram`] quantiles,
//! * **the recovery critical path** — the causal chain from the first
//!   `node_kill` to the last `task_recover`, as telescoping segments whose
//!   durations sum exactly to the time-to-recovery,
//! * **events per admitted task by phase** — discovery, admission,
//!   negotiation, recovery, fault,
//! * **a flame-style self-time table per event kind** — within each span,
//!   the gap to the span's next event is the earlier event's self time.
//!
//! Lineage must be *complete*: an event whose `parent` names a span with no
//! events is an orphan reference, and any orphan (or an admitted/recovered
//! task whose chain does not reach a root) fails the run with exit 1 — the
//! CI gate behind the A19 acceptance criterion.

use realtor_simcore::stats::LogHistogram;
use realtor_simcore::time::TICKS_PER_SEC;
use std::collections::BTreeMap;
use std::io::Read;

/// A parsed flat JSON value — the subset the trace writer emits.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A non-negative integer (span ids, tick timestamps, counts).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

struct Cursor<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.s.get(self.i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.s[self.i..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .map(|c| c.len_utf8())
                        .unwrap_or(1);
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.i += ch_len;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') if self.s[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') if self.s[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') if self.s[self.i..].starts_with(b"null") => {
                self.i += 4;
                Ok(JsonValue::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.i += 1;
                }
                let tok = std::str::from_utf8(&self.s[start..self.i]).unwrap();
                if let Ok(u) = tok.parse::<u64>() {
                    Ok(JsonValue::U64(u))
                } else {
                    tok.parse::<f64>()
                        .map(JsonValue::F64)
                        .map_err(|_| format!("bad number '{tok}'"))
                }
            }
            other => Err(format!("unexpected value start: {other:?}")),
        }
    }
}

/// Parse one flat JSON object line (`{"k":v,...}`, no nesting) into its
/// key/value pairs, preserving order.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut c = Cursor {
        s: line.as_bytes(),
        i: 0,
    };
    c.skip_ws();
    c.eat(b'{')?;
    let mut out = Vec::new();
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.i += 1;
        c.skip_ws();
        if c.i != c.s.len() {
            return Err("trailing bytes after object".into());
        }
        return Ok(out);
    }
    loop {
        c.skip_ws();
        let key = c.parse_string()?;
        c.skip_ws();
        c.eat(b':')?;
        let value = c.parse_value()?;
        out.push((key, value));
        c.skip_ws();
        match c.peek() {
            Some(b',') => c.i += 1,
            Some(b'}') => {
                c.i += 1;
                c.skip_ws();
                if c.i != c.s.len() {
                    return Err("trailing bytes after object".into());
                }
                return Ok(out);
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

/// One trace record, reduced to the fields the analysis needs.
struct Rec {
    t: u64,
    kind: String,
    span: Option<u64>,
    parent: Option<u64>,
}

/// One telescoping segment of the recovery critical path.
#[derive(Debug, Clone)]
pub struct PathSegment {
    /// What this leg of the chain is.
    pub label: String,
    /// Segment start (ticks).
    pub from_ticks: u64,
    /// Segment end (ticks).
    pub to_ticks: u64,
}

/// The structured result of analyzing one trace.
pub struct Analysis {
    /// Total parsed events.
    pub events: usize,
    /// Events carrying a span id.
    pub spanned_events: usize,
    /// Distinct spans observed.
    pub spans: usize,
    /// `task_admit` events (tasks admitted, counting re-admissions).
    pub admitted: u64,
    /// Admitted tasks whose parent chain resolves to a root.
    pub admitted_complete: u64,
    /// `task_recover` events.
    pub recovered: u64,
    /// Recovered tasks whose parent chain resolves to a root.
    pub recovered_complete: u64,
    /// Events whose `parent` names a span with no events.
    pub orphan_refs: u64,
    /// Last `task_recover` minus first `node_kill`, when both exist.
    pub time_to_recovery_secs: Option<f64>,
    /// The causal chain from first kill to last recovery; consecutive
    /// segments telescope, so their durations sum exactly to
    /// [`Analysis::time_to_recovery_secs`].
    pub critical_path: Vec<PathSegment>,
    /// Per-phase latency histograms (ticks).
    pub phase_latencies: Vec<(&'static str, LogHistogram)>,
    /// Event counts per phase.
    pub phase_events: Vec<(&'static str, u64)>,
    /// Flame-style (kind, events, self-time ticks), widest first.
    pub self_time: Vec<(String, u64, u64)>,
    /// The rendered text report.
    pub text: String,
}

fn phase_of(kind: &str) -> &'static str {
    match kind {
        "help_flood" | "pledge_send" | "pledge_accept" | "pledge_stale_drop"
        | "interval_adapt" | "community_join" | "community_refresh" | "community_expire" => {
            "discovery"
        }
        "task_admit" | "task_reject" => "admission",
        "migrate_start" | "migrate_resolve" => "negotiation",
        "task_interrupt" | "task_recover" | "task_destroy" | "evacuation_start"
        | "checkpoint_split" => "recovery",
        "node_kill" | "node_restore" | "attack_action" | "peer_suspect" | "peer_confirmed"
        | "peer_revived" => "fault",
        _ => "other",
    }
}

const PHASES: &[&str] = &[
    "discovery",
    "admission",
    "negotiation",
    "recovery",
    "fault",
    "other",
];

fn secs(ticks: u64) -> f64 {
    ticks as f64 / TICKS_PER_SEC as f64
}

/// Walk the parent chain of `rec`; complete means every hop resolves to a
/// span that has events, ending either at a root (no parent) or back at an
/// already-visited span — a task span and its attempt span legitimately
/// reference each other (admit -> attempt -> task), so closing that loop
/// over observed spans is complete. Only a parent naming a span with no
/// events breaks the chain.
fn chain_complete(rec: &Rec, span_first: &BTreeMap<u64, usize>, recs: &[Rec]) -> bool {
    let mut visited = std::collections::BTreeSet::new();
    if let Some(s) = rec.span {
        visited.insert(s);
    }
    let mut parent = rec.parent;
    while let Some(p) = parent {
        let Some(&idx) = span_first.get(&p) else {
            return false;
        };
        if !visited.insert(p) {
            return true;
        }
        parent = recs[idx].parent;
    }
    true
}

/// Analyze a whole trace given as JSONL text.
pub fn analyze_str(input: &str) -> Result<Analysis, String> {
    let mut recs: Vec<Rec> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let mut t = None;
        let mut kind = None;
        let mut span = None;
        let mut parent = None;
        // First occurrence wins: the writer emits the header fields
        // (t, kind, span, parent) before the payload, and a payload field
        // may legitimately reuse a header name (migrate_start carries a
        // "kind" payload field describing the attempt).
        for (k, v) in obj {
            match (k.as_str(), v) {
                ("t", JsonValue::U64(x)) if t.is_none() => t = Some(x),
                ("kind", JsonValue::Str(s)) if kind.is_none() => kind = Some(s),
                ("span", JsonValue::U64(x)) if span.is_none() => span = Some(x),
                ("parent", JsonValue::U64(x)) if parent.is_none() => parent = Some(x),
                _ => {}
            }
        }
        recs.push(Rec {
            t: t.ok_or_else(|| format!("line {}: missing \"t\"", lineno + 1))?,
            kind: kind.ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?,
            span,
            parent,
        });
    }

    // Span indexes: first event of each span (its opener) and the events of
    // each span in input order.
    let mut span_first: BTreeMap<u64, usize> = BTreeMap::new();
    let mut span_events: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut span_interrupt_first: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, r) in recs.iter().enumerate() {
        if let Some(s) = r.span {
            span_first.entry(s).or_insert(i);
            span_events.entry(s).or_default().push(i);
            if r.kind == "task_interrupt" {
                span_interrupt_first.entry(s).or_insert(r.t);
            }
        }
    }

    // Lineage completeness and orphan references.
    let mut orphan_refs = 0u64;
    for r in &recs {
        if let Some(p) = r.parent {
            if !span_first.contains_key(&p) {
                orphan_refs += 1;
            }
        }
    }
    let (mut admitted, mut admitted_complete) = (0u64, 0u64);
    let (mut recovered, mut recovered_complete) = (0u64, 0u64);
    for r in &recs {
        match r.kind.as_str() {
            "task_admit" => {
                admitted += 1;
                if r.span.is_some() && chain_complete(r, &span_first, &recs) {
                    admitted_complete += 1;
                }
            }
            "task_recover" => {
                recovered += 1;
                if r.span.is_some() && chain_complete(r, &span_first, &recs) {
                    recovered_complete += 1;
                }
            }
            _ => {}
        }
    }

    // Per-phase latency histograms.
    let mut admission_lat = LogHistogram::new();
    let mut negotiation_lat = LogHistogram::new();
    let mut recovery_lat = LogHistogram::new();
    for r in &recs {
        match r.kind.as_str() {
            "task_admit" => {
                if let Some(s) = r.span {
                    // A migrated admit's clock starts when its attempt span
                    // opened (the migrate_start); a local admit is instant.
                    let mut open = recs[span_first[&s]].t;
                    if let Some(p) = r.parent {
                        if let Some(&idx) = span_first.get(&p) {
                            open = open.min(recs[idx].t);
                        }
                    }
                    admission_lat.record(r.t.saturating_sub(open));
                }
            }
            "task_recover" => {
                if let Some(s) = r.span {
                    let start = span_interrupt_first
                        .get(&s)
                        .copied()
                        .or_else(|| r.parent.and_then(|p| span_first.get(&p).map(|&i| recs[i].t)))
                        .unwrap_or(r.t);
                    recovery_lat.record(r.t.saturating_sub(start));
                }
            }
            _ => {}
        }
    }
    for (&s, idxs) in &span_events {
        if s & 1 == 1 {
            // Attempt (negotiation) span: open to last event.
            let first = recs[idxs[0]].t;
            let last = recs[*idxs.last().unwrap()].t;
            negotiation_lat.record(last.saturating_sub(first));
        }
    }

    // Events per phase.
    let mut phase_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in &recs {
        *phase_counts.entry(phase_of(&r.kind)).or_default() += 1;
    }
    let phase_events: Vec<(&'static str, u64)> = PHASES
        .iter()
        .map(|&p| (p, phase_counts.get(p).copied().unwrap_or(0)))
        .collect();

    // Recovery critical path: first kill -> (interrupt) -> (attempt open)
    // -> last recover, clamped monotone so segments telescope exactly.
    let first_kill = recs.iter().find(|r| r.kind == "node_kill");
    let last_recover = recs.iter().rev().find(|r| r.kind == "task_recover");
    let mut critical_path = Vec::new();
    let mut time_to_recovery_secs = None;
    if let (Some(kill), Some(rec)) = (first_kill, last_recover) {
        let mut points: Vec<(String, u64)> = vec![("first fault (node_kill)".into(), kill.t)];
        let clamp = |points: &[(String, u64)], t: u64| t.max(points.last().unwrap().1);
        if let Some(s) = rec.span {
            if let Some(&it) = span_interrupt_first.get(&s) {
                let t = clamp(&points, it);
                points.push(("task interrupted".into(), t));
            }
        }
        if let Some(p) = rec.parent {
            if let Some(&idx) = span_first.get(&p) {
                let t = clamp(&points, recs[idx].t);
                points.push(("recovery attempt opened".into(), t));
            }
        }
        let t = clamp(&points, rec.t);
        points.push(("task re-admitted (last task_recover)".into(), t));
        for w in points.windows(2) {
            critical_path.push(PathSegment {
                label: format!("{} -> {}", w[0].0, w[1].0),
                from_ticks: w[0].1,
                to_ticks: w[1].1,
            });
        }
        time_to_recovery_secs = Some(secs(rec.t.saturating_sub(kill.t)));
    }

    // Flame-style self time: within a span, an event owns the gap to the
    // span's next event; the span's last event owns zero.
    let mut flame: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for idxs in span_events.values() {
        for w in idxs.windows(2) {
            let gap = recs[w[1]].t.saturating_sub(recs[w[0]].t);
            let e = flame.entry(recs[w[0]].kind.as_str()).or_default();
            e.0 += 1;
            e.1 += gap;
        }
        if let Some(&last) = idxs.last() {
            let e = flame.entry(recs[last].kind.as_str()).or_default();
            e.0 += 1;
        }
    }
    let mut self_time: Vec<(String, u64, u64)> = flame
        .into_iter()
        .map(|(k, (n, t))| (k.to_string(), n, t))
        .collect();
    self_time.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));

    let mut a = Analysis {
        events: recs.len(),
        spanned_events: recs.iter().filter(|r| r.span.is_some()).count(),
        spans: span_events.len(),
        admitted,
        admitted_complete,
        recovered,
        recovered_complete,
        orphan_refs,
        time_to_recovery_secs,
        critical_path,
        phase_latencies: vec![
            ("admission", admission_lat),
            ("negotiation", negotiation_lat),
            ("recovery", recovery_lat),
        ],
        phase_events,
        self_time,
        text: String::new(),
    };
    a.text = render(&a);
    Ok(a)
}

fn render(a: &Analysis) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "## Trace analysis (A19)");
    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "{} events ({} spanned, {} spans)",
        a.events, a.spanned_events, a.spans
    );
    let _ = writeln!(
        w,
        "admitted: {} ({} lineage-complete), recovered: {} ({} lineage-complete), orphan parent refs: {}",
        a.admitted, a.admitted_complete, a.recovered, a.recovered_complete, a.orphan_refs
    );
    let _ = writeln!(w);
    let _ = writeln!(w, "### Per-phase latency (seconds)");
    let _ = writeln!(
        w,
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "phase", "count", "p50", "p90", "p99", "max"
    );
    for (name, h) in &a.phase_latencies {
        let _ = writeln!(
            w,
            "{:<14} {:>8} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            name,
            h.count(),
            secs(h.quantile(0.5)),
            secs(h.quantile(0.9)),
            secs(h.quantile(0.99)),
            secs(h.max()),
        );
    }
    let _ = writeln!(w);
    let _ = writeln!(w, "### Recovery critical path");
    if a.critical_path.is_empty() {
        let _ = writeln!(w, "no kill/recovery pair in this trace");
    } else {
        let mut total = 0u64;
        for seg in &a.critical_path {
            let d = seg.to_ticks - seg.from_ticks;
            total += d;
            let _ = writeln!(
                w,
                "  {:<58} t={:>12.6}s  +{:.6}s",
                seg.label,
                secs(seg.from_ticks),
                secs(d)
            );
        }
        let _ = writeln!(
            w,
            "  total: {:.6}s (time-to-recovery {:.6}s)",
            secs(total),
            a.time_to_recovery_secs.unwrap_or(0.0)
        );
    }
    let _ = writeln!(w);
    let _ = writeln!(w, "### Events per admitted task by phase");
    let _ = writeln!(w, "{:<14} {:>10} {:>14}", "phase", "events", "per-admitted");
    for (phase, n) in &a.phase_events {
        let per = if a.admitted > 0 {
            format!("{:.4}", *n as f64 / a.admitted as f64)
        } else {
            "n/a".to_string()
        };
        let _ = writeln!(w, "{:<14} {:>10} {:>14}", phase, n, per);
    }
    let _ = writeln!(w);
    let _ = writeln!(w, "### Self time by event kind (flame)");
    let _ = writeln!(
        w,
        "{:<22} {:>10} {:>14} {:>14}",
        "kind", "events", "self-secs", "mean-ms"
    );
    for (kind, n, ticks) in &a.self_time {
        let mean_ms = if *n > 0 {
            secs(*ticks) * 1e3 / *n as f64
        } else {
            0.0
        };
        let _ = writeln!(
            w,
            "{:<22} {:>10} {:>14.6} {:>14.6}",
            kind,
            n,
            secs(*ticks),
            mean_ms
        );
    }
    out
}

/// CLI entry: read JSONL from `--input <path>` (or stdin when absent or
/// `-`), print the report, and exit nonzero on parse errors, orphan span
/// references, or incomplete lineages.
pub fn run(input: Option<&str>) {
    let data = match input {
        Some(path) if path != "-" => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        _ => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("error: cannot read stdin: {e}");
                std::process::exit(2);
            }
            s
        }
    };
    match analyze_str(&data) {
        Ok(a) => {
            print!("{}", a.text);
            if a.orphan_refs > 0 {
                eprintln!("FAIL: {} orphan span references", a.orphan_refs);
                std::process::exit(1);
            }
            if a.admitted_complete < a.admitted || a.recovered_complete < a.recovered {
                eprintln!(
                    "FAIL: incomplete lineage ({}/{} admitted, {}/{} recovered)",
                    a.admitted_complete, a.admitted, a.recovered_complete, a.recovered
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let obj = parse_flat_object(
            r#"{"t":12,"t_secs":0.5,"node":null,"kind":"task_admit","ok":true,"s":"a\"b"}"#,
        )
        .unwrap();
        assert_eq!(obj[0], ("t".into(), JsonValue::U64(12)));
        assert_eq!(obj[1], ("t_secs".into(), JsonValue::F64(0.5)));
        assert_eq!(obj[2], ("node".into(), JsonValue::Null));
        assert_eq!(obj[3], ("kind".into(), JsonValue::Str("task_admit".into())));
        assert_eq!(obj[4], ("ok".into(), JsonValue::Bool(true)));
        assert_eq!(obj[5], ("s".into(), JsonValue::Str("a\"b".into())));
        assert!(parse_flat_object("{\"a\":1} x").is_err());
        assert!(parse_flat_object("{\"a\"").is_err());
    }

    #[test]
    fn reconstructs_lineage_and_critical_path() {
        // Arrival 0 (task span 0) admitted locally; arrival 1 (task span 2)
        // migrates via attempt 0 (span 1); a kill interrupts it and attempt
        // 1 (span 3) recovers it.
        let trace = [
            r#"{"t":1000,"node":0,"kind":"task_admit","sev":"info","span":0}"#,
            r#"{"t":2000,"node":0,"kind":"migrate_start","sev":"info","span":1,"parent":2}"#,
            r#"{"t":3000,"node":1,"kind":"task_admit","sev":"info","span":2,"parent":1}"#,
            r#"{"t":3500,"node":1,"kind":"migrate_resolve","sev":"info","span":1,"parent":2}"#,
            r#"{"t":4000,"node":1,"kind":"node_kill","sev":"warn"}"#,
            r#"{"t":4100,"node":1,"kind":"task_interrupt","sev":"warn","span":2}"#,
            r#"{"t":4200,"node":1,"kind":"migrate_start","sev":"info","span":3,"parent":2}"#,
            r#"{"t":5000,"node":2,"kind":"task_recover","sev":"info","span":2,"parent":3}"#,
        ]
        .join("\n");
        let a = analyze_str(&trace).unwrap();
        assert_eq!(a.events, 8);
        assert_eq!(a.admitted, 2);
        assert_eq!(a.admitted_complete, 2);
        assert_eq!(a.recovered, 1);
        assert_eq!(a.recovered_complete, 1);
        assert_eq!(a.orphan_refs, 0);
        // Critical path telescopes to exactly last recover - first kill.
        let total: u64 = a
            .critical_path
            .iter()
            .map(|s| s.to_ticks - s.from_ticks)
            .sum();
        assert_eq!(total, 5000 - 4000);
        assert_eq!(a.critical_path.len(), 3); // kill->interrupt->attempt->recover
        // Admission latency: local admit 0, migrated admit 3000-2000... the
        // task span opens at the migrate_start parented to it? No: span 2's
        // first event is the admit at t=3000 itself -> latency 0; span 0 -> 0.
        let (_, adm) = &a.phase_latencies[0];
        assert_eq!(adm.count(), 2);
        let (_, rec) = &a.phase_latencies[2];
        assert_eq!(rec.count(), 1);
        assert_eq!(rec.max(), 5000 - 4100);
        assert!(a.text.contains("### Recovery critical path"));
    }

    #[test]
    fn orphan_parent_refs_are_counted() {
        let trace = r#"{"t":10,"node":0,"kind":"task_admit","sev":"info","span":4,"parent":99}"#;
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.orphan_refs, 1);
        assert_eq!(a.admitted, 1);
        assert_eq!(a.admitted_complete, 0, "a dangling parent is incomplete");
    }
}
