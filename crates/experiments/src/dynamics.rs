//! Ablation A10 — Algorithm H interval dynamics over time.
//!
//! The adaptive HELP interval is the paper's central control mechanism:
//! it should sit at its minimum while discovery pays off, climb toward
//! `Upper_limit` under hopeless overload, and fall again when capacity
//! returns. We drive REALTOR through a load step (overload for the middle
//! third of the run via an MMPP burst) and plot the mean/max interval
//! sampled once per window.

use crate::output::{emit, OutDir};
use realtor_core::ProtocolKind;
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::plot::{render, PlotConfig, Series};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::SimDuration;
use realtor_workload::ArrivalProcess;

/// Run the load-step experiment and emit table + ASCII plot.
pub fn run(horizon_secs: u64, seed: u64, out: &OutDir) {
    eprintln!("ablation A10 (interval dynamics): REALTOR under an MMPP load step");
    let mut scenario = Scenario::paper(ProtocolKind::Realtor, 4.0, horizon_secs, seed)
        .with_window(SimDuration::from_secs((horizon_secs / 60).max(1)));
    // Calm at λ=3 (well below capacity), bursting at λ=12 (2.4x capacity),
    // with sojourns long enough that Algorithm H visibly adapts.
    scenario.workload.arrivals = ArrivalProcess::Mmpp {
        calm_rate: 3.0,
        burst_rate: 12.0,
        mean_calm_secs: horizon_secs as f64 / 4.0,
        mean_burst_secs: horizon_secs as f64 / 4.0,
    };
    let r = run_scenario(&scenario);

    let mut table = Table::new(
        "Ablation A10 — Algorithm H interval dynamics under an MMPP load step (REALTOR)",
        &["time", "offered-in-window", "admission", "mean-interval-s", "max-interval-s"],
    )
    .float_precision(4);
    for (w, &(at, mean, max)) in r.windows.iter().zip(r.interval_series.iter()) {
        table.push_row(vec![
            Cell::Float(at.as_secs_f64()),
            Cell::Int(w.offered as i64),
            Cell::Float(w.admission_probability()),
            Cell::Float(mean),
            Cell::Float(max),
        ]);
    }
    emit(out, "ablation_a10_interval_dynamics", &table);

    let interval = Series::new(
        "mean HELP interval (s)",
        r.interval_series
            .iter()
            .map(|&(t, m, _)| (t.as_secs_f64(), m))
            .collect(),
    );
    let load = Series::new(
        "offered tasks per window / 10",
        r.windows
            .iter()
            .map(|w| (w.start.as_secs_f64(), w.offered as f64 / 10.0))
            .collect(),
    );
    println!(
        "{}",
        render(
            &[interval, load],
            &PlotConfig {
                title: "Algorithm H: HELP interval tracks offered load (higher load → backoff)"
                    .into(),
                width: 70,
                height: 18,
                ..Default::default()
            }
        )
    );
}
