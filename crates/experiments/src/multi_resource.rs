//! Ablation A6 — multi-resource discovery (paper footnote 3: CPU, network
//! bandwidth, security level).
//!
//! A synthetic marketplace: hosts advertise availability vectors, migrating
//! components demand vectors. We compare two candidate-selection policies on
//! the identical offer/demand stream:
//!
//! * **cpu-only** — the main experiments' policy: pick the largest CPU
//!   headroom and hope the other dimensions fit (the paper's single-resource
//!   footnote claim),
//! * **bottleneck** — vector-aware: pick the satisfying offer with the best
//!   minimum offer/demand ratio.
//!
//! Reported: placement success rate and how often the placed host actually
//! satisfied all dimensions.

use crate::output::{emit, OutDir};
use realtor_core::resources::{MultiResourceStore, ResourceVector, SecurityLevel};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::{SimRng, SimTime};

fn random_security(rng: &mut SimRng) -> SecurityLevel {
    match rng.index(4) {
        0 => SecurityLevel::Open,
        1 => SecurityLevel::Standard,
        2 => SecurityLevel::Hardened,
        _ => SecurityLevel::Trusted,
    }
}

/// Run the marketplace comparison.
pub fn run(hosts: usize, demands: usize, seed: u64, out: &OutDir) {
    eprintln!("ablation A6 (multi-resource): {hosts} hosts, {demands} demands");
    let t = SimTime::ZERO;

    let run_policy = |vector_aware: bool| {
        let mut store = MultiResourceStore::new();
        let mut offer_rng = SimRng::stream(seed, "offers");
        for h in 0..hosts {
            store.record(
                h,
                ResourceVector {
                    cpu_secs: offer_rng.range_f64(0.0, 100.0),
                    bandwidth_mbps: offer_rng.range_f64(0.0, 100.0),
                    security: random_security(&mut offer_rng),
                },
                t,
            );
        }
        let mut demand_rng = SimRng::stream(seed, "demands");
        let mut placed = 0u64;
        let mut satisfied = 0u64;
        for _ in 0..demands {
            let demand = ResourceVector {
                cpu_secs: demand_rng.exp(5.0),
                bandwidth_mbps: demand_rng.exp(5.0),
                security: random_security(&mut demand_rng),
            };
            let choice = if vector_aware {
                store.pick(t, &demand, None, usize::MAX)
            } else {
                // cpu-only: rank by CPU headroom alone, ignore the rest.
                (0..hosts)
                    .filter(|&h| store.get(h).unwrap().offer.cpu_secs >= demand.cpu_secs)
                    .max_by(|&a, &b| {
                        store
                            .get(a)
                            .unwrap()
                            .offer
                            .cpu_secs
                            .partial_cmp(&store.get(b).unwrap().offer.cpu_secs)
                            .unwrap()
                    })
            };
            if let Some(h) = choice {
                placed += 1;
                let offer = store.get(h).unwrap().offer;
                if offer.satisfies(&demand) {
                    satisfied += 1;
                    store.consume(h, &demand);
                } else {
                    // a one-shot migration to an unsatisfying host fails,
                    // exactly like a refused admission in the main model
                }
            }
        }
        (placed, satisfied)
    };

    let (cpu_placed, cpu_ok) = run_policy(false);
    let (vec_placed, vec_ok) = run_policy(true);

    let mut table = Table::new(
        "Ablation A6 — multi-resource candidate selection",
        &[
            "policy",
            "placements-attempted",
            "placements-satisfied",
            "success-rate",
        ],
    )
    .float_precision(4);
    for (name, placed, ok) in [
        ("cpu-only", cpu_placed, cpu_ok),
        ("bottleneck (vector-aware)", vec_placed, vec_ok),
    ] {
        table.push_row(vec![
            name.into(),
            Cell::Int(placed as i64),
            Cell::Int(ok as i64),
            Cell::Float(realtor_simcore::stats::ratio(ok, demands as u64)),
        ]);
    }
    emit(out, "ablation_a6_multi_resource", &table);
}
