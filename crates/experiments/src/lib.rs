//! Experiment drivers as a library, so integration tests can exercise the
//! exact grids the `experiments` binary runs (thread-count invariance,
//! ledger invariants) without shelling out. The binary (`src/main.rs`) is
//! a thin CLI dispatcher over these modules.

pub mod ablations;
pub mod analyze;
pub mod attack;
pub mod balance;
pub mod churn;
pub mod cli;
pub mod cluster;
pub mod deadlines;
pub mod dynamics;
pub mod failover;
pub mod fig9;
pub mod figures;
pub mod inter_community;
pub mod lossy;
pub mod multi_resource;
pub mod output;
pub mod scalability;
pub mod speculative;
pub mod staleness;
pub mod trace;
