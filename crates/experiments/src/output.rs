//! Result emission: markdown to stdout, CSV to the results directory.

use realtor_simcore::table::Table;
use std::path::PathBuf;

/// Destination directory for CSV artifacts (`None` = stdout only).
#[derive(Debug, Clone)]
pub struct OutDir(pub Option<PathBuf>);

impl OutDir {
    pub fn new(path: Option<&str>) -> OutDir {
        OutDir(path.map(PathBuf::from))
    }
}

/// Print a table as markdown and, when an output directory is set, write
/// `<stem>.csv` inside it.
pub fn emit(out: &OutDir, stem: &str, table: &Table) {
    println!("{}", table.to_markdown());
    if let Some(dir) = &out.0 {
        std::fs::create_dir_all(dir).expect("create results directory");
        let path = dir.join(format!("{stem}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}

/// Like [`emit`], but the CSV bytes come from a streamed grid-order merge
/// (`runner::run_grid_csv`) rather than the assembled table. The two paths
/// must agree byte-for-byte — asserted live on every run, so a drift
/// between the streamed writer and `Table::to_csv` can never ship a wrong
/// artifact.
pub fn emit_streamed(out: &OutDir, stem: &str, table: &Table, streamed_csv: &str) {
    assert_eq!(
        streamed_csv,
        table.to_csv(),
        "streamed CSV for {stem} diverged from the serial table writer"
    );
    println!("{}", table.to_markdown());
    if let Some(dir) = &out.0 {
        std::fs::create_dir_all(dir).expect("create results directory");
        let path = dir.join(format!("{stem}.csv"));
        std::fs::write(&path, streamed_csv).expect("write csv");
        eprintln!("wrote {} (streamed)", path.display());
    }
}
