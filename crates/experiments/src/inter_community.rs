//! Ablation A5 — the paper's future work (§7): inter-neighbor-group
//! discovery for very large systems.
//!
//! On a large mesh, flat REALTOR floods every HELP to all N-1 nodes. The
//! inter-community variant partitions the mesh into tiles; HELP floods stay
//! inside the originator's tile and only gateway nodes relay urgent HELPs
//! into neighboring tiles. We compare admission probability and message
//! cost of the two on the same workload.

use crate::output::{emit, OutDir};
use realtor_core::inter_community::{GroupMap, InterCommunityRealtor};
use realtor_core::{ProtocolKind, Realtor};
use realtor_net::Topology;
use realtor_sim::{run_scenario_with, Scenario, World};
use realtor_simcore::table::{Cell, Table};

/// Run flat vs inter-community REALTOR on a `side × side` mesh tiled into
/// `tile × tile` groups.
pub fn run(side: usize, tile: usize, lambda: f64, horizon_secs: u64, seed: u64, out: &OutDir) {
    assert!(side > tile, "tiling only makes sense when the mesh exceeds one tile");
    eprintln!(
        "ablation A5 (inter-community): {side}x{side} mesh, {tile}x{tile} tiles, lambda={lambda}"
    );
    // Spanning-tree flood accounting so scoped floods are charged by how
    // many nodes they actually reach (the paper's per-link charge is
    // scope-blind and would hide the savings).
    let base = |protocol| {
        Scenario::paper(protocol, lambda, horizon_secs, seed)
            .with_topology(Topology::mesh(side, side))
            .with_cost(realtor_sim::CostChoice::SpanningTree)
    };

    // Flat REALTOR: every flood reaches all nodes.
    let flat = run_scenario_with(&base(ProtocolKind::Realtor), &mut |node| {
        Box::new(Realtor::new(node, realtor_core::ProtocolConfig::paper()))
    });

    // Inter-community REALTOR: scoped floods plus designated gateway relays
    // (one relay per tile pair; see GroupMap::designated_relays).
    let groups = GroupMap::mesh_tiles(side, side, tile);
    let relays = groups.designated_relays();
    let scenario = base(ProtocolKind::Realtor);
    let mut world = World::with_protocols(&scenario, &mut |node| {
        Box::new(InterCommunityRealtor::new(
            node,
            realtor_core::ProtocolConfig::paper(),
            relays.binary_search(&node).is_ok(),
            1,   // relay budget: one hop across a tile boundary
            0.5, // relay only urgent HELPs
        ))
    });
    let scopes = (0..side * side).map(|n| groups.scope_of(n)).collect();
    world.set_scopes(scopes);
    let ic = {
        let mut engine = realtor_simcore::Engine::new();
        world.prime(&mut engine);
        engine.run_until(&mut world, scenario.horizon());
        world.finish(&engine)
    };

    let mut table = Table::new(
        format!(
            "Ablation A5 — flat vs inter-community REALTOR \
             ({side}x{side} mesh, {tile}x{tile} tiles, lambda={lambda})"
        ),
        &[
            "variant",
            "admission-probability",
            "total-messages",
            "cost-per-admitted-task",
            "help-floods",
            "migration-rate",
        ],
    )
    .float_precision(4);
    for (name, r) in [("flat REALTOR", &flat), ("inter-community REALTOR", &ic)] {
        table.push_row(vec![
            name.into(),
            Cell::Float(r.admission_probability()),
            Cell::Float(r.total_messages()),
            Cell::Float(r.cost_per_admitted_task()),
            Cell::Int(r.ledger.help_count as i64),
            Cell::Float(r.migration_rate()),
        ]);
    }
    emit(out, "ablation_a5_inter_community", &table);
}
