//! Unreliable-network survivability — the `lossy` experiment.
//!
//! Two questions the paper's perfect-network evaluation leaves open:
//!
//! 1. **Graceful degradation**: how does admission probability fall as the
//!    datagram loss rate rises (loss ∈ {0, 1 %, 5 %, 10 %, 25 %} × λ)?
//! 2. **Recovery under chaos**: with 10 % base loss, a node strike *and*
//!    link-quality degradation mid-run, how deep is the admission dip and
//!    how many windows until the system is back at its pre-strike baseline?
//!
//! The smoke mode (`--smoke true`, used by CI) shrinks the horizon and
//! asserts the headline robustness properties instead of emitting tables:
//! no panic across the sweep, loss degrades admission monotonically (within
//! statistical tolerance), the chaos run is bit-for-bit deterministic, and
//! REALTOR's time-to-recovery is finite after `RestoreAll`.

use crate::output::{emit, OutDir};
use realtor_core::ProtocolKind;
use realtor_net::{LinkQuality, TargetingStrategy};
use realtor_runner::{run_grid, RunOpts, SweepGrid};
use realtor_sim::{run_scenario, Scenario, SimResult};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::{SimDuration, SimTime};
use realtor_workload::{AttackAction, AttackEvent, AttackScenario};

/// The loss sweep of the experiment.
pub const LOSS_LEVELS: [f64; 5] = [0.0, 0.01, 0.05, 0.10, 0.25];

/// Arrival rates crossed with the loss sweep.
const LAMBDAS: [f64; 4] = [2.0, 4.0, 6.0, 8.0];

/// Baseline-recovery tolerance for time-to-recovery.
const EPSILON: f64 = 0.05;

/// The chaos scenario: `kill_fraction` of the nodes die and a third of the
/// links are degraded at 40 % of the horizon; everything is restored at
/// 70 %. Base channel quality is `loss` across every delivery.
fn chaos_scenario(
    protocol: ProtocolKind,
    lambda: f64,
    horizon_secs: u64,
    seed: u64,
    loss: f64,
    kill_fraction: f64,
) -> (Scenario, SimTime, SimTime) {
    let strike = SimTime::from_secs(horizon_secs * 2 / 5);
    let recover = SimTime::from_secs(horizon_secs * 7 / 10);
    let victims = ((25.0 * kill_fraction).round() as usize).max(1);
    let window = SimDuration::from_secs((horizon_secs / 20).max(1));
    let attack = AttackScenario::new(vec![
        AttackEvent {
            at: strike,
            action: AttackAction::Kill { count: victims },
        },
        AttackEvent {
            at: strike,
            action: AttackAction::DegradeLinks { count: 13 },
        },
        AttackEvent {
            at: recover,
            action: AttackAction::RestoreAll,
        },
        AttackEvent {
            at: recover,
            action: AttackAction::RestoreLinkQuality,
        },
    ]);
    let scenario = Scenario::paper(protocol, lambda, horizon_secs, seed)
        .with_channel(LinkQuality::lossy(loss))
        .with_attack(attack, TargetingStrategy::Random)
        .with_window(window);
    (scenario, strike, recover)
}

/// Run the lossy-network experiment and emit its tables.
pub fn run(horizon_secs: u64, seed: u64, kill_fraction: f64, jobs: usize, out: &OutDir) {
    eprintln!(
        "lossy: loss sweep {LOSS_LEVELS:?} x lambda {LAMBDAS:?}, then 10% loss chaos run \
         (kill {kill_fraction} of nodes + degrade 13/40 links), jobs {jobs}"
    );

    // Part 1 — steady-state REALTOR admission across λ × loss (grid order:
    // λ slowest, loss fastest — matching the table's rows and columns).
    let grid = SweepGrid::new(seed)
        .with_lambdas(&LAMBDAS)
        .with_losses(&LOSS_LEVELS);
    let results = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        run_scenario(
            &Scenario::paper(ProtocolKind::Realtor, cell.lambda, horizon_secs, cell.seed)
                .with_channel(LinkQuality::lossy(cell.loss)),
        )
    });

    let mut columns = vec!["lambda".to_string()];
    columns.extend(LOSS_LEVELS.iter().map(|p| format!("loss-{p}")));
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut admission = Table::new(
        "Lossy network — REALTOR admission probability vs datagram loss",
        &col_refs,
    )
    .float_precision(4);
    let mut overhead = Table::new(
        "Lossy network — REALTOR message cost per admitted task vs datagram loss",
        &col_refs,
    )
    .float_precision(2);
    for (i, &lambda) in LAMBDAS.iter().enumerate() {
        let row = &results[i * LOSS_LEVELS.len()..(i + 1) * LOSS_LEVELS.len()];
        let mut adm = vec![Cell::Float(lambda)];
        let mut ovh = vec![Cell::Float(lambda)];
        for r in row {
            adm.push(Cell::Float(r.admission_probability()));
            ovh.push(Cell::Float(r.cost_per_admitted_task()));
        }
        admission.push_row(adm);
        overhead.push_row(ovh);
    }
    emit(out, "lossy_admission", &admission);
    emit(out, "lossy_overhead", &overhead);

    // Part 2 — chaos run: every protocol under 10 % loss + strike + jamming.
    let protocols = ProtocolKind::ALL;
    let chaos_grid = SweepGrid::new(seed)
        .with_protocols(&protocols)
        .with_lambdas(&[4.0]);
    let chaos: Vec<(SimResult, SimTime, SimTime)> =
        run_grid(&chaos_grid, &RunOpts::jobs(jobs), |cell| {
            let (scenario, strike, recover) = chaos_scenario(
                cell.protocol,
                cell.lambda,
                horizon_secs,
                cell.seed,
                0.10,
                kill_fraction,
            );
            (run_scenario(&scenario), strike, recover)
        });
    let mut summary = Table::new(
        "Lossy network — survivability under 10% loss, node strike and link jamming",
        &[
            "protocol",
            "baseline",
            "dip-depth",
            "recovery-windows",
            "admission",
            "datagrams-lost",
            "datagrams-duplicated",
        ],
    )
    .float_precision(4);
    for (p, (r, strike, recover)) in protocols.iter().zip(&chaos) {
        let ttr = r.time_to_recovery(*strike, *recover, EPSILON);
        summary.push_row(vec![
            p.label().into(),
            Cell::Float(r.baseline_admission(*strike).unwrap_or(0.0)),
            Cell::Float(r.dip_depth(*strike)),
            match ttr {
                Some(w) => Cell::Int(w as i64),
                None => Cell::Str("never".into()),
            },
            Cell::Float(r.admission_probability()),
            Cell::Int(r.ledger.lost_count as i64),
            Cell::Int(r.ledger.duplicated_count as i64),
        ]);
    }
    emit(out, "lossy_chaos_summary", &summary);
}

/// CI smoke: assert the headline robustness properties on a short horizon.
/// Panics (nonzero exit) on any violation.
pub fn smoke(seed: u64, jobs: usize) {
    let horizon = 600;
    eprintln!("lossy smoke: horizon {horizon}s, seed {seed}, jobs {jobs}");

    // Loss degrades REALTOR admission gracefully: monotone within a small
    // statistical tolerance, and never catastrophic at moderate loss.
    let grid = SweepGrid::new(seed)
        .with_lambdas(&[8.0])
        .with_losses(&LOSS_LEVELS);
    let sweep = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        run_scenario(
            &Scenario::paper(ProtocolKind::Realtor, cell.lambda, horizon, cell.seed)
                .with_channel(LinkQuality::lossy(cell.loss)),
        )
    });
    for pair in sweep.windows(2) {
        let (a, b) = (
            pair[0].admission_probability(),
            pair[1].admission_probability(),
        );
        assert!(
            b <= a + 0.02,
            "admission must not improve with loss: {a:.4} -> {b:.4}"
        );
    }
    assert!(
        sweep[3].admission_probability() > 0.5,
        "10% loss must degrade gracefully, admission {}",
        sweep[3].admission_probability()
    );
    assert!(sweep[0].ledger.lost_count == 0 && sweep[4].ledger.lost_count > 0);

    // The chaos run is deterministic and recovers.
    let once = || {
        let (scenario, strike, recover) =
            chaos_scenario(ProtocolKind::Realtor, 4.0, horizon, seed, 0.10, 0.3);
        (run_scenario(&scenario), strike, recover)
    };
    let (a, strike, recover) = once();
    let (b, _, _) = once();
    assert!(a == b, "lossy chaos run must be bit-for-bit deterministic");
    let ttr = a.time_to_recovery(strike, recover, EPSILON);
    assert!(
        ttr.is_some(),
        "REALTOR must recover to baseline after RestoreAll (baseline {:?}, windows {:?})",
        a.baseline_admission(strike),
        a.windows
            .iter()
            .map(|w| w.admission_probability())
            .collect::<Vec<_>>()
    );
    assert!(a.dip_depth(strike) > 0.0, "the strike must leave a visible dip");
    eprintln!(
        "lossy smoke ok: dip {:.3}, recovery in {} windows, {} datagrams lost",
        a.dip_depth(strike),
        ttr.unwrap(),
        a.ledger.lost_count
    );
}
