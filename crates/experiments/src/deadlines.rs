//! Ablation A11 — the guaranteed-rate scheduling claim (§3): with EDF over
//! utilization-test admission, admitted components meet their deadlines;
//! a FIFO host with the same admission test does not.
//!
//! Synthetic periodic task sets are drawn at increasing total utilization;
//! each set runs on a preemptive-EDF host and on a non-preemptive FIFO
//! host, and we report deadline-miss ratios.

use crate::output::{emit, OutDir};
use realtor_node::rt::{simulate_periodic, DispatchPolicy, PeriodicTask};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::{SimRng, SimTime};

/// Draw a task set with total utilization ≈ `target_u`.
fn draw_task_set(target_u: f64, rng: &mut SimRng) -> Vec<PeriodicTask> {
    let mut tasks = Vec::new();
    let mut remaining = target_u;
    while remaining > 0.02 && tasks.len() < 12 {
        let u = (rng.range_f64(0.05, 0.25)).min(remaining);
        let period = rng.range_f64(2.0, 40.0);
        tasks.push(PeriodicTask {
            wcet_secs: u * period,
            period_secs: period,
        });
        remaining -= u;
    }
    if tasks.is_empty() {
        tasks.push(PeriodicTask {
            wcet_secs: target_u.max(0.02) * 10.0,
            period_secs: 10.0,
        });
    }
    tasks
}

/// Run the utilization sweep and emit the comparison table.
pub fn run(horizon_secs: u64, seed: u64, trials: usize, out: &OutDir) {
    eprintln!("ablation A11 (deadlines): EDF vs FIFO, {trials} task sets per point");
    let horizon = SimTime::from_secs(horizon_secs);
    let mut table = Table::new(
        "Ablation A11 — deadline-miss ratio: preemptive EDF vs non-preemptive FIFO",
        &[
            "utilization",
            "edf-miss-ratio",
            "fifo-miss-ratio",
            "jobs-per-trial",
        ],
    )
    .float_precision(4);
    for target_u in [0.5, 0.7, 0.9, 0.95, 1.0, 1.1, 1.3] {
        let mut edf_missed = 0u64;
        let mut edf_done = 0u64;
        let mut fifo_missed = 0u64;
        let mut fifo_done = 0u64;
        let mut jobs = 0u64;
        for trial in 0..trials {
            let mut rng = SimRng::indexed_stream(seed, "deadline-sets", trial as u64);
            let tasks = draw_task_set(target_u, &mut rng);
            let edf = simulate_periodic(&tasks, DispatchPolicy::EdfPreemptive, horizon);
            let fifo = simulate_periodic(&tasks, DispatchPolicy::FifoNonPreemptive, horizon);
            edf_missed += edf.missed;
            edf_done += edf.completed;
            fifo_missed += fifo.missed;
            fifo_done += fifo.completed;
            jobs += edf.released;
        }
        table.push_row(vec![
            Cell::Float(target_u),
            Cell::Float(realtor_simcore::stats::ratio(edf_missed, edf_done)),
            Cell::Float(realtor_simcore::stats::ratio(fifo_missed, fifo_done)),
            Cell::Int((jobs / trials as u64) as i64),
        ]);
    }
    emit(out, "ablation_a11_deadlines", &table);
}
