//! Ablation A11 — the guaranteed-rate scheduling claim (§3): with EDF over
//! utilization-test admission, admitted components meet their deadlines;
//! a FIFO host with the same admission test does not.
//!
//! Synthetic periodic task sets are drawn at increasing total utilization;
//! each set runs on a preemptive-EDF host and on a non-preemptive FIFO
//! host, and we report deadline-miss ratios. Since PR 7 the utilization
//! points fan out over the grid runner's arm axis (`u=<target>`) behind
//! `--jobs N`; per-trial task-set seeds come from the position-independent
//! `indexed_stream(seed, "deadline-sets", trial)` split, so parallel
//! execution is byte-identical to the historical serial loop.

use crate::output::{emit, OutDir};
use realtor_node::rt::{simulate_periodic, DispatchPolicy, PeriodicTask};
use realtor_runner::{run_grid, RunOpts, SweepGrid};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::{SimRng, SimTime};

/// Total-utilization targets swept (spanning the EDF feasibility bound).
pub const UTILIZATIONS: [f64; 7] = [0.5, 0.7, 0.9, 0.95, 1.0, 1.1, 1.3];

/// Draw a task set with total utilization ≈ `target_u`.
fn draw_task_set(target_u: f64, rng: &mut SimRng) -> Vec<PeriodicTask> {
    let mut tasks = Vec::new();
    let mut remaining = target_u;
    while remaining > 0.02 && tasks.len() < 12 {
        let u = (rng.range_f64(0.05, 0.25)).min(remaining);
        let period = rng.range_f64(2.0, 40.0);
        tasks.push(PeriodicTask {
            wcet_secs: u * period,
            period_secs: period,
        });
        remaining -= u;
    }
    if tasks.is_empty() {
        tasks.push(PeriodicTask {
            wcet_secs: target_u.max(0.02) * 10.0,
            period_secs: 10.0,
        });
    }
    tasks
}

/// Aggregated counters of one utilization point.
struct Point {
    edf_missed: u64,
    edf_done: u64,
    fifo_missed: u64,
    fifo_done: u64,
    jobs_released: u64,
}

/// Run all trials of one utilization target.
fn run_point(target_u: f64, horizon: SimTime, seed: u64, trials: usize) -> Point {
    let mut p = Point {
        edf_missed: 0,
        edf_done: 0,
        fifo_missed: 0,
        fifo_done: 0,
        jobs_released: 0,
    };
    for trial in 0..trials {
        let mut rng = SimRng::indexed_stream(seed, "deadline-sets", trial as u64);
        let tasks = draw_task_set(target_u, &mut rng);
        let edf = simulate_periodic(&tasks, DispatchPolicy::EdfPreemptive, horizon);
        let fifo = simulate_periodic(&tasks, DispatchPolicy::FifoNonPreemptive, horizon);
        p.edf_missed += edf.missed;
        p.edf_done += edf.completed;
        p.fifo_missed += fifo.missed;
        p.fifo_done += fifo.completed;
        p.jobs_released += edf.released;
    }
    p
}

/// Run the utilization sweep on `jobs` workers and emit the comparison.
pub fn run(horizon_secs: u64, seed: u64, trials: usize, jobs: usize, out: &OutDir) {
    eprintln!(
        "ablation A11 (deadlines): EDF vs FIFO, {trials} task sets per point, jobs {jobs}"
    );
    let horizon = SimTime::from_secs(horizon_secs);
    let grid = SweepGrid::new(seed)
        .with_arms(UTILIZATIONS.iter().map(|u| format!("u={u}")));
    let points = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        let target_u: f64 = cell
            .arm
            .strip_prefix("u=")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("bad utilization arm: {}", cell.arm));
        run_point(target_u, horizon, cell.seed, trials)
    });
    let mut table = Table::new(
        "Ablation A11 — deadline-miss ratio: preemptive EDF vs non-preemptive FIFO",
        &[
            "utilization",
            "edf-miss-ratio",
            "fifo-miss-ratio",
            "jobs-per-trial",
        ],
    )
    .float_precision(4);
    for (&target_u, p) in UTILIZATIONS.iter().zip(&points) {
        table.push_row(vec![
            Cell::Float(target_u),
            Cell::Float(realtor_simcore::stats::ratio(p.edf_missed, p.edf_done)),
            Cell::Float(realtor_simcore::stats::ratio(p.fifo_missed, p.fifo_done)),
            Cell::Int((p.jobs_released / trials as u64) as i64),
        ]);
    }
    emit(out, "ablation_a11_deadlines", &table);
}
