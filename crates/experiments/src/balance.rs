//! Ablation A8 — placement quality: how evenly does each discovery protocol
//! spread admitted work across the system?
//!
//! The paper evaluates *whether* a destination is found; this ablation asks
//! *how good* the destinations are, using Jain's fairness index of per-node
//! admitted work and the spread of time-averaged queue occupancy. A
//! discovery scheme with stale information funnels migrations to whichever
//! node last advertised, producing hot spots.

use crate::output::{emit, OutDir};
use realtor_core::ProtocolKind;
use realtor_runner::{run_grid, RunOpts, SweepGrid};
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::table::{Cell, Table};

/// Run the balance comparison at the given loads on `jobs` workers.
pub fn run(lambdas: &[f64], horizon_secs: u64, seed: u64, jobs: usize, out: &OutDir) {
    // Grid order (protocol slowest, λ fastest) matches the table's rows.
    let grid = SweepGrid::new(seed)
        .with_protocols(&ProtocolKind::ALL)
        .with_lambdas(lambdas);
    eprintln!("ablation A8 (balance): {} points, jobs {jobs}", grid.len());
    let results = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        run_scenario(&Scenario::paper(cell.protocol, cell.lambda, horizon_secs, cell.seed))
    });
    let points: Vec<(ProtocolKind, f64)> = grid
        .cells()
        .iter()
        .map(|c| (c.protocol, c.lambda))
        .collect();
    let mut table = Table::new(
        "Ablation A8 — placement fairness and occupancy spread",
        &[
            "protocol",
            "lambda",
            "admission-probability",
            "jain-fairness",
            "mean-occupancy",
            "max-occupancy",
        ],
    )
    .float_precision(4);
    for ((p, l), r) in points.into_iter().zip(results) {
        let (mean_occ, max_occ) = r.occupancy_spread();
        table.push_row(vec![
            p.label().into(),
            Cell::Float(l),
            Cell::Float(r.admission_probability()),
            Cell::Float(r.placement_fairness()),
            Cell::Float(mean_occ),
            Cell::Float(max_occ),
        ]);
    }
    emit(out, "ablation_a8_balance", &table);
}
