//! Ablation A8 — placement quality: how evenly does each discovery protocol
//! spread admitted work across the system?
//!
//! The paper evaluates *whether* a destination is found; this ablation asks
//! *how good* the destinations are, using Jain's fairness index of per-node
//! admitted work and the spread of time-averaged queue occupancy. A
//! discovery scheme with stale information funnels migrations to whichever
//! node last advertised, producing hot spots.

use crate::output::{emit, OutDir};
use realtor_core::ProtocolKind;
use realtor_sim::sweep::run_parallel;
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::table::{Cell, Table};

/// Run the balance comparison at the given loads.
pub fn run(lambdas: &[f64], horizon_secs: u64, seed: u64, out: &OutDir) {
    let mut jobs = Vec::new();
    for &p in &ProtocolKind::ALL {
        for &l in lambdas {
            jobs.push((p, l));
        }
    }
    eprintln!("ablation A8 (balance): {} points", jobs.len());
    let results = run_parallel(&jobs, |&(p, l)| {
        run_scenario(&Scenario::paper(p, l, horizon_secs, seed))
    });
    let mut table = Table::new(
        "Ablation A8 — placement fairness and occupancy spread",
        &[
            "protocol",
            "lambda",
            "admission-probability",
            "jain-fairness",
            "mean-occupancy",
            "max-occupancy",
        ],
    )
    .float_precision(4);
    for ((p, l), r) in jobs.into_iter().zip(results) {
        let (mean_occ, max_occ) = r.occupancy_spread();
        table.push_row(vec![
            p.label().into(),
            Cell::Float(l),
            Cell::Float(r.admission_probability()),
            Cell::Float(r.placement_fairness()),
            Cell::Float(mean_occ),
            Cell::Float(max_occ),
        ]);
    }
    emit(out, "ablation_a8_balance", &table);
}
