//! Ablation A4 — attack survivability: *"works well in highly adverse
//! environments."*
//!
//! A strike kills a fraction of the nodes mid-run; the victims are restored
//! later. We record windowed admission probability so the transient is
//! visible: before the strike, during the outage, and after recovery. All
//! five protocols face the identical workload and identical victim set.

use crate::output::{emit, OutDir};
use realtor_core::ProtocolKind;
use realtor_net::TargetingStrategy;
use realtor_runner::{run_grid, RunOpts, SweepGrid};
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::{SimDuration, SimTime};
use realtor_workload::AttackScenario;

/// Run the strike-and-recover experiment on `jobs` workers.
///
/// The strike hits at 40 % of the horizon and recovery happens at 70 %;
/// `kill_fraction` of the 25 nodes are killed (random targeting, seeded).
pub fn run(lambda: f64, horizon_secs: u64, seed: u64, kill_fraction: f64, jobs: usize, out: &OutDir) {
    let strike = SimTime::from_secs(horizon_secs * 2 / 5);
    let recover = SimTime::from_secs(horizon_secs * 7 / 10);
    let victims = ((25.0 * kill_fraction).round() as usize).max(1);
    let window = SimDuration::from_secs((horizon_secs / 20).max(1));
    eprintln!(
        "ablation A4 (attack): kill {victims}/25 nodes at {strike}, restore at {recover}, \
         lambda={lambda}, jobs {jobs}"
    );

    // Validate the scripted strike once, up front: an impossible script
    // (e.g. --kill-fraction beyond the population) is a usage error and
    // exits 2 with the typed validation message, like any bad CLI input.
    let script = AttackScenario::strike_and_recover(strike, recover, victims);
    if let Err(e) = script.validate(SimTime::from_secs(horizon_secs), 25) {
        eprintln!("error: invalid attack script: {e}");
        std::process::exit(2);
    }

    let protocols = ProtocolKind::ALL;
    let grid = SweepGrid::new(seed)
        .with_protocols(&protocols)
        .with_lambdas(&[lambda])
        .with_kills(&[victims]);
    let results = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        let scenario = Scenario::paper(cell.protocol, cell.lambda, horizon_secs, cell.seed)
            .with_attack(
                AttackScenario::strike_and_recover(strike, recover, cell.kills),
                TargetingStrategy::Random,
            )
            .with_window(window);
        run_scenario(&scenario)
    });

    // Windowed time series: one row per window, one column per protocol.
    let mut columns = vec!["window-start".to_string(), "alive-nodes".to_string()];
    columns.extend(protocols.iter().map(|p| p.label().to_string()));
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut series = Table::new(
        format!(
            "Ablation A4 — admission probability over time under attack \
             ({victims}/25 nodes killed, lambda={lambda})"
        ),
        &col_refs,
    )
    .float_precision(4);
    let window_count = results.iter().map(|r| r.windows.len()).min().unwrap_or(0);
    for w in 0..window_count {
        let mut row = vec![
            Cell::Float(results[0].windows[w].start.as_secs_f64()),
            Cell::Int(results[0].windows[w].alive_nodes as i64),
        ];
        for r in &results {
            row.push(Cell::Float(r.windows[w].admission_probability()));
        }
        series.push_row(row);
    }
    emit(out, "ablation_a4_attack_timeseries", &series);

    // Phase summary.
    let mut summary = Table::new(
        "Ablation A4 — admission probability by phase",
        &["protocol", "before", "during-attack", "after-recovery", "lost-to-attacks"],
    )
    .float_precision(4);
    for (p, r) in protocols.iter().zip(&results) {
        let phase = |lo: SimTime, hi: SimTime| {
            let (mut off, mut adm) = (0u64, 0u64);
            for w in &r.windows {
                if w.start >= lo && w.start < hi {
                    off += w.offered;
                    adm += w.admitted;
                }
            }
            realtor_simcore::stats::ratio(adm, off)
        };
        summary.push_row(vec![
            p.label().into(),
            Cell::Float(phase(SimTime::ZERO, strike)),
            Cell::Float(phase(strike, recover)),
            Cell::Float(phase(recover, SimTime::from_secs(horizon_secs))),
            Cell::Int(r.lost_to_attacks as i64),
        ]);
    }
    emit(out, "ablation_a4_attack_summary", &summary);
}
