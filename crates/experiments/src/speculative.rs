//! Ablation A7 — speculative vs two-phase migration latency (§3: "the
//! migration of the component can happen concurrently to the negotiation
//! among the Admission Controls (speculative migration), thus enabling very
//! low-latency migration").
//!
//! Measured on the thread-per-host cluster: wall-clock latency of the
//! migration path with the component shipped inside the admission request
//! (one round trip) versus reserve-then-transfer (two round trips).

use crate::output::{emit, OutDir};
use realtor_agile::{Cluster, ClusterConfig};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::SimTime;
use realtor_workload::WorkloadSpec;

fn measure(speculative: bool, horizon_secs: u64, seed: u64) -> (f64, u64, f64) {
    let mut cfg = ClusterConfig {
        hosts: 8,
        time_scale: 1000.0,
        seed,
        ..Default::default()
    };
    cfg.host.capacity_secs = 50.0;
    cfg.host.speculative_migration = speculative;
    let cluster = Cluster::start(&cfg);
    // Heavy enough load that migrations actually happen.
    let trace =
        WorkloadSpec::paper(6.0, cfg.hosts, SimTime::from_secs(horizon_secs), seed).generate();
    cluster.run_workload(&trace);
    cluster.settle(2.0);
    let report = cluster.shutdown();
    (
        report.migration_latency_mean * 1e6, // µs
        report.migration_latency_count,
        report.admission_probability(),
    )
}

/// Run both modes and emit the comparison.
pub fn run(horizon_secs: u64, seed: u64, out: &OutDir) {
    eprintln!("ablation A7 (speculative migration): 8-host cluster, lambda=6");
    let mut table = Table::new(
        "Ablation A7 — speculative vs two-phase migration",
        &[
            "mode",
            "mean-migration-latency-us",
            "migrations-measured",
            "admission-probability",
        ],
    )
    .float_precision(2);
    for (name, speculative) in [("two-phase", false), ("speculative", true)] {
        let (lat_us, count, admission) = measure(speculative, horizon_secs, seed);
        table.push_row(vec![
            name.into(),
            Cell::Float(lat_us),
            Cell::Int(count as i64),
            Cell::Float(admission),
        ]);
    }
    emit(out, "ablation_a7_speculative_migration", &table);
}
