//! Chaos churn experiment (A16) — survivability under *continuous* node
//! replacement rather than a single scripted strike.
//!
//! A [`ChurnProcess`] replaces a fraction of the population every interval
//! inside a churn window: each wave kills fresh victims (drawn from a
//! dedicated seed-split RNG stream) and amnesiac-restores the previous
//! wave's. The sweep crosses churn rate × failure-detector timeout ×
//! protocol on the deterministic grid runner, so `--jobs N` produces
//! byte-identical artifacts for any N.
//!
//! The grid runner's cell label format is pinned (golden-tested), so the
//! churn-rate and detector axes ride the **arm** axis as composite strings
//! (`churn=0.05/det=4`) instead of new grid axes.
//!
//! Reported per cell: overall admission probability, the windowed-admission
//! dip depth below the pre-churn baseline, windows-to-recovery after the
//! churn window closes, and the interrupted/recovered/destroyed task
//! ledger — whose invariant `interrupted == recovered + destroyed` is
//! asserted on every cell, every run.

use crate::output::{emit, OutDir};
use realtor_core::{FailureDetectorConfig, ProtocolConfig, ProtocolKind};
use realtor_runner::{run_grid, RunOpts, SweepGrid};
use realtor_sim::{run_scenario, ChaosConfig, RecoveryConfig, Scenario, SimResult};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::{SimDuration, SimTime};
use realtor_workload::ChurnConfig;

/// Fraction of the population replaced per churn wave.
pub const CHURN_FRACTIONS: [f64; 2] = [0.05, 0.15];

/// Failure-detector suspicion timeouts (seconds of silence) under test.
pub const DETECTOR_TIMEOUTS: [u64; 2] = [4, 8];

/// Composite arm strings — the grid's label format is pinned, so the two
/// churn axes share the arm axis as `churn=<frac>/det=<secs>`.
fn arms() -> Vec<String> {
    let mut out = Vec::new();
    for &frac in &CHURN_FRACTIONS {
        for &det in &DETECTOR_TIMEOUTS {
            out.push(format!("churn={frac}/det={det}"));
        }
    }
    out
}

/// Parse a composite arm back into (fraction, detector timeout).
fn parse_arm(arm: &str) -> (f64, u64) {
    let (churn, det) = arm.split_once('/').expect("arm is churn=<f>/det=<s>");
    let frac = churn
        .strip_prefix("churn=")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("bad churn arm: {arm}"));
    let secs = det
        .strip_prefix("det=")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("bad detector arm: {arm}"));
    (frac, secs)
}

/// Churn window boundaries: waves run from 20% to 70% of the horizon, so
/// every run has a clean pre-churn baseline and a recovery tail.
fn churn_window(horizon_secs: u64) -> (SimTime, SimTime) {
    (
        SimTime::from_secs(horizon_secs / 5),
        SimTime::from_secs(horizon_secs * 7 / 10),
    )
}

/// One churn cell: paper scenario + reactive recovery + a failure detector
/// at the arm's timeout + continuous churn at the arm's rate. Public so
/// the integration tests replay the exact cells the CLI runs.
pub fn churn_scenario(
    protocol: ProtocolKind,
    lambda: f64,
    horizon_secs: u64,
    seed: u64,
    fraction: f64,
    detect_secs: u64,
) -> Scenario {
    let (start, end) = churn_window(horizon_secs);
    let interval = SimDuration::from_secs((horizon_secs / 40).max(5));
    let window = SimDuration::from_secs((horizon_secs / 20).max(1));
    let detector = FailureDetectorConfig {
        suspect_after: SimDuration::from_secs(detect_secs),
        confirm_after: SimDuration::from_secs(2),
        sweep_interval: SimDuration::from_secs(1),
    };
    Scenario::paper(protocol, lambda, horizon_secs, seed)
        .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector))
        .with_window(window)
        .with_recovery(RecoveryConfig::reactive())
        .with_chaos(ChaosConfig::churn(ChurnConfig::new(
            fraction,
            interval,
            start,
            end,
        )))
}

/// Assert the survivability task ledger on one cell and return the result.
fn checked(label: &str, r: SimResult) -> SimResult {
    assert_eq!(
        r.tasks_interrupted,
        r.tasks_recovered + r.tasks_destroyed,
        "ledger invariant violated on cell {label}"
    );
    r
}

fn summary_table(
    horizon_secs: u64,
    rows: &[(String, ProtocolKind, SimResult)],
) -> Table {
    let (start, end) = churn_window(horizon_secs);
    let mut t = Table::new(
        "Churn (A16) — admission under continuous node replacement \
         (waves from 20% to 70% of the horizon, reactive recovery)",
        &[
            "arm",
            "protocol",
            "admission",
            "dip-depth",
            "windows-to-recovery",
            "interrupted",
            "recovered",
            "destroyed",
            "recovered-frac",
            "detections",
        ],
    )
    .float_precision(4);
    for (arm, protocol, r) in rows {
        let recovery = r
            .time_to_recovery(start, end, 0.05)
            .map(|w| Cell::Int(w as i64))
            .unwrap_or_else(|| Cell::Str("never".into()));
        t.push_row(vec![
            Cell::Str(arm.clone()),
            Cell::Str(protocol.label().into()),
            Cell::Float(r.admission_probability()),
            Cell::Float(r.dip_depth(start)),
            recovery,
            Cell::Int(r.tasks_interrupted as i64),
            Cell::Int(r.tasks_recovered as i64),
            Cell::Int(r.tasks_destroyed as i64),
            Cell::Float(r.recovered_fraction()),
            Cell::Int(r.detections as i64),
        ]);
    }
    t
}

/// Run the churn sweep and emit `churn_summary.csv`.
pub fn run(lambda: f64, horizon_secs: u64, seed: u64, jobs: usize, out: &OutDir) {
    let arms = arms();
    eprintln!(
        "churn (A16): {} arms (rates {CHURN_FRACTIONS:?} x detectors {DETECTOR_TIMEOUTS:?}s) \
         x {} protocols, lambda {lambda}, horizon {horizon_secs}s, jobs {jobs}",
        arms.len(),
        ProtocolKind::ALL.len()
    );
    let grid = SweepGrid::new(seed)
        .with_arms(arms)
        .with_protocols(&ProtocolKind::ALL)
        .with_lambdas(&[lambda]);
    let results = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        let (fraction, detect) = parse_arm(&cell.arm);
        let r = run_scenario(&churn_scenario(
            cell.protocol,
            cell.lambda,
            horizon_secs,
            cell.seed,
            fraction,
            detect,
        ));
        checked(&cell.label(), r)
    });
    let rows: Vec<(String, ProtocolKind, SimResult)> = grid
        .cells()
        .iter()
        .zip(results)
        .map(|(cell, r)| (cell.arm.clone(), cell.protocol, r))
        .collect();
    emit(out, "churn_summary", &summary_table(horizon_secs, &rows));
}

/// CI smoke: a tiny grid on a short horizon, asserting the headline chaos
/// properties and grid determinism. Panics (nonzero exit) on violation.
pub fn smoke(seed: u64, jobs: usize, out: &OutDir) {
    let horizon = 600;
    let lambda = 6.0;
    eprintln!("churn smoke: horizon {horizon}s, lambda {lambda}, seed {seed}, jobs {jobs}");
    let grid = SweepGrid::new(seed)
        .with_arms(["churn=0.1/det=4"])
        .with_protocols(&[ProtocolKind::Realtor, ProtocolKind::PurePull])
        .with_lambdas(&[lambda]);
    let run_cells = |jobs: usize| {
        run_grid(&grid, &RunOpts { jobs, progress: false }, |cell| {
            let (fraction, detect) = parse_arm(&cell.arm);
            let r = run_scenario(&churn_scenario(
                cell.protocol,
                cell.lambda,
                horizon,
                cell.seed,
                fraction,
                detect,
            ));
            checked(&cell.label(), r)
        })
    };
    let results = run_cells(jobs);
    // Churn must actually interrupt work, and recovery must re-home some.
    let realtor = &results[0];
    assert!(realtor.tasks_interrupted > 0, "churn must interrupt tasks");
    assert!(realtor.tasks_recovered > 0, "recovery must re-home some tasks");
    assert!(realtor.dip_depth(churn_window(horizon).0) >= 0.0);
    // Thread-count invariance: the same grid at another job count is
    // bit-identical.
    assert!(
        run_cells(1) == results && run_cells(2) == results,
        "churn grid must be thread-count invariant"
    );
    let rows: Vec<(String, ProtocolKind, SimResult)> = grid
        .cells()
        .iter()
        .zip(results)
        .map(|(cell, r)| (cell.arm.clone(), cell.protocol, r))
        .collect();
    emit(out, "churn_summary", &summary_table(horizon, &rows));
    let r = &rows[0].2;
    eprintln!(
        "churn smoke ok: {} interrupted, {} recovered, {} destroyed, admission {:.3}",
        r.tasks_interrupted,
        r.tasks_recovered,
        r.tasks_destroyed,
        r.admission_probability()
    );
}
