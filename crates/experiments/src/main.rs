//! Experiment driver: regenerates every figure of the paper's evaluation
//! plus the ablations indexed in DESIGN.md.
//!
//! ```text
//! experiments <command> [--option value]...
//!
//! commands:
//!   fig5 | fig6 | fig7 | fig8   one simulation figure
//!   figures                     all four simulation figures (one sweep)
//!   figures-ci                  the same with CI-width-driven replication:
//!                               each point re-runs until every figure
//!                               metric's 95% CI half-width is within
//!                               --ci-rel of its mean (reps bounded by
//!                               --min-reps / --reps)
//!   fig9                        the 20-host cluster measurement
//!   ablation-h                  A1: Algorithm H parameter sensitivity
//!   ablation-threshold          A2: H/P threshold sensitivity
//!   scalability                 A3: overhead vs system size
//!   attack                      A4: strike-and-recover survivability
//!   lossy                       A12: unreliable-network loss sweep + chaos recovery
//!   failover                    A13: failure detection, evacuation, crash recovery
//!   inter-community             A5: scoped floods + gateway relays
//!   multi-resource              A6: vector-aware candidate selection
//!   speculative                 A7: speculative vs two-phase migration
//!   balance                     A8: placement fairness / occupancy spread
//!   staleness                   A9: candidate-info staleness bound
//!   dynamics                    A10: Algorithm H interval evolution (plot)
//!   deadlines                   A11: EDF vs FIFO deadline-miss rate
//!   trace                       A14: traced run -> JSONL event log + registry
//!                               reconciliation (--scenario paper|lossy|failover)
//!   analyze                     A19: causal analysis of any trace JSONL —
//!                               per-phase latency, recovery critical path,
//!                               messages per admitted task, flame self-time
//!                               (--input <path>, or stdin)
//!   churn                       A16: continuous node replacement — churn rate x
//!                               detector timeout x protocol on the grid runner
//!                               (--smoke true for the CI assertion run)
//!   cluster                     A18: live-runtime survivability — closed-loop
//!                               clients vs a crash-style kill wave, supervised
//!                               recovery, p99 + time-to-recovery + ledger
//!                               (--smoke true for the CI assertion run)
//!   all                         everything above
//!
//! common options:
//!   --horizon <secs>     simulation horizon (default 10000, the paper's scale)
//!   --seed <n>           master seed (default 42)
//!   --lambdas <a..b|csv> arrival-rate sweep (default 1..10)
//!   --jobs <n>           worker threads for sweep commands (default 1 =
//!                        serial; any value yields byte-identical output)
//!   --out <dir>          CSV output directory (default results/)
//!   --quick true         shrink horizons ~10x for a fast smoke run
//!   --plot true          draw figures as ASCII charts in the terminal
//!
//! figures-ci options:
//!   --ci-rel <frac>      target relative 95% CI half-width (default 0.05)
//!   --min-reps <n>       replications to always run (default 3)
//!   --reps <n>           replication cap per point (default 16)
//! ```
//!
//! Unknown scenario names and invalid `--jobs` values exit with status 2
//! and a message listing what is accepted.

use experiments::cli::{self, Cli};
use experiments::figures::Figure;
use experiments::output::OutDir;
use experiments::{
    ablations, analyze, attack, balance, churn, cluster, deadlines, dynamics, failover, fig9,
    figures, inter_community, lossy, multi_resource, scalability, speculative, staleness, trace,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cli = match Cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = cli::validate_command(&cli.command) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let jobs = match cli.get_jobs() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let quick = cli.get_flag("quick");
    let shrink = if quick { 10 } else { 1 };
    let horizon = cli.get_u64("horizon", 10_000) / shrink;
    let cluster_horizon = cli.get_u64("cluster-horizon", 600) / shrink;
    let seed = cli.get_u64("seed", 42);
    let lambdas = cli.get_lambdas(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
    let out = OutDir::new(Some(cli.get("out").unwrap_or("results")));
    let scale = cli.get_f64("time-scale", 2000.0);
    let plot = cli.get_flag("plot");

    match cli.command.as_str() {
        "fig5" => figures::run(&[Figure::Fig5], &lambdas, horizon, seed, jobs, &out, plot),
        "fig6" => figures::run(&[Figure::Fig6], &lambdas, horizon, seed, jobs, &out, plot),
        "fig7" => figures::run(&[Figure::Fig7], &lambdas, horizon, seed, jobs, &out, plot),
        "fig8" => figures::run(&[Figure::Fig8], &lambdas, horizon, seed, jobs, &out, plot),
        "figures" => figures::run(
            &[Figure::Fig5, Figure::Fig6, Figure::Fig7, Figure::Fig8],
            &lambdas,
            horizon,
            seed,
            jobs,
            &out,
            plot,
        ),
        "figures-ci" => figures::run_replicated(
            &[Figure::Fig5, Figure::Fig6, Figure::Fig7, Figure::Fig8],
            &lambdas,
            horizon.min(3000),
            seed,
            &realtor_runner::CiPolicy::default()
                .with_rel_half_width(cli.get_f64("ci-rel", 0.05))
                .with_reps(cli.get_u64("min-reps", 3), cli.get_u64("reps", 16)),
            jobs,
            &out,
        ),
        "fig9" => fig9::run(&lambdas, cluster_horizon, seed, scale, &out),
        "ablation-h" => ablations::run_algorithm_h(
            cli.get_f64("lambda", 7.0),
            horizon.min(3000),
            seed,
            &out,
        ),
        "ablation-threshold" => ablations::run_thresholds(
            cli.get_f64("lambda", 7.0),
            horizon.min(3000),
            seed,
            &out,
        ),
        "scalability" => scalability::run(
            cli.get_f64("per-node-lambda", 0.28),
            horizon.min(2000),
            seed,
            jobs,
            &out,
        ),
        "attack" => attack::run(
            cli.get_f64("lambda", 4.0),
            horizon.min(3000),
            seed,
            cli.get_f64("kill-fraction", 0.3),
            jobs,
            &out,
        ),
        "lossy" => {
            if cli.get_flag("smoke") {
                lossy::smoke(seed, jobs);
            } else {
                lossy::run(
                    horizon.min(3000),
                    seed,
                    cli.get_f64("kill-fraction", 0.3),
                    jobs,
                    &out,
                );
            }
        }
        "failover" => {
            if cli.get_flag("smoke") {
                failover::smoke(seed, &out);
            } else {
                // Capped well below the other ablations: the implicit
                // heartbeats that drive detection exist only while discovery
                // traffic is dense (the saturation transient) — see
                // DESIGN.md A13.
                failover::run(
                    cli.get_f64("lambda", 6.0),
                    horizon.min(800),
                    seed,
                    jobs,
                    &out,
                );
            }
        }
        "inter-community" => inter_community::run(
            cli.get_u64("side", 10) as usize,
            cli.get_u64("tile", 5) as usize,
            cli.get_f64("lambda", 30.0),
            horizon.min(2000),
            seed,
            &out,
        ),
        "multi-resource" => multi_resource::run(
            cli.get_u64("hosts", 50) as usize,
            cli.get_u64("demands", 5000) as usize,
            seed,
            &out,
        ),
        "speculative" => speculative::run(cluster_horizon.min(300), seed, &out),
        "balance" => balance::run(&[5.0, 7.0, 9.0], horizon.min(3000), seed, jobs, &out),
        "dynamics" => dynamics::run(horizon.min(3000), seed, &out),
        "deadlines" => deadlines::run(
            horizon.min(2000),
            seed,
            cli.get_u64("trials", 20) as usize,
            jobs,
            &out,
        ),
        "churn" => {
            if cli.get_flag("smoke") {
                churn::smoke(seed, jobs, &out);
            } else {
                churn::run(cli.get_f64("lambda", 6.0), horizon.min(1500), seed, jobs, &out);
            }
        }
        "cluster" => {
            if cli.get_flag("smoke") {
                cluster::smoke(seed, &out);
            } else {
                cluster::run(
                    cli.get_u64("hosts", 20) as usize,
                    cli.get_u64("clients", 24) as usize,
                    cluster_horizon.min(600),
                    seed,
                    scale,
                    &out,
                );
            }
        }
        "staleness" => staleness::run(cli.get_f64("lambda", 8.0), horizon.min(3000), seed, &out),
        "analyze" => analyze::run(cli.get("input")),
        "trace" => trace::run(
            cli.get("scenario").unwrap_or("paper"),
            cli.get_f64("lambda", 8.0),
            horizon.min(3000),
            seed,
            jobs,
            &out,
        ),
        "all" => {
            figures::run(
                &[Figure::Fig5, Figure::Fig6, Figure::Fig7, Figure::Fig8],
                &lambdas,
                horizon,
                seed,
                jobs,
                &out,
                plot,
            );
            fig9::run(&lambdas, cluster_horizon, seed, scale, &out);
            ablations::run_algorithm_h(7.0, horizon.min(3000), seed, &out);
            ablations::run_thresholds(7.0, horizon.min(3000), seed, &out);
            scalability::run(0.28, horizon.min(2000), seed, jobs, &out);
            attack::run(4.0, horizon.min(3000), seed, 0.3, jobs, &out);
            lossy::run(horizon.min(3000), seed, 0.3, jobs, &out);
            failover::run(6.0, horizon.min(800), seed, jobs, &out);
            inter_community::run(10, 5, 30.0, horizon.min(2000), seed, &out);
            multi_resource::run(50, 5000, seed, &out);
            speculative::run(cluster_horizon.min(300), seed, &out);
            balance::run(&[5.0, 7.0, 9.0], horizon.min(3000), seed, jobs, &out);
            staleness::run(8.0, horizon.min(3000), seed, &out);
            dynamics::run(horizon.min(3000), seed, &out);
            deadlines::run(horizon.min(2000), seed, 20, jobs, &out);
            churn::run(6.0, horizon.min(1500), seed, jobs, &out);
            cluster::run(10, 12, cluster_horizon.min(300), seed, scale, &out);
        }
        "help" => {
            eprintln!("usage: experiments <command> [--option value]...");
            eprintln!("see the crate docs (src/main.rs) for the command list");
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!("usage: experiments <command> [--option value]...");
            std::process::exit(2);
        }
    }
}
