//! Figures 5–8: the main simulation sweep of the paper's Section 5.

use crate::output::{emit, OutDir};
use realtor_core::ProtocolKind;
use realtor_sim::{run_replicated_sweep, run_sweep, FigureMetric, Scenario, Sweep};

/// Run the paired λ sweep shared by Figures 5–8.
pub fn run_main_sweep(lambdas: &[f64], horizon_secs: u64, seed: u64) -> Sweep {
    run_sweep(&ProtocolKind::ALL, lambdas, |p, l| {
        Scenario::paper(p, l, horizon_secs, seed)
    })
}

/// Which figures to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    Fig5,
    Fig6,
    Fig7,
    Fig8,
}

impl Figure {
    pub fn metric(self) -> FigureMetric {
        match self {
            Figure::Fig5 => FigureMetric::AdmissionProbability,
            Figure::Fig6 => FigureMetric::TotalMessages,
            Figure::Fig7 => FigureMetric::CostPerAdmittedTask,
            Figure::Fig8 => FigureMetric::MigrationRate,
        }
    }

    pub fn title(self) -> &'static str {
        match self {
            Figure::Fig5 => "Figure 5 — Admission probability",
            Figure::Fig6 => "Figure 6 — Number of messages exchanged",
            Figure::Fig7 => "Figure 7 — Communication cost per admitted task",
            Figure::Fig8 => "Figure 8 — Migration rate",
        }
    }

    pub fn file_stem(self) -> &'static str {
        match self {
            Figure::Fig5 => "fig5_admission_probability",
            Figure::Fig6 => "fig6_number_of_messages",
            Figure::Fig7 => "fig7_cost_per_admitted_task",
            Figure::Fig8 => "fig8_migration_rate",
        }
    }
}

/// Render and emit one figure from a sweep.
pub fn emit_figure(sweep: &Sweep, figure: Figure, out: &OutDir, plot: bool) {
    let table = sweep.figure(figure.metric(), figure.title());
    emit(out, figure.file_stem(), &table);
    if plot {
        use realtor_simcore::plot::{render, PlotConfig, Series};
        let series: Vec<Series> = sweep
            .protocols
            .iter()
            .map(|&p| {
                Series::new(
                    p.label(),
                    sweep
                        .lambdas
                        .iter()
                        .filter_map(|&l| {
                            sweep.get(p, l).map(|r| (l, figure.metric().extract(r)))
                        })
                        .collect(),
                )
            })
            .collect();
        let log_y = figure == Figure::Fig6; // the paper's message counts span decades
        println!(
            "{}",
            render(
                &series,
                &PlotConfig {
                    title: figure.title().to_string(),
                    width: 70,
                    height: 20,
                    log_y,
                    y_range: None,
                }
            )
        );
    }
}

/// Run and emit the requested figures (they share one sweep).
pub fn run(
    figures: &[Figure],
    lambdas: &[f64],
    horizon_secs: u64,
    seed: u64,
    out: &OutDir,
    plot: bool,
) {
    eprintln!(
        "running main sweep: {} protocols x {} lambdas, horizon {horizon_secs}s, seed {seed}",
        ProtocolKind::ALL.len(),
        lambdas.len()
    );
    let sweep = run_main_sweep(lambdas, horizon_secs, seed);
    for &f in figures {
        emit_figure(&sweep, f, out, plot);
    }
}

/// Replicated variant: every point at `reps` seeds, reported mean ± 95% CI.
pub fn run_replicated(
    figures: &[Figure],
    lambdas: &[f64],
    horizon_secs: u64,
    seed: u64,
    reps: u64,
    out: &OutDir,
) {
    eprintln!(
        "running replicated sweep: {} protocols x {} lambdas x {reps} seeds, \
         horizon {horizon_secs}s",
        ProtocolKind::ALL.len(),
        lambdas.len()
    );
    let sweep = run_replicated_sweep(&ProtocolKind::ALL, lambdas, reps, |p, l, rep| {
        Scenario::paper(p, l, horizon_secs, seed + rep)
    });
    for &f in figures {
        let table = sweep.figure(f.metric(), &format!("{} (mean ± 95% CI, {reps} seeds)", f.title()));
        emit(out, &format!("{}_ci", f.file_stem()), &table);
    }
}
