//! Figures 5–8: the main simulation sweep of the paper's Section 5.
//!
//! Since PR 6 the sweep executes through the deterministic grid runner
//! (`realtor-runner`): cells fan out over `--jobs N` workers and come back
//! in grid order, so the emitted tables are byte-identical for any job
//! count — and bit-exact with the historical serial driver, because the
//! grid keeps the paper's shared-seed paired-comparison policy.

use crate::output::{emit, OutDir};
use realtor_core::ProtocolKind;
use realtor_runner::{replicate_until_ci, run_grid, CiPolicy, RunOpts, SweepGrid};
use realtor_sim::sweep::SweepPoint;
use realtor_sim::{run_scenario, FigureMetric, ReplicatedSweep, Scenario, Sweep};
use realtor_simcore::table::{Cell, Table};

/// Run the paired λ sweep shared by Figures 5–8 on `jobs` workers.
pub fn run_main_sweep(lambdas: &[f64], horizon_secs: u64, seed: u64, jobs: usize) -> Sweep {
    let grid = SweepGrid::new(seed)
        .with_protocols(&ProtocolKind::ALL)
        .with_lambdas(lambdas);
    let results = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        run_scenario(&Scenario::paper(cell.protocol, cell.lambda, horizon_secs, cell.seed))
    });
    let points = grid
        .cells()
        .iter()
        .zip(results)
        .map(|(cell, result)| SweepPoint {
            protocol: cell.protocol,
            lambda: cell.lambda,
            result,
        })
        .collect();
    Sweep {
        lambdas: lambdas.to_vec(),
        protocols: ProtocolKind::ALL.to_vec(),
        points,
    }
}

/// Which figures to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    Fig5,
    Fig6,
    Fig7,
    Fig8,
}

impl Figure {
    pub fn metric(self) -> FigureMetric {
        match self {
            Figure::Fig5 => FigureMetric::AdmissionProbability,
            Figure::Fig6 => FigureMetric::TotalMessages,
            Figure::Fig7 => FigureMetric::CostPerAdmittedTask,
            Figure::Fig8 => FigureMetric::MigrationRate,
        }
    }

    pub fn title(self) -> &'static str {
        match self {
            Figure::Fig5 => "Figure 5 — Admission probability",
            Figure::Fig6 => "Figure 6 — Number of messages exchanged",
            Figure::Fig7 => "Figure 7 — Communication cost per admitted task",
            Figure::Fig8 => "Figure 8 — Migration rate",
        }
    }

    pub fn file_stem(self) -> &'static str {
        match self {
            Figure::Fig5 => "fig5_admission_probability",
            Figure::Fig6 => "fig6_number_of_messages",
            Figure::Fig7 => "fig7_cost_per_admitted_task",
            Figure::Fig8 => "fig8_migration_rate",
        }
    }
}

/// Render and emit one figure from a sweep.
pub fn emit_figure(sweep: &Sweep, figure: Figure, out: &OutDir, plot: bool) {
    let table = sweep.figure(figure.metric(), figure.title());
    emit(out, figure.file_stem(), &table);
    if plot {
        use realtor_simcore::plot::{render, PlotConfig, Series};
        let series: Vec<Series> = sweep
            .protocols
            .iter()
            .map(|&p| {
                Series::new(
                    p.label(),
                    sweep
                        .lambdas
                        .iter()
                        .filter_map(|&l| {
                            sweep.get(p, l).map(|r| (l, figure.metric().extract(r)))
                        })
                        .collect(),
                )
            })
            .collect();
        let log_y = figure == Figure::Fig6; // the paper's message counts span decades
        println!(
            "{}",
            render(
                &series,
                &PlotConfig {
                    title: figure.title().to_string(),
                    width: 70,
                    height: 20,
                    log_y,
                    y_range: None,
                }
            )
        );
    }
}

/// Run and emit the requested figures (they share one sweep).
pub fn run(
    figures: &[Figure],
    lambdas: &[f64],
    horizon_secs: u64,
    seed: u64,
    jobs: usize,
    out: &OutDir,
    plot: bool,
) {
    eprintln!(
        "running main sweep: {} protocols x {} lambdas, horizon {horizon_secs}s, seed {seed}, \
         jobs {jobs}",
        ProtocolKind::ALL.len(),
        lambdas.len()
    );
    let sweep = run_main_sweep(lambdas, horizon_secs, seed, jobs);
    for &f in figures {
        emit_figure(&sweep, f, out, plot);
    }
}

/// Replicated variant: every (protocol, λ) point is re-run with fresh
/// replication seeds until the 95% CI half-width of every figure metric
/// falls below `policy.rel_half_width` (relative to its mean) or
/// `policy.max_reps` is hit. Replication seeds derive from the cell's
/// coordinate label, never its position, so adding λs or protocols leaves
/// existing points' replicas untouched. Emits the four `<stem>_ci.csv`
/// figures plus `figures_ci_reps.csv` recording how many replications each
/// point needed.
pub fn run_replicated(
    figures: &[Figure],
    lambdas: &[f64],
    horizon_secs: u64,
    seed: u64,
    policy: &CiPolicy,
    jobs: usize,
    out: &OutDir,
) {
    eprintln!(
        "running CI-width replicated sweep: {} protocols x {} lambdas, horizon {horizon_secs}s, \
         target rel half-width {}, reps {}..{}, jobs {jobs}",
        ProtocolKind::ALL.len(),
        lambdas.len(),
        policy.rel_half_width,
        policy.min_reps,
        policy.max_reps
    );
    let grid = SweepGrid::new(seed)
        .with_protocols(&ProtocolKind::ALL)
        .with_lambdas(lambdas);
    let reps = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        replicate_until_ci(
            policy,
            seed,
            &cell.label(),
            |rep_seed| {
                run_scenario(&Scenario::paper(cell.protocol, cell.lambda, horizon_secs, rep_seed))
            },
            |r| {
                vec![
                    r.admission_probability(),
                    r.total_messages(),
                    r.cost_per_admitted_task(),
                    r.migration_rate(),
                ]
            },
        )
    });
    let cells = grid.cells();
    let sweep = ReplicatedSweep {
        lambdas: lambdas.to_vec(),
        protocols: ProtocolKind::ALL.to_vec(),
        points: cells
            .iter()
            .zip(&reps)
            .map(|(c, rep)| (c.protocol, c.lambda, rep.results.clone()))
            .collect(),
    };
    for &f in figures {
        let table = sweep.figure(
            f.metric(),
            &format!(
                "{} (mean ± 95% CI, adaptive reps to rel half-width {})",
                f.title(),
                policy.rel_half_width
            ),
        );
        emit(out, &format!("{}_ci", f.file_stem()), &table);
    }
    // The replication ledger: reps spent and the worst relative half-width
    // reached, per point.
    let mut ledger = Table::new(
        "CI-width replication — replications per (protocol, lambda) point",
        &["protocol", "lambda", "reps", "converged", "worst-rel-half-width"],
    )
    .float_precision(4);
    for (c, rep) in cells.iter().zip(&reps) {
        ledger.push_row(vec![
            Cell::Str(c.protocol.label().into()),
            Cell::Float(c.lambda),
            Cell::Int(rep.reps as i64),
            Cell::Str(if rep.converged { "yes" } else { "cap" }.into()),
            Cell::Float(rep.worst_rel_half_width),
        ]);
    }
    emit(out, "figures_ci_reps", &ledger);
}
