//! The `trace` subcommand — run one scenario with the deterministic trace
//! layer attached and dump what it saw (A14).
//!
//! Three canned scenarios exercise different slices of the event schema:
//!
//! * **paper** — the Figure-5 cell: HELP/PLEDGE protocol chatter, admissions,
//!   migrations,
//! * **lossy** — the same cell over a 5 % loss channel: adds channel
//!   loss/duplication and stale-pledge traffic,
//! * **failover** — the A13 proactive-defence cell: adds warnings,
//!   evacuations, kills, detector transitions and recovery.
//!
//! The run happens **twice**, once plain and once traced, and the two
//! [`SimResult`]s are asserted identical — tracing is observational by
//! construction and this command re-proves it on every invocation. The
//! traced run's registry is then reconciled counter-by-counter against the
//! `SimResult` ledger; any mismatch is a hard failure (exit 1). Artifacts:
//!
//! * `results/trace_<scenario>.jsonl` — the buffered events, one JSON
//!   object per line (validated line-by-line before writing),
//! * a text timeline summary on stdout: per-kind event counts, the
//!   noisiest nodes, and the full Algorithm-H interval-adaptation history.

use crate::output::OutDir;
use realtor_core::ProtocolKind;
use realtor_net::LinkQuality;
use realtor_sim::{run_scenario, run_scenario_traced, RecoveryConfig, Scenario, SimResult};
use realtor_simcore::pool;
use realtor_simcore::trace::{validate_json_line, TraceKind, TraceSnapshot, TraceValue, Tracer};
use std::collections::BTreeMap;

/// How many events the trace ring buffers before evicting the oldest.
const RING_CAPACITY: usize = 200_000;

/// How many of the noisiest nodes the timeline summary lists.
const TOP_N: usize = 5;

/// Build the scenario named on the command line.
fn build_scenario(name: &str, lambda: f64, horizon: u64, seed: u64) -> Scenario {
    match name {
        "paper" => Scenario::paper(ProtocolKind::Realtor, lambda, horizon, seed),
        "lossy" => Scenario::paper(ProtocolKind::Realtor, lambda, horizon, seed)
            .with_channel(LinkQuality::lossy(0.05)),
        "failover" => {
            crate::failover::failover_scenario(lambda, horizon, seed, 6, RecoveryConfig::proactive())
        }
        other => {
            eprintln!("error: {}", crate::cli::validate_trace_scenario(other).unwrap_err());
            std::process::exit(2);
        }
    }
}

/// Registry-vs-ledger reconciliation: every global counter the world bumps
/// must equal the `SimResult` field it shadows. Returns the mismatches.
fn reconcile(snap: &TraceSnapshot, r: &SimResult) -> Vec<String> {
    let pairs: [(&str, u64); 17] = [
        ("offered", r.offered),
        ("admitted_local", r.admitted_local),
        ("admitted_migrated", r.admitted_migrated),
        ("rejected", r.rejected),
        ("lost_to_attacks", r.lost_to_attacks),
        ("migration_attempts", r.migration_attempts),
        ("migration_successes", r.migration_successes),
        ("tasks_interrupted", r.tasks_interrupted),
        ("tasks_recovered", r.tasks_recovered),
        ("tasks_destroyed", r.tasks_destroyed),
        ("recovery_attempts", r.recovery_attempts),
        ("evacuation_attempts", r.evacuation_attempts),
        ("evacuation_successes", r.evacuation_successes),
        ("detections", r.detections),
        ("false_suspicions", r.false_suspicions),
        ("channel_lost", r.ledger.lost_count),
        ("channel_duplicated", r.ledger.duplicated_count),
    ];
    let mut bad = Vec::new();
    for (name, want) in pairs {
        let got = snap.registry.counter(name);
        if got != want {
            bad.push(format!("counter {name}: registry {got} != result {want}"));
        }
    }
    // Message counters shadow the cost ledger's per-class message counts.
    let msgs: [(&str, u64); 4] = [
        ("msg_help", r.ledger.help_count),
        ("msg_pledge", r.ledger.pledge_count),
        ("msg_push", r.ledger.push_count),
        ("msg_migration", r.ledger.migration_count),
    ];
    for (name, want) in msgs {
        let got = snap.registry.counter(name);
        if got != want {
            bad.push(format!("counter {name}: registry {got} != ledger {want}"));
        }
    }
    // Per-node counters shadow the per-node stats.
    for (node, stat) in r.node_stats.iter().enumerate() {
        let got = snap.registry.node_counter("offered", node);
        if got != stat.offered {
            bad.push(format!(
                "node {node} offered: registry {got} != result {}",
                stat.offered
            ));
        }
        let got = snap.registry.node_counter("admitted_here", node);
        if got != stat.admitted_here {
            bad.push(format!(
                "node {node} admitted_here: registry {got} != result {}",
                stat.admitted_here
            ));
        }
    }
    bad
}

/// Print the text timeline summary of a snapshot.
fn summarize(snap: &TraceSnapshot) {
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut by_node: BTreeMap<usize, u64> = BTreeMap::new();
    for e in &snap.events {
        *by_kind.entry(e.kind.as_str()).or_default() += 1;
        if let Some(n) = e.node {
            *by_node.entry(n).or_default() += 1;
        }
    }
    println!("## Trace summary");
    println!();
    println!(
        "{} events recorded, {} buffered, {} evicted from the ring, {} filtered",
        snap.recorded,
        snap.events.len(),
        snap.dropped,
        snap.filtered
    );
    println!();
    println!("events by kind:");
    for (kind, n) in &by_kind {
        println!("  {kind:<22} {n}");
    }
    let mut noisiest: Vec<(usize, u64)> = by_node.into_iter().collect();
    noisiest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!();
    println!("noisiest nodes (top {TOP_N}):");
    for &(node, n) in noisiest.iter().take(TOP_N) {
        println!("  node {node:<3} {n} events");
    }
    // Algorithm-H adaptation history: every interval change in the buffer.
    let adapts: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.kind == TraceKind::IntervalAdapt)
        .collect();
    println!();
    println!("interval adaptations buffered: {}", adapts.len());
    for e in adapts.iter().take(20) {
        let get = |key: &str| {
            e.fields.iter().find_map(|(k, v)| match v {
                TraceValue::F64(x) if *k == key => Some(*x),
                _ => None,
            })
        };
        let cause = e
            .fields
            .iter()
            .find_map(|(k, v)| match v {
                TraceValue::Str(s) if *k == "cause" => Some(*s),
                _ => None,
            })
            .unwrap_or("?");
        println!(
            "  t={:.1}s node {:?}: {:.2}s -> {:.2}s ({cause})",
            e.t.as_secs_f64(),
            e.node,
            get("old_secs").unwrap_or(f64::NAN),
            get("new_secs").unwrap_or(f64::NAN),
        );
    }
    if adapts.len() > 20 {
        println!("  ... and {} more", adapts.len() - 20);
    }
}

/// Run the trace experiment: traced run, parity check, JSONL export,
/// reconciliation, timeline summary. Exits nonzero on any violation.
pub fn run(scenario_name: &str, lambda: f64, horizon: u64, seed: u64, jobs: usize, out: &OutDir) {
    eprintln!(
        "trace: scenario {scenario_name}, lambda {lambda}, horizon {horizon}s, seed {seed}, \
         ring capacity {RING_CAPACITY}, jobs {jobs}"
    );
    let scenario = build_scenario(scenario_name, lambda, horizon, seed);

    // The traced and plain runs are independent hermetic worlds, so with
    // `--jobs 2` the parity pair runs concurrently on the runner's pool.
    let tracer = Tracer::bounded(RING_CAPACITY);
    let mut runs = pool::run_ordered(jobs.min(2), &[true, false], |&with_trace| {
        if with_trace {
            run_scenario_traced(&scenario, tracer.clone())
        } else {
            run_scenario(&scenario)
        }
    });
    let plain = runs.pop().expect("plain run present");
    let traced = runs.pop().expect("traced run present");

    // Tracing must be observational: the plain run is bit-identical.
    if plain != traced {
        eprintln!("FAIL: tracing perturbed the simulation (SimResult differs)");
        std::process::exit(1);
    }

    let snap = tracer.snapshot();
    if snap.recorded == 0 {
        eprintln!("FAIL: traced run recorded no events");
        std::process::exit(1);
    }

    // Validate every line before writing the artifact.
    let jsonl = tracer.export_jsonl();
    for (i, line) in jsonl.lines().enumerate() {
        if let Err(e) = validate_json_line(line) {
            eprintln!("FAIL: line {} of trace output is not valid JSON: {e}", i + 1);
            std::process::exit(1);
        }
    }
    if let Some(dir) = &out.0 {
        std::fs::create_dir_all(dir).expect("create results directory");
        let path = dir.join(format!("trace_{scenario_name}.jsonl"));
        std::fs::write(&path, &jsonl).expect("write trace jsonl");
        eprintln!("wrote {} ({} lines)", path.display(), jsonl.lines().count());
    }

    let mismatches = reconcile(&snap, &traced);
    if !mismatches.is_empty() {
        eprintln!("FAIL: trace registry does not reconcile with SimResult:");
        for m in &mismatches {
            eprintln!("  {m}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "reconciled: registry matches SimResult ({} offered, {} messages, {} channel losses)",
        traced.offered,
        traced.ledger.total_count(),
        traced.ledger.lost_count
    );

    summarize(&snap);
}
