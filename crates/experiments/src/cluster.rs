//! The `cluster` subcommand (A18) — survivability of the live thread-per-host
//! runtime under kill-during-load waves.
//!
//! A closed-loop client fleet drives an N-host cluster: each client submits a
//! task (seeded exponential size, uniform host choice), waits for the
//! admission outcome, thinks for a seeded exponential delay, and repeats
//! until the horizon. Mid-load, a crash-style fault wave — compiled from the
//! same [`AttackScenario`] scripts the simulator uses — kills a fraction of
//! the host threads outright; the supervisor must detect the deaths, recover
//! the interrupted work through bounded-retry re-admission, and restart the
//! hosts amnesiac.
//!
//! Reported: sustained admitted tasks/sec, admission latency quantiles
//! (p50/p90/p99/p999 wall clock, from a mergeable [`LogHistogram`] — the
//! A19 observability layer), time-to-recovery (first post-kill instant at
//! which the cumulative admission rate regains 90% of the pre-kill
//! baseline), per-host mailbox high-water depth (so shed-on-full events are
//! attributable to observed backlog), and the full survivability ledger,
//! which must satisfy `interrupted == recovered + destroyed` on every run.
//! Events and per-host counters flow through the A14 trace schema; the
//! buffered events are exported to `results/cluster_run.jsonl` (validated
//! line by line), and a Prometheus-text metrics snapshot of the live
//! cluster is exported periodically to `results/cluster_metrics.prom`
//! while the run is in flight.
//!
//! The client schedule and the fault plan are seed-deterministic; measured
//! latencies and rates are genuine wall-clock observations of a concurrent
//! runtime and therefore vary between runs (unlike the simulator figures,
//! which are bit-exact).

use crate::output::{emit, OutDir};
use realtor_agile::fault::run_faults;
use realtor_agile::{
    Cluster, ClusterConfig, ClusterReport, FaultPlan, FaultStyle, SubmitOutcome,
};
use realtor_simcore::stats::LogHistogram;
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::trace::{validate_json_line, Tracer};
use realtor_simcore::{SimDuration, SimRng, SimTime};
use realtor_workload::attack::AttackScenario;
use std::time::{Duration, Instant};

/// Mean task size (simulated seconds) — the paper's workload.
const MEAN_SIZE_SECS: f64 = 5.0;

/// Windowed-admission window width (simulated seconds).
const WINDOW_SECS: f64 = 10.0;

/// Trace ring capacity for the run.
const RING_CAPACITY: usize = 100_000;

/// One client observation: submit instant (simulated seconds), outcome, and
/// the wall-clock admission latency.
struct Sample {
    at_secs: f64,
    outcome: SubmitOutcome,
    latency: Duration,
}

/// The closed loop of one client: submit, await the outcome, think, repeat.
fn client_loop(cluster: &Cluster, hosts: usize, think_mean: f64, id: u64, seed: u64, end: SimTime) -> Vec<Sample> {
    let mut rng = SimRng::indexed_stream(seed, "cluster-client", id);
    let clock = cluster.clock();
    let mut samples = Vec::new();
    loop {
        let now = clock.now();
        if now >= end {
            return samples;
        }
        let host = rng.index(hosts);
        let size = rng.exp(MEAN_SIZE_SECS).clamp(0.5, 25.0);
        let begun = Instant::now();
        let outcome = cluster.submit_sync(host, size, Duration::from_secs(2));
        samples.push(Sample {
            at_secs: now.as_secs_f64(),
            outcome,
            latency: begun.elapsed(),
        });
        let think = rng.exp(think_mean).max(0.01);
        clock.sleep_until(clock.now() + SimDuration::from_secs_f64(think));
    }
}

/// Derived survivability metrics of one run.
struct Metrics {
    sustained_per_sec: f64,
    baseline_per_sec: f64,
    /// Client-observed admission latency (nanoseconds), log-bucketed.
    latency_hist: LogHistogram,
    /// Exact sort-based p99 at the histogram's rank convention
    /// (`⌈0.99·n⌉`), kept so the smoke run can bound the histogram's
    /// quantile error against ground truth.
    exact_p99: Duration,
    time_to_recovery_secs: Option<f64>,
}

impl Metrics {
    /// A latency quantile in milliseconds, from the histogram.
    fn latency_ms(&self, q: f64) -> f64 {
        self.latency_hist.quantile(q) as f64 / 1e6
    }
}

/// Compute the headline metrics from the client observations.
///
/// Baseline: admitted tasks/sec over the pre-kill windows (the first window
/// is warm-up and excluded). Time-to-recovery: the first window boundary
/// after the kill at which the *cumulative* post-kill admission rate is back
/// within 10% of that baseline — cumulative, not windowed, so one noisy
/// Poisson window cannot fake a recovery.
fn derive_metrics(samples: &[Sample], horizon_secs: u64, kill_at_secs: f64) -> Metrics {
    let admitted: Vec<&Sample> = samples
        .iter()
        .filter(|s| {
            matches!(
                s.outcome,
                SubmitOutcome::AdmittedLocal | SubmitOutcome::AdmittedMigrated
            )
        })
        .collect();
    let sustained_per_sec = admitted.len() as f64 / horizon_secs as f64;
    let mut latency_hist = LogHistogram::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(admitted.len());
    for s in &admitted {
        let ns = s.latency.as_nanos().min(u64::MAX as u128) as u64;
        latency_hist.record(ns);
        latencies.push(ns);
    }
    latencies.sort_unstable();
    // Same rank convention as LogHistogram::quantile: ⌈q·n⌉, 1-based.
    let exact_p99 = if latencies.is_empty() {
        Duration::ZERO
    } else {
        let rank = ((0.99 * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        Duration::from_nanos(latencies[rank - 1])
    };
    let baseline_span = kill_at_secs - WINDOW_SECS;
    let baseline_count = admitted
        .iter()
        .filter(|s| s.at_secs >= WINDOW_SECS && s.at_secs < kill_at_secs)
        .count();
    let baseline_per_sec = if baseline_span > 0.0 {
        baseline_count as f64 / baseline_span
    } else {
        0.0
    };
    let mut time_to_recovery_secs = None;
    if baseline_per_sec > 0.0 {
        let mut boundary = kill_at_secs + WINDOW_SECS;
        while boundary <= horizon_secs as f64 {
            let recovered = admitted
                .iter()
                .filter(|s| s.at_secs >= kill_at_secs && s.at_secs < boundary)
                .count();
            if recovered as f64 / (boundary - kill_at_secs) >= 0.9 * baseline_per_sec {
                time_to_recovery_secs = Some(boundary - kill_at_secs);
                break;
            }
            boundary += WINDOW_SECS;
        }
    }
    Metrics {
        sustained_per_sec,
        baseline_per_sec,
        latency_hist,
        exact_p99,
        time_to_recovery_secs,
    }
}

/// Outcome of one full cluster run, for the caller's assertions.
pub struct ClusterRunOutcome {
    pub report: ClusterReport,
    pub metrics_recovered: bool,
    pub restarts: u64,
    /// Histogram p99 admission latency (ms) — what the summary reports.
    pub p99_hist_ms: f64,
    /// Exact sort-based p99 (ms) at the same rank, for error-bound checks.
    pub p99_exact_ms: f64,
    /// Prometheus snapshots exported while the run was in flight.
    pub prom_exports: u64,
}

/// Drive one closed-loop run: `clients` clients against `hosts` hosts for
/// `horizon_secs` simulated seconds at clock scale `scale`, with a
/// crash-style kill wave of `kill_count` hosts at 40% of the horizon.
#[allow(clippy::too_many_arguments)]
fn drive(
    hosts: usize,
    clients: usize,
    horizon_secs: u64,
    seed: u64,
    scale: f64,
    kill_count: usize,
    out: &OutDir,
) -> ClusterRunOutcome {
    let kill_at = SimTime::from_secs(horizon_secs * 2 / 5);
    let restore_at = SimTime::from_secs(horizon_secs * 7 / 10);
    eprintln!(
        "cluster (A18): {hosts} hosts x {clients} clients, horizon {horizon_secs}s, \
         clock scale {scale}x, crash {kill_count} @ {}s, seed {seed}",
        kill_at.as_secs_f64()
    );
    let tracer = Tracer::bounded(RING_CAPACITY);
    let cluster = Cluster::start_with(
        &ClusterConfig {
            hosts,
            time_scale: scale,
            seed,
            ..Default::default()
        },
        tracer.clone(),
    );
    let scenario = AttackScenario::strike_and_recover(kill_at, restore_at, kill_count);
    let plan = FaultPlan::from_attack(&scenario, hosts, seed);
    // Offered load ~0.8 of aggregate capacity: every client cycles through
    // think(mean) + submit, so think = clients * mean_size / (0.8 * hosts).
    let think_mean = clients as f64 * MEAN_SIZE_SECS / (0.8 * hosts as f64);
    let end = SimTime::from_secs(horizon_secs);
    let prom_path = out.0.as_ref().map(|dir| {
        std::fs::create_dir_all(dir).expect("create results directory");
        dir.join("cluster_metrics.prom")
    });
    let (samples, prom_exports): (Vec<Sample>, u64) = std::thread::scope(|s| {
        let fault = s.spawn(|| run_faults(&cluster, &plan, FaultStyle::Crash));
        // Live exposition (A19): scrape the cluster every half window and
        // publish the snapshot in Prometheus text format, like a /metrics
        // endpoint would.
        let sampler = s.spawn(|| {
            let Some(path) = &prom_path else { return 0u64 };
            let clock = cluster.clock();
            let period = SimDuration::from_secs_f64(WINDOW_SECS / 2.0);
            let mut exported = 0u64;
            while clock.now() < end {
                clock.sleep_until((clock.now() + period).min(end));
                let text = cluster.metrics_snapshot().to_prometheus_text();
                std::fs::write(path, text).expect("write cluster metrics snapshot");
                exported += 1;
            }
            exported
        });
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let cluster = &cluster;
                s.spawn(move || client_loop(cluster, hosts, think_mean, i as u64, seed, end))
            })
            .collect();
        fault.join().expect("fault thread");
        let samples = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        (samples, sampler.join().expect("sampler thread"))
    });
    assert!(
        cluster.quiesce(Duration::from_millis(10), Duration::from_secs(30)),
        "cluster failed to quiesce after the run"
    );
    // Final snapshot after quiescence so the exported file reflects the
    // end state of the run.
    if let Some(path) = &prom_path {
        let text = cluster.metrics_snapshot().to_prometheus_text();
        std::fs::write(path, text).expect("write final cluster metrics snapshot");
        eprintln!(
            "wrote {} ({} in-flight exports)",
            path.display(),
            prom_exports
        );
    }
    let report = cluster.shutdown();
    report
        .validate()
        .expect("runtime ledger identities must hold");
    let metrics = derive_metrics(&samples, horizon_secs, kill_at.as_secs_f64());

    let mut summary = Table::new(
        "Cluster survivability (A18) — closed-loop clients vs crash-style kill wave \
         (supervised recovery, bounded-retry negotiation)",
        &["metric", "value"],
    )
    .float_precision(4);
    let ttr = metrics
        .time_to_recovery_secs
        .map(Cell::Float)
        .unwrap_or_else(|| Cell::Str("never".into()));
    for (metric, value) in [
        ("hosts", Cell::Int(hosts as i64)),
        ("clients", Cell::Int(clients as i64)),
        ("horizon-secs", Cell::Int(horizon_secs as i64)),
        ("kill-count", Cell::Int(kill_count as i64)),
        ("kill-at-secs", Cell::Float(kill_at.as_secs_f64())),
        ("offered", Cell::Int(report.offered as i64)),
        ("admitted", Cell::Int(report.admitted() as i64)),
        ("rejected", Cell::Int(report.rejected as i64)),
        ("lost-to-attacks", Cell::Int(report.lost_to_attacks as i64)),
        ("sustained-admitted-per-sec", Cell::Float(metrics.sustained_per_sec)),
        ("baseline-admitted-per-sec", Cell::Float(metrics.baseline_per_sec)),
        ("p50-admission-latency-ms", Cell::Float(metrics.latency_ms(0.5))),
        ("p90-admission-latency-ms", Cell::Float(metrics.latency_ms(0.9))),
        ("p99-admission-latency-ms", Cell::Float(metrics.latency_ms(0.99))),
        (
            "p999-admission-latency-ms",
            Cell::Float(metrics.latency_ms(0.999)),
        ),
        ("time-to-recovery-secs", ttr),
        ("interrupted", Cell::Int(report.interrupted as i64)),
        ("recovered", Cell::Int(report.recovered as i64)),
        ("destroyed", Cell::Int(report.destroyed as i64)),
        ("recovery-tries", Cell::Int(report.recovery_tries as i64)),
        ("restarts", Cell::Int(report.restarts as i64)),
        ("negotiation-retries", Cell::Int(report.negotiation_retries as i64)),
        (
            "negotiation-abandoned",
            Cell::Int(report.negotiation_abandoned as i64),
        ),
        ("shed-datagrams", Cell::Int(report.shed_datagrams as i64)),
        ("shed-admissions", Cell::Int(report.shed_admissions as i64)),
    ] {
        summary.push_row(vec![Cell::Str(metric.into()), value]);
    }
    emit(out, "cluster_survivability", &summary);

    // Per-host counters from the A14 registry + exit statuses.
    let snap = tracer.snapshot();
    let mut per_host = Table::new(
        "Cluster survivability (A18) — per-host counters (A14 registry)",
        &[
            "host",
            "admitted",
            "recovered-in",
            "interrupted",
            "kills",
            "restarts",
            "mailbox-high-water",
            "exit",
        ],
    );
    for e in &report.host_exits {
        per_host.push_row(vec![
            Cell::Int(e.host as i64),
            Cell::Int(snap.registry.node_counter("runtime_admitted", e.host) as i64),
            Cell::Int(snap.registry.node_counter("runtime_recovered_in", e.host) as i64),
            Cell::Int(snap.registry.node_counter("runtime_interrupted", e.host) as i64),
            Cell::Int(snap.registry.node_counter("node_kills", e.host) as i64),
            Cell::Int(e.restarts as i64),
            Cell::Int(report.mailbox_high_water[e.host] as i64),
            Cell::Str(format!("{:?}", e.status)),
        ]);
    }
    emit(out, "cluster_survivability_hosts", &per_host);

    // Export the buffered events, validated line by line.
    let jsonl = tracer.export_jsonl();
    for (i, line) in jsonl.lines().enumerate() {
        if let Err(e) = validate_json_line(line) {
            panic!("line {} of cluster trace is not valid JSON: {e}", i + 1);
        }
    }
    if let Some(dir) = &out.0 {
        std::fs::create_dir_all(dir).expect("create results directory");
        let path = dir.join("cluster_run.jsonl");
        std::fs::write(&path, &jsonl).expect("write cluster trace jsonl");
        eprintln!("wrote {} ({} lines)", path.display(), jsonl.lines().count());
    }
    eprintln!(
        "cluster run: {} admitted ({:.2}/s), p50/p99 {:.2}/{:.2} ms, {} interrupted = {} recovered + {} destroyed, {} restarts",
        report.admitted(),
        metrics.sustained_per_sec,
        metrics.latency_ms(0.5),
        metrics.latency_ms(0.99),
        report.interrupted,
        report.recovered,
        report.destroyed,
        report.restarts,
    );
    ClusterRunOutcome {
        restarts: report.restarts,
        metrics_recovered: metrics.time_to_recovery_secs.is_some(),
        p99_hist_ms: metrics.latency_ms(0.99),
        p99_exact_ms: metrics.exact_p99.as_secs_f64() * 1e3,
        prom_exports,
        report,
    }
}

/// The full run: paper-sized cluster (20 hosts), 24 clients, a crash wave of
/// 30% of the hosts.
pub fn run(hosts: usize, clients: usize, horizon_secs: u64, seed: u64, scale: f64, out: &OutDir) {
    let kill_count = (hosts * 3 / 10).max(1);
    drive(hosts, clients, horizon_secs, seed, scale, kill_count, out);
}

/// CI smoke: a small cluster, one crash wave of two hosts, hard assertions
/// on recovery, supervision, and the ledger identity. Panics (nonzero exit)
/// on violation.
pub fn smoke(seed: u64, out: &OutDir) {
    let outcome = drive(5, 6, 120, seed, 2_000.0, 2, out);
    assert!(
        outcome.restarts >= 2,
        "supervisor must restart both crashed hosts, saw {}",
        outcome.restarts
    );
    assert!(
        outcome.metrics_recovered,
        "admission rate never regained 90% of the pre-kill baseline"
    );
    // A19: the log-bucketed p99 must agree with the exact sort-based p99 at
    // the same rank within the documented one-sided bucket error bound.
    assert!(
        outcome.p99_hist_ms >= outcome.p99_exact_ms
            && outcome.p99_hist_ms <= outcome.p99_exact_ms * (1.0 + LogHistogram::RELATIVE_ERROR),
        "histogram p99 {:.4} ms outside error bound of exact p99 {:.4} ms",
        outcome.p99_hist_ms,
        outcome.p99_exact_ms
    );
    let r = &outcome.report;
    assert_eq!(
        r.interrupted,
        r.recovered + r.destroyed,
        "ledger identity broken"
    );
    eprintln!(
        "cluster smoke ok: {} restarts, {} interrupted, {} recovered, {} destroyed",
        r.restarts, r.interrupted, r.recovered, r.destroyed
    );
}
