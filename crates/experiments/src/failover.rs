//! Failure detection, evacuation and crash recovery — the `failover`
//! experiment (A13).
//!
//! The paper argues REALTOR provides *survivability*: applications keep
//! running as nodes come under attack. The base simulation only measures
//! that indirectly (admission probability dips and recovers); this
//! experiment measures survivability directly, comparing three defence
//! postures across kill intensities on the same warned strike:
//!
//! * **none** — queued work on killed nodes silently dies (the paper's
//!   implicit model),
//! * **reactive** — peers detect the death by timeout and re-home the
//!   victims' checkpointed tasks through normal REALTOR discovery,
//! * **proactive** — an attack warning additionally evacuates pending
//!   tasks off the victims before the strike lands.
//!
//! All three arms script the *same* warned strike with the same seed, so
//! the victims are identical and every difference is the defence. The
//! smoke mode (`--smoke true`, used by CI) shrinks the horizon, asserts
//! the headline recovery properties, and still emits the summary CSV.

use crate::output::{emit, OutDir};
use realtor_core::{FailureDetectorConfig, ProtocolConfig, ProtocolKind};
use realtor_net::TargetingStrategy;
use realtor_runner::{run_grid, RunOpts, SweepGrid};
use realtor_sim::{run_scenario, RecoveryConfig, Scenario, SimResult};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::{SimDuration, SimTime};
use realtor_workload::AttackScenario;

/// Kill intensities crossed with the defence arms (out of 25 nodes).
pub const KILL_COUNTS: [usize; 3] = [4, 8, 12];

/// Seconds between the attack warning and the strike landing.
const WARNING_LEAD_SECS: u64 = 10;

/// The three defence postures under comparison.
fn arms() -> [(&'static str, RecoveryConfig); 3] {
    [
        ("none", RecoveryConfig::default()),
        ("reactive", RecoveryConfig::reactive()),
        ("proactive", RecoveryConfig::proactive()),
    ]
}

/// Resolve a grid arm name back to its recovery posture.
fn arm_config(name: &str) -> RecoveryConfig {
    arms()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, cfg)| cfg)
        .unwrap_or_else(|| panic!("unknown defence arm: {name}"))
}

/// Detector sized well inside the strike-to-restore window: 4 s of silence
/// raises suspicion, 2 more confirm, swept every second.
fn detector() -> FailureDetectorConfig {
    FailureDetectorConfig {
        suspect_after: SimDuration::from_secs(4),
        confirm_after: SimDuration::from_secs(2),
        sweep_interval: SimDuration::from_secs(1),
    }
}

/// One failover cell: warned strike at 40 % of the horizon (warning
/// `WARNING_LEAD_SECS` earlier), full restore at 70 %, windowed stats.
/// Shared with the `trace` subcommand, which replays the same cell with
/// tracing attached, and with the `analyze` golden test, which pins the
/// causal analysis of its fixed-seed trace.
pub fn failover_scenario(
    lambda: f64,
    horizon_secs: u64,
    seed: u64,
    kills: usize,
    recovery: RecoveryConfig,
) -> Scenario {
    let strike_secs = horizon_secs * 2 / 5;
    assert!(strike_secs > WARNING_LEAD_SECS, "horizon too short to warn");
    let warn = SimTime::from_secs(strike_secs - WARNING_LEAD_SECS);
    let recover = SimTime::from_secs(horizon_secs * 7 / 10);
    let window = SimDuration::from_secs((horizon_secs / 20).max(1));
    let attack = AttackScenario::warned_strike_and_recover(
        warn,
        SimDuration::from_secs(WARNING_LEAD_SECS),
        recover,
        kills,
    );
    Scenario::paper(ProtocolKind::Realtor, lambda, horizon_secs, seed)
        .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector()))
        .with_attack(attack, TargetingStrategy::Random)
        .with_window(window)
        .with_recovery(recovery)
}

fn summary_table(rows: &[(&'static str, usize, SimResult)]) -> Table {
    let mut t = Table::new(
        "Failover — defence posture vs kill intensity (warned strike, same victims per seed)",
        &[
            "arm",
            "kills",
            "admission",
            "interrupted",
            "recovered",
            "destroyed",
            "recovered-frac",
            "work-destroyed",
            "work-recovered",
            "work-evacuated",
            "evac-attempts",
            "evac-successes",
            "detections",
            "mean-detect-latency",
        ],
    )
    .float_precision(4);
    for (arm, kills, r) in rows {
        t.push_row(vec![
            Cell::Str((*arm).into()),
            Cell::Int(*kills as i64),
            Cell::Float(r.admission_probability()),
            Cell::Int(r.tasks_interrupted as i64),
            Cell::Int(r.tasks_recovered as i64),
            Cell::Int(r.tasks_destroyed as i64),
            Cell::Float(r.recovered_fraction()),
            Cell::Float(r.work_destroyed),
            Cell::Float(r.work_recovered),
            Cell::Float(r.work_evacuated),
            Cell::Int(r.evacuation_attempts as i64),
            Cell::Int(r.evacuation_successes as i64),
            Cell::Int(r.detections as i64),
            Cell::Float(r.mean_detection_latency()),
        ]);
    }
    t
}

/// Run the failover experiment and emit its summary table.
pub fn run(lambda: f64, horizon_secs: u64, seed: u64, jobs: usize, out: &OutDir) {
    eprintln!(
        "failover: arms none/reactive/proactive x kills {KILL_COUNTS:?}, lambda {lambda}, \
         warned strike at 40% of {horizon_secs}s (lead {WARNING_LEAD_SECS}s), restore at 70%, \
         jobs {jobs}"
    );
    // Grid order (arm slowest, kills fastest) matches the table's rows.
    let grid = SweepGrid::new(seed)
        .with_arms(arms().iter().map(|&(name, _)| name))
        .with_kills(&KILL_COUNTS)
        .with_lambdas(&[lambda]);
    let results = run_grid(&grid, &RunOpts::jobs(jobs), |cell| {
        run_scenario(&failover_scenario(
            cell.lambda,
            horizon_secs,
            cell.seed,
            cell.kills,
            arm_config(&cell.arm),
        ))
    });
    let rows: Vec<(&'static str, usize, SimResult)> = grid
        .cells()
        .iter()
        .zip(results)
        .map(|(cell, r)| {
            let name = arms()
                .iter()
                .find(|(n, _)| *n == cell.arm)
                .map(|&(n, _)| n)
                .expect("arm name is static");
            (name, cell.kills, r)
        })
        .collect();
    emit(out, "failover_summary", &summary_table(&rows));
}

/// CI smoke: assert the headline recovery properties on a short horizon
/// and still emit the summary CSV. Panics (nonzero exit) on any violation.
pub fn smoke(seed: u64, out: &OutDir) {
    let horizon = 800;
    let kills = 6;
    let lambda = 6.0;
    eprintln!("failover smoke: horizon {horizon}s, {kills} kills, lambda {lambda}, seed {seed}");

    let cell = |cfg| run_scenario(&failover_scenario(lambda, horizon, seed, kills, cfg));
    let none = cell(RecoveryConfig::default());
    let reactive = cell(RecoveryConfig::reactive());
    let proactive = cell(RecoveryConfig::proactive());

    // No defence: interrupted work dies silently, with no task ledger.
    assert!(none.work_destroyed > 0.0, "the strike must destroy work");
    assert_eq!(none.tasks_recovered, 0);
    assert_eq!(none.tasks_interrupted, 0, "no task identity without recovery");

    // Reactive: detection happens and some checkpoints find new homes.
    assert!(reactive.tasks_interrupted > 0, "strike must interrupt tasks");
    assert!(reactive.tasks_recovered > 0, "recovery must re-home some tasks");
    assert!(reactive.detections >= 1, "the detector must confirm the outage");
    let latency = reactive.mean_detection_latency();
    assert!(
        latency > 0.0 && latency <= 10.0,
        "detection latency {latency} outside the detector's windows"
    );

    // Proactive: the warning is acted on and beats the strike for some work.
    assert!(proactive.evacuation_attempts > 0, "warning must trigger evacuation");
    assert!(proactive.evacuation_successes > 0, "some evacuations must land");
    assert!(proactive.work_evacuated > 0.0);

    // Determinism: the same seed reproduces every arm bit-for-bit.
    assert!(
        cell(RecoveryConfig::reactive()) == reactive
            && cell(RecoveryConfig::proactive()) == proactive,
        "failover runs must be deterministic"
    );

    let rows = vec![
        ("none", kills, none),
        ("reactive", kills, reactive),
        ("proactive", kills, proactive),
    ];
    emit(out, "failover_summary", &summary_table(&rows));
    let r = &rows[1].2;
    eprintln!(
        "failover smoke ok: {} interrupted, {} recovered ({:.1}%), detection {:.2}s, \
         {} evacuations landed",
        r.tasks_interrupted,
        r.tasks_recovered,
        100.0 * r.recovered_fraction(),
        r.mean_detection_latency(),
        rows[2].2.evacuation_successes
    );
}
