//! Ablations A1/A2 — sensitivity of REALTOR to the Algorithm H parameters
//! (`alpha`, `beta`, `Upper_limit`) and to the H/P thresholds.

use crate::output::{emit, OutDir};
use realtor_core::{ProtocolConfig, ProtocolKind};
use realtor_sim::sweep::run_parallel;
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::table::{Cell, Table};
use realtor_simcore::SimDuration;

/// A1: sweep `alpha` × `beta` (and a small `Upper_limit` set) at a fixed
/// overload point and report admission probability and cost per admitted
/// task.
pub fn run_algorithm_h(lambda: f64, horizon_secs: u64, seed: u64, out: &OutDir) {
    let alphas = [0.1, 0.25, 0.5, 1.0, 2.0];
    let betas = [0.1, 0.25, 0.5, 0.75];
    let uppers = [10u64, 100, 1000];
    let mut jobs = Vec::new();
    for &upper in &uppers {
        for &alpha in &alphas {
            for &beta in &betas {
                jobs.push((upper, alpha, beta));
            }
        }
    }
    eprintln!("ablation A1 (Algorithm H): {} points at lambda={lambda}", jobs.len());
    let results = run_parallel(&jobs, |&(upper, alpha, beta)| {
        let cfg = ProtocolConfig::paper()
            .with_alpha(alpha)
            .with_beta(beta)
            .with_upper_limit(SimDuration::from_secs(upper));
        let scenario = Scenario::paper(ProtocolKind::Realtor, lambda, horizon_secs, seed)
            .with_protocol_config(cfg);
        run_scenario(&scenario)
    });
    let mut table = Table::new(
        format!("Ablation A1 — Algorithm H parameters (REALTOR, lambda={lambda})"),
        &[
            "upper_limit",
            "alpha",
            "beta",
            "admission-probability",
            "cost-per-admitted-task",
            "help-floods",
        ],
    )
    .float_precision(4);
    for ((upper, alpha, beta), r) in jobs.into_iter().zip(results) {
        table.push_row(vec![
            Cell::Int(upper as i64),
            Cell::Float(alpha),
            Cell::Float(beta),
            Cell::Float(r.admission_probability()),
            Cell::Float(r.cost_per_admitted_task()),
            Cell::Int(r.ledger.help_count as i64),
        ]);
    }
    emit(out, "ablation_a1_algorithm_h", &table);
}

/// A2: sweep the H/P occupancy thresholds for every protocol that uses them.
pub fn run_thresholds(lambda: f64, horizon_secs: u64, seed: u64, out: &OutDir) {
    let thresholds = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95];
    let protocols = [
        ProtocolKind::Realtor,
        ProtocolKind::AdaptivePull,
        ProtocolKind::AdaptivePush,
        ProtocolKind::PurePull,
    ];
    let mut jobs = Vec::new();
    for &p in &protocols {
        for &th in &thresholds {
            jobs.push((p, th));
        }
    }
    eprintln!("ablation A2 (thresholds): {} points at lambda={lambda}", jobs.len());
    let results = run_parallel(&jobs, |&(p, th)| {
        let cfg = ProtocolConfig::paper()
            .with_help_threshold(th)
            .with_pledge_threshold(th);
        let scenario =
            Scenario::paper(p, lambda, horizon_secs, seed).with_protocol_config(cfg);
        run_scenario(&scenario)
    });
    let mut table = Table::new(
        format!("Ablation A2 — H/P threshold sensitivity (lambda={lambda})"),
        &[
            "protocol",
            "threshold",
            "admission-probability",
            "cost-per-admitted-task",
            "migration-rate",
        ],
    )
    .float_precision(4);
    for ((p, th), r) in jobs.into_iter().zip(results) {
        table.push_row(vec![
            p.label().into(),
            Cell::Float(th),
            Cell::Float(r.admission_probability()),
            Cell::Float(r.cost_per_admitted_task()),
            Cell::Float(r.migration_rate()),
        ]);
    }
    emit(out, "ablation_a2_thresholds", &table);
}
