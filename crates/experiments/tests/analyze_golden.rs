//! A19 acceptance: `experiments analyze` on the fixed-seed failover trace.
//!
//! One traced failover run (the same cell the `trace` subcommand replays)
//! is analyzed in-process. The causal requirements are asserted directly —
//! complete lineage for every admitted and recovered task, zero orphan span
//! references, and a recovery critical path whose segments sum exactly to
//! the observed time-to-recovery — and the rendered report is pinned
//! against a committed golden file (the DES is deterministic, so the
//! analysis text is bit-stable).
//!
//! Regenerate the golden after an intentional format change with:
//! `ANALYZE_BLESS=1 cargo test -p experiments --test analyze_golden`.

use experiments::analyze::analyze_str;
use experiments::failover::failover_scenario;
use realtor_sim::{run_scenario_traced, RecoveryConfig};
use realtor_simcore::time::TICKS_PER_SEC;
use realtor_simcore::trace::Tracer;

const GOLDEN_PATH: &str = "tests/golden/analyze_failover.txt";

#[test]
fn analyze_reconstructs_failover_lineage_and_matches_golden() {
    let scenario = failover_scenario(6.0, 300, 42, 6, RecoveryConfig::proactive());
    let tracer = Tracer::bounded(200_000);
    let _ = run_scenario_traced(&scenario, tracer.clone());
    let snap = tracer.snapshot();
    assert_eq!(snap.dropped, 0, "ring eviction would break lineage");
    let jsonl = tracer.export_jsonl();

    let a = analyze_str(&jsonl).expect("failover trace must parse");

    // Complete causal lineage for every admitted and every recovered task.
    assert!(a.admitted > 0 && a.recovered > 0, "scenario must exercise recovery");
    assert_eq!(a.orphan_refs, 0, "no orphan span references");
    assert_eq!(
        a.admitted_complete, a.admitted,
        "every admitted task must have a complete lineage"
    );
    assert_eq!(
        a.recovered_complete, a.recovered,
        "every recovered task must have a complete lineage"
    );

    // The critical path telescopes: its segment durations sum to the
    // time-to-recovery (last task_recover - first node_kill) exactly, i.e.
    // well within one event timestamp.
    assert!(!a.critical_path.is_empty(), "kill wave must yield a critical path");
    let total_ticks: u64 = a
        .critical_path
        .iter()
        .map(|s| s.to_ticks - s.from_ticks)
        .sum();
    let ttr = a.time_to_recovery_secs.expect("recovery observed");
    let diff = (total_ticks as f64 / TICKS_PER_SEC as f64 - ttr).abs();
    assert!(
        diff * TICKS_PER_SEC as f64 <= 1.0,
        "critical path ({} ticks) must sum to time-to-recovery ({ttr}s)",
        total_ticks
    );

    // Golden pin of the rendered report.
    if std::env::var_os("ANALYZE_BLESS").is_some() {
        std::fs::create_dir_all("tests/golden").expect("create golden dir");
        std::fs::write(GOLDEN_PATH, &a.text).expect("write golden");
        eprintln!("blessed {GOLDEN_PATH}");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; run with ANALYZE_BLESS=1 to create it");
    assert_eq!(
        a.text, want,
        "analyze output drifted from {GOLDEN_PATH}; if intentional, re-bless"
    );
}
