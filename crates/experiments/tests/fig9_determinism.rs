//! With faults disabled and load light enough that every task is admitted
//! at its arrival host, the Figure-9 cluster measurement is deterministic:
//! two consecutive renders of the same sweep produce byte-identical CSV.
//!
//! λ = 0.05 over 20 hosts is ~0.25% of aggregate capacity, so no queue can
//! ever overflow, no migration is attempted, and the measured admission
//! probability is exactly 1 — the outcome cannot depend on thread timing.

use experiments::fig9;

#[test]
fn fig9_light_load_renders_byte_identical() {
    let lambdas = [0.05];
    let first = fig9::render(&lambdas, 30, 7, 4_000.0);
    let second = fig9::render(&lambdas, 30, 7, 4_000.0);
    assert_eq!(
        first.to_csv(),
        second.to_csv(),
        "fig9 output must be byte-identical across consecutive zero-fault runs"
    );
    // Under this load every offered task is provably admitted locally.
    assert!(
        first.to_csv().contains("1.0000"),
        "light load must measure admission probability 1.0:\n{}",
        first.to_csv()
    );
}
