//! End-to-end thread-count invariance of the grid-ported experiment
//! drivers: running the same driver at `--jobs 1`, `2` and `8` must write
//! byte-identical CSV artifacts. This is the CLI-level counterpart of
//! `realtor-runner`'s property tests — it exercises the actual drivers
//! (attack, balance, deadlines, churn) through their public entry points.

use experiments::output::OutDir;
use experiments::{attack, balance, churn, deadlines};
use std::fs;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "realtor_jobs_invariance_{}_{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Run `drive` once per job count into separate directories and assert the
/// named CSVs are byte-identical across all of them.
fn assert_invariant(tag: &str, stems: &[&str], drive: impl Fn(usize, &OutDir)) {
    let dirs: Vec<(usize, PathBuf)> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| {
            let dir = scratch(&format!("{tag}_j{jobs}"));
            drive(jobs, &OutDir(Some(dir.clone())));
            (jobs, dir)
        })
        .collect();
    let (_, serial_dir) = &dirs[0];
    for stem in stems {
        let serial = fs::read(serial_dir.join(format!("{stem}.csv")))
            .unwrap_or_else(|e| panic!("{tag}: missing {stem}.csv from jobs=1: {e}"));
        assert!(!serial.is_empty(), "{tag}: {stem}.csv is empty");
        for (jobs, dir) in &dirs[1..] {
            let par = fs::read(dir.join(format!("{stem}.csv")))
                .unwrap_or_else(|e| panic!("{tag}: missing {stem}.csv from jobs={jobs}: {e}"));
            assert_eq!(
                par, serial,
                "{tag}: {stem}.csv differs between jobs=1 and jobs={jobs}"
            );
        }
    }
    for (_, dir) in dirs {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn attack_artifacts_are_jobs_invariant() {
    assert_invariant(
        "attack",
        &["ablation_a4_attack_timeseries", "ablation_a4_attack_summary"],
        |jobs, out| attack::run(4.0, 300, 42, 0.3, jobs, out),
    );
}

#[test]
fn balance_artifacts_are_jobs_invariant() {
    assert_invariant("balance", &["ablation_a8_balance"], |jobs, out| {
        balance::run(&[5.0, 8.0], 200, 42, jobs, out)
    });
}

#[test]
fn deadlines_artifacts_are_jobs_invariant() {
    assert_invariant("deadlines", &["ablation_a11_deadlines"], |jobs, out| {
        deadlines::run(300, 42, 5, jobs, out)
    });
}

#[test]
fn churn_artifacts_are_jobs_invariant() {
    assert_invariant("churn", &["churn_summary"], |jobs, out| {
        churn::run(6.0, 400, 42, jobs, out)
    });
}
