//! Figure 5 — admission probability vs arrival rate.
//!
//! Prints the (bench-scale) reproduced series, then benchmarks one
//! simulation run per protocol at the paper's saturation point.

use realtor_bench::{bench_scenario, print_series, Runner};
use realtor_core::ProtocolKind;
use realtor_sim::{run_scenario, FigureMetric};

fn main() {
    print_series(FigureMetric::AdmissionProbability, "Figure 5 (bench scale) — admission probability");
    let mut runner = Runner::from_env();
    {
        let mut group = runner.group("fig5_admission");
        group.sample_size(10);
        for kind in ProtocolKind::ALL {
            group.bench_function(kind.label(), || {
                run_scenario(&bench_scenario(kind, 6.0)).admission_probability()
            });
        }
        group.finish();
    }
    runner.finish();
}
