//! Figure 6 — total message cost vs arrival rate.
//!
//! Prints the (bench-scale) reproduced series, then benchmarks one
//! simulation run per protocol at the paper's saturation point.

use realtor_bench::{bench_scenario, print_series, Runner};
use realtor_core::ProtocolKind;
use realtor_sim::{run_scenario, FigureMetric};

fn main() {
    print_series(FigureMetric::TotalMessages, "Figure 6 (bench scale) — number of messages");
    let mut runner = Runner::from_env();
    {
        let mut group = runner.group("fig6_messages");
        group.sample_size(10);
        for kind in ProtocolKind::ALL {
            group.bench_function(kind.label(), || {
                run_scenario(&bench_scenario(kind, 6.0)).total_messages()
            });
        }
        group.finish();
    }
    runner.finish();
}
