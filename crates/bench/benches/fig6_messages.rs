//! Figure 6 — total message cost vs arrival rate.
//!
//! Prints the (bench-scale) reproduced series, then benchmarks one
//! simulation run per protocol at the paper's saturation point.

use criterion::{criterion_group, criterion_main, Criterion};
use realtor_bench::{bench_scenario, print_series};
use realtor_core::ProtocolKind;
use realtor_sim::{run_scenario, FigureMetric};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_series(FigureMetric::TotalMessages, "Figure 6 (bench scale) — number of messages");
    let mut group = c.benchmark_group("fig6_messages");
    group.sample_size(10);
    for kind in ProtocolKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let r = run_scenario(&bench_scenario(kind, 6.0));
                black_box(r.total_messages())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
