//! Micro-benchmarks of the hot kernels beneath the experiments: the event
//! queue, protocol message handling, routing computation and workload
//! sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use realtor_core::protocol::{Actions, DiscoveryProtocol, LocalView};
use realtor_core::{Message, Pledge, ProtocolConfig, Realtor};
use realtor_net::{Routing, Topology};
use realtor_simcore::{EventQueue, SimRng, SimTime};
use std::hint::black_box;

fn event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        let mut rng = SimRng::from_seed(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_ticks(rng.u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn protocol_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/protocol");
    group.bench_function("realtor_pledge_handling_1k", |b| {
        b.iter(|| {
            let mut r = Realtor::new(0, ProtocolConfig::paper());
            let mut out = Actions::new();
            let view = LocalView::new(5.0, 100.0);
            for i in 1..=1_000usize {
                let pledge = Message::Pledge(Pledge {
                    pledger: i % 25,
                    headroom_secs: (i % 100) as f64,
                    community_count: 1,
                    grant_probability: 0.5,
                });
                r.on_message(SimTime::from_ticks(i as u64), i % 25, &pledge, view, &mut out);
                out.drain().for_each(drop);
            }
            black_box(r.pick_candidate(SimTime::from_ticks(2_000), 5.0))
        })
    });
    group.finish();
}

fn routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/routing");
    for side in [5usize, 10, 20] {
        let topo = Topology::mesh(side, side);
        group.bench_function(format!("all_pairs_bfs_mesh_{side}x{side}"), |b| {
            b.iter(|| black_box(Routing::new(&topo).mean_path_length()))
        });
    }
    group.finish();
}

fn sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/rng");
    group.bench_function("exp_samples_100k", |b| {
        let mut rng = SimRng::from_seed(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.exp(5.0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, event_queue, protocol_step, routing, sampling);
criterion_main!(benches);
