//! Micro-benchmarks of the hot kernels beneath the experiments: the event
//! queue, protocol message handling, routing computation and workload
//! sampling.

use realtor_bench::Runner;
use realtor_core::protocol::{Actions, DiscoveryProtocol, LocalView};
use realtor_core::{Message, Pledge, ProtocolConfig, Realtor};
use realtor_net::{Routing, Topology};
use realtor_simcore::{EventQueue, SimRng, SimTime};

fn event_queue(runner: &mut Runner) {
    let mut group = runner.group("micro/event_queue");
    let mut rng = SimRng::from_seed(1);
    group.bench_function("schedule_pop_10k", || {
        let mut q = EventQueue::with_capacity(10_000);
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_ticks(rng.u64() % 1_000_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        sum
    });
    group.finish();
}

fn protocol_step(runner: &mut Runner) {
    let mut group = runner.group("micro/protocol");
    group.bench_function("realtor_pledge_handling_1k", || {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        let view = LocalView::new(5.0, 100.0);
        for i in 1..=1_000usize {
            let pledge = Message::Pledge(Pledge {
                pledger: i % 25,
                headroom_secs: (i % 100) as f64,
                community_count: 1,
                grant_probability: 0.5,
                sent_at: SimTime::from_ticks(i as u64),
            });
            r.on_message(SimTime::from_ticks(i as u64), i % 25, &pledge, view, &mut out);
            out.drain().for_each(drop);
        }
        r.pick_candidate(SimTime::from_ticks(2_000), 5.0)
    });
    group.finish();
}

fn routing(runner: &mut Runner) {
    let mut group = runner.group("micro/routing");
    for side in [5usize, 10, 20] {
        let topo = Topology::mesh(side, side);
        group.bench_function(format!("all_pairs_bfs_mesh_{side}x{side}"), || {
            Routing::new(&topo).mean_path_length()
        });
    }
    group.finish();
}

fn sampling(runner: &mut Runner) {
    let mut group = runner.group("micro/rng");
    let mut rng = SimRng::from_seed(7);
    group.bench_function("exp_samples_100k", || {
        let mut acc = 0.0;
        for _ in 0..100_000 {
            acc += rng.exp(5.0);
        }
        acc
    });
    group.finish();
}

fn main() {
    let mut runner = Runner::from_env();
    event_queue(&mut runner);
    protocol_step(&mut runner);
    routing(&mut runner);
    sampling(&mut runner);
    runner.finish();
}
