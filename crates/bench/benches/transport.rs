//! Micro-benchmarks of the Agile Objects runtime substrate: wire codec,
//! datagram fabric and reliable request channels.

use realtor_agile::codec::{decode_message, encode_message};
use realtor_agile::transport::{request_channel, Network};
use realtor_bench::Runner;
use realtor_core::{Help, Message, Pledge};
use realtor_simcore::SimTime;
use std::time::Duration;

fn codec(runner: &mut Runner) {
    let mut group = runner.group("transport/codec");
    let help = Message::Help(Help {
        organizer: 7,
        member_count: 24,
        urgency: 0.66,
        relay_ttl: 1,
    });
    let pledge = Message::Pledge(Pledge {
        pledger: 12,
        headroom_secs: 42.5,
        community_count: 3,
        grant_probability: 0.425,
        sent_at: SimTime::from_secs(12),
    });
    group.bench_function("encode_decode_help", || {
        let bytes = encode_message(&help);
        decode_message(&bytes).unwrap()
    });
    group.bench_function("encode_decode_pledge", || {
        let bytes = encode_message(&pledge);
        decode_message(&bytes).unwrap()
    });
    group.finish();
}

fn fabric(runner: &mut Runner) {
    let mut group = runner.group("transport/fabric");
    {
        let (_net, eps) = Network::new(2, 0.0, 1);
        let payload = encode_message(&Message::Pledge(Pledge {
            pledger: 0,
            headroom_secs: 1.0,
            community_count: 0,
            grant_probability: 0.01,
            sent_at: SimTime::ZERO,
        }));
        group.bench_function("unicast_round_trip", || {
            eps[0].send(1, payload.clone());
            eps[1].recv_timeout(Duration::from_millis(100)).unwrap()
        });
    }
    {
        let (_net, eps) = Network::new(20, 0.0, 1);
        let payload = encode_message(&Message::Help(Help {
            organizer: 0,
            member_count: 0,
            urgency: 1.0,
            relay_ttl: 0,
        }));
        group.bench_function("multicast_to_19", || {
            eps[0].multicast(0, payload.clone());
            for ep in &eps[1..] {
                ep.recv_timeout(Duration::from_millis(100)).unwrap();
            }
        });
    }
    {
        let (client, server) = request_channel::<u64, u64>();
        let handle = std::thread::spawn(move || {
            while server.serve_one(Duration::from_millis(200), |x| x + 1) {}
        });
        group.bench_function("request_reply", || {
            client.request(41, Duration::from_millis(100)).unwrap()
        });
        drop(client);
        let _ = handle.join();
    }
    group.finish();
}

fn main() {
    let mut runner = Runner::from_env();
    codec(&mut runner);
    fabric(&mut runner);
    runner.finish();
}
