//! Figure 7 — message cost per admitted task vs arrival rate.
//!
//! Prints the (bench-scale) reproduced series, then benchmarks one
//! simulation run per protocol at the paper's saturation point.

use criterion::{criterion_group, criterion_main, Criterion};
use realtor_bench::{bench_scenario, print_series};
use realtor_core::ProtocolKind;
use realtor_sim::{run_scenario, FigureMetric};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_series(FigureMetric::CostPerAdmittedTask, "Figure 7 (bench scale) — message cost per admitted task");
    let mut group = c.benchmark_group("fig7_cost_per_task");
    group.sample_size(10);
    for kind in ProtocolKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let r = run_scenario(&bench_scenario(kind, 6.0));
                black_box(r.cost_per_admitted_task())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
