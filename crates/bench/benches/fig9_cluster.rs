//! Figure 9 — admission probability measured on the thread-per-host Agile
//! Objects cluster. Prints a small measured series, then benchmarks one
//! cluster measurement end-to-end (spawn 20 hosts, replay workload, join).

use realtor_agile::{Cluster, ClusterConfig};
use realtor_bench::Runner;
use realtor_simcore::SimTime;
use realtor_workload::WorkloadSpec;

fn measure(lambda: f64, horizon_secs: u64) -> f64 {
    let mut cfg = ClusterConfig {
        hosts: 20,
        time_scale: 5000.0,
        seed: 42,
        ..Default::default()
    };
    cfg.host.capacity_secs = 50.0;
    let cluster = Cluster::start(&cfg);
    let trace = WorkloadSpec::paper(lambda, 20, SimTime::from_secs(horizon_secs), 42).generate();
    cluster.run_workload(&trace);
    cluster.settle(2.0);
    cluster.shutdown().admission_probability()
}

fn main() {
    println!("\n### Figure 9 (bench scale) — measured admission probability, 20-host cluster\n");
    println!("| lambda | REALTOR |");
    println!("| ------ | ------- |");
    for lambda in [2.0, 4.0, 6.0, 8.0] {
        println!("| {lambda:.1} | {:.4} |", measure(lambda, 60));
    }
    let mut runner = Runner::from_env();
    {
        let mut group = runner.group("fig9_cluster");
        group.sample_size(5);
        group.bench_function("cluster_measurement_point", || measure(6.0, 20));
        group.finish();
    }
    runner.finish();
}
