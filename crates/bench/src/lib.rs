//! Shared helpers for the in-tree benchmark harness.
//!
//! Each `benches/figN_*.rs` target does two things:
//! 1. prints a scaled-down version of the paper figure's series once (so a
//!    plain `cargo bench` run shows the reproduced shape), and
//! 2. benchmarks the simulation kernel that generates it with the
//!    zero-dependency [`runner`] (warmup + median-of-N wall clock, JSON
//!    lines appended under `results/`).
//!
//! The full-scale series (paper horizons) come from the `experiments`
//! binary; see DESIGN.md's per-experiment index.

use realtor_core::ProtocolKind;
use realtor_sim::{run_sweep, FigureMetric, Scenario};

pub mod runner;

pub use runner::{fmt_ns, Record, Runner};

/// Horizon used by the bench-scale runs (the paper uses ~10^4 s).
pub const BENCH_HORIZON_SECS: u64 = 300;

/// Seed shared by all bench runs.
pub const BENCH_SEED: u64 = 42;

/// A bench-scale paper scenario.
pub fn bench_scenario(protocol: ProtocolKind, lambda: f64) -> Scenario {
    Scenario::paper(protocol, lambda, BENCH_HORIZON_SECS, BENCH_SEED)
}

/// Print the bench-scale series for one figure metric.
pub fn print_series(metric: FigureMetric, title: &str) {
    let lambdas = [2.0, 4.0, 6.0, 8.0, 10.0];
    let sweep = run_sweep(&ProtocolKind::ALL, &lambdas, bench_scenario);
    println!("\n{}", sweep.figure(metric, title).to_markdown());
}
