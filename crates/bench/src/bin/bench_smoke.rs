//! Fast smoke benchmark used by `scripts/ci.sh`: exercises one hot kernel
//! per layer (codec, event queue, sampler, one scaled-down simulation run)
//! with a tiny sample count and writes `results/bench_smoke.json` as JSON
//! lines, proving the in-tree runner end to end in a few seconds.

use realtor_agile::codec::{decode_message, encode_message};
use realtor_bench::{bench_scenario, Runner};
use realtor_core::{Message, Pledge, ProtocolKind};
use realtor_sim::{run_scenario, run_scenario_profiled};
use realtor_simcore::{EventQueue, SimRng, SimTime};
use std::io::Write as _;

fn main() {
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "results/bench_smoke.json".into());
    let mut runner = Runner::from_env().with_out(&out).with_samples(5);

    {
        let mut group = runner.group("smoke/codec");
        let pledge = Message::Pledge(Pledge {
            pledger: 12,
            headroom_secs: 42.5,
            community_count: 3,
            grant_probability: 0.425,
            sent_at: SimTime::from_secs(12),
        });
        group.bench_function("encode_decode_pledge", || {
            let bytes = encode_message(&pledge);
            decode_message(&bytes).unwrap()
        });
        group.finish();
    }

    {
        let mut group = runner.group("smoke/event_queue");
        let mut rng = SimRng::from_seed(1);
        group.bench_function("schedule_pop_1k", || {
            let mut q = EventQueue::with_capacity(1_000);
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_ticks(rng.u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        });
        group.finish();
    }

    {
        let mut group = runner.group("smoke/rng");
        let mut rng = SimRng::from_seed(7);
        group.bench_function("exp_samples_10k", || {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exp(5.0);
            }
            acc
        });
        group.finish();
    }

    {
        let mut group = runner.group("smoke/sim");
        group.sample_size(3);
        group.bench_function("realtor_lambda6", || {
            run_scenario(&bench_scenario(ProtocolKind::Realtor, 6.0)).admission_probability()
        });
        group.finish();
    }

    runner.finish();

    // DES engine profile of one representative run, appended to the same
    // JSON-lines file: where the wall time went (prime / event loop /
    // finalize), the engine's throughput, and how deep the event queue got.
    let (_, profile) = run_scenario_profiled(&bench_scenario(ProtocolKind::Realtor, 6.0));
    let line = format!(
        "{{\"group\":\"smoke/profile\",\"name\":\"realtor_lambda6\",\
         \"events_processed\":{},\"events_per_sec\":{:.1},\"queue_high_water\":{},\
         \"prime_ns\":{},\"run_ns\":{},\"finish_ns\":{}}}",
        profile.events_processed,
        profile.events_per_sec(),
        profile.queue_high_water,
        profile.prime_nanos,
        profile.run_nanos,
        profile.finish_nanos,
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out)
        .expect("open bench results file");
    writeln!(f, "{line}").expect("write profile record");
    println!(
        "smoke/profile: {} events at {:.0} events/s, queue high-water {}",
        profile.events_processed,
        profile.events_per_sec(),
        profile.queue_high_water
    );
}
