//! Fast smoke benchmark used by `scripts/ci.sh`: exercises one hot kernel
//! per layer (codec, event queue, sampler, one scaled-down simulation run)
//! with a tiny sample count and writes `results/bench_smoke.json` as JSON
//! lines, proving the in-tree runner end to end in a few seconds.

use realtor_agile::codec::{decode_message, encode_message};
use realtor_bench::{bench_scenario, Runner};
use realtor_core::{Message, Pledge, ProtocolKind};
use realtor_sim::{run_scenario, run_scenario_profiled, run_scenario_traced_profiled};
use realtor_simcore::trace::{Severity, Tracer};
use realtor_simcore::{EventQueue, HeapQueue, SimRng, SimTime};
use std::io::Write as _;

/// Number of events kept pending during the deep-queue stress phase: the
/// regime a 200k-node mesh puts the queue in (one armed protocol timer
/// per node, expiries spread over roughly a second of simulated time,
/// plus ~1% long-TTL stragglers).
const STRESS_PENDING: usize = 200_000;

/// Deterministic deep-queue workload: fill to `STRESS_PENDING` events,
/// hold the depth steady across `2 * STRESS_PENDING` pop-then-reschedule
/// steps, then drain. The payload is sized like the simulation's event
/// enum (~48 bytes) so both queues move realistic freight. Returns a
/// checksum so the work cannot be optimized away — and so the two queues
/// can be asserted to have processed identical streams.
macro_rules! stress_workload {
    ($queue:expr) => {{
        let mut q = $queue;
        let mut rng = SimRng::from_seed(0xDEE9);
        let mut check = 0u64;
        let mut now = 0u64;
        let sched_time = |rng: &mut SimRng, now: u64| -> u64 {
            if rng.u64() % 100 == 0 {
                now + 1_000_000_000 + rng.u64() % 1_000_000_000
            } else {
                now + 1_000 + rng.u64() % 1_000_000_000
            }
        };
        for i in 0..STRESS_PENDING as u64 {
            let t = sched_time(&mut rng, now);
            q.schedule(SimTime::from_ticks(t), [i, t, 0, 0, 0, 0]);
        }
        for i in 0..(2 * STRESS_PENDING) as u64 {
            let (t, ev) = q.pop().expect("queue holds events");
            now = t.ticks();
            check = check.wrapping_mul(31).wrapping_add(ev[0]).wrapping_add(now);
            let nt = sched_time(&mut rng, now);
            q.schedule(SimTime::from_ticks(nt), [i, nt, 1, 0, 0, 0]);
        }
        while let Some((t, ev)) = q.pop() {
            check = check
                .wrapping_mul(31)
                .wrapping_add(ev[0])
                .wrapping_add(t.ticks());
        }
        check
    }};
}

fn main() {
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "results/bench_smoke.json".into());
    let mut runner = Runner::from_env().with_out(&out).with_samples(5);

    {
        let mut group = runner.group("smoke/codec");
        let pledge = Message::Pledge(Pledge {
            pledger: 12,
            headroom_secs: 42.5,
            community_count: 3,
            grant_probability: 0.425,
            sent_at: SimTime::from_secs(12),
        });
        group.bench_function("encode_decode_pledge", || {
            let bytes = encode_message(&pledge);
            decode_message(&bytes).unwrap()
        });
        group.finish();
    }

    {
        let mut group = runner.group("smoke/event_queue");
        let mut rng = SimRng::from_seed(1);
        group.bench_function("schedule_pop_1k", || {
            let mut q = EventQueue::with_capacity(1_000);
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_ticks(rng.u64() % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            sum
        });
        group.finish();
    }

    {
        let mut group = runner.group("smoke/rng");
        let mut rng = SimRng::from_seed(7);
        group.bench_function("exp_samples_10k", || {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.exp(5.0);
            }
            acc
        });
        group.finish();
    }

    {
        let mut group = runner.group("smoke/sim");
        group.sample_size(3);
        group.bench_function("realtor_lambda6", || {
            run_scenario(&bench_scenario(ProtocolKind::Realtor, 6.0)).admission_probability()
        });
        group.finish();
    }

    runner.finish();

    // DES engine profile of one representative run, appended to the same
    // JSON-lines file: where the wall time went (prime / event loop /
    // finalize), the engine's throughput, and how deep the event queue got.
    // The run is repeated and the *fastest* repetition recorded: on a
    // shared single-core runner, scheduling noise is strictly one-sided
    // (a noisy neighbour can only slow a measurement down, never speed it
    // up), so the minimum wall time is the unbiased estimator of the
    // engine's actual throughput — the same reasoning that has
    // benchmarking harnesses report min-time in noisy environments.
    // Every repetition must process the identical event count and queue
    // high-water: the run is deterministic, only the clock varies.
    let mut profiles: Vec<_> = (0..7)
        .map(|_| run_scenario_profiled(&bench_scenario(ProtocolKind::Realtor, 6.0)).1)
        .collect();
    for p in &profiles[1..] {
        assert_eq!(
            (p.events_processed, p.queue_high_water),
            (profiles[0].events_processed, profiles[0].queue_high_water),
            "profiled run is deterministic; only timing may vary"
        );
    }
    profiles.sort_by_key(|p| p.run_nanos);
    let profile = profiles.swap_remove(0);
    // The per-chunk histogram (A19) localizes event-loop stalls: each
    // sample is the wall time of one PROFILE_CHUNK_EVENTS slice of the run.
    let line = format!(
        "{{\"group\":\"smoke/profile\",\"name\":\"realtor_lambda6\",\
         \"events_processed\":{},\"events_per_sec\":{:.1},\"queue_high_water\":{},\
         \"prime_ns\":{},\"run_ns\":{},\"finish_ns\":{},\
         \"chunks\":{},\"chunk_p50_ns\":{},\"chunk_p99_ns\":{},\"chunk_max_ns\":{}}}",
        profile.events_processed,
        profile.events_per_sec(),
        profile.queue_high_water,
        profile.prime_nanos,
        profile.run_nanos,
        profile.finish_nanos,
        profile.chunk_nanos.count(),
        profile.chunk_nanos.quantile(0.5),
        profile.chunk_nanos.quantile(0.99),
        profile.chunk_nanos.max(),
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out)
        .expect("open bench results file");
    writeln!(f, "{line}").expect("write profile record");
    println!(
        "smoke/profile: {} events at {:.0} events/s, queue high-water {}",
        profile.events_processed,
        profile.events_per_sec(),
        profile.queue_high_water
    );

    // Deep-queue stress: the same deep-pending workload through the ladder
    // queue and through the retained BinaryHeap oracle. The checksums must
    // match (identical pop streams — determinism is load-bearing, not just
    // speed); the ratio is the gated speedup. Ladder and heap runs are
    // INTERLEAVED and the gate reads the median of per-pair ratios: on a
    // shared single-core runner the clock drifts over seconds (frequency
    // scaling, noisy neighbours), and back-to-back pairing cancels that
    // drift where two separate median-of-N blocks would not.
    let mut ratios = Vec::with_capacity(5);
    let mut ladder_med = Vec::with_capacity(5);
    let mut heap_med = Vec::with_capacity(5);
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        let ladder_check = stress_workload!(EventQueue::with_capacity(STRESS_PENDING));
        let ladder_ns = t0.elapsed().as_nanos() as u64;
        let t0 = std::time::Instant::now();
        let heap_check = stress_workload!(HeapQueue::with_capacity(STRESS_PENDING));
        let heap_ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(
            ladder_check, heap_check,
            "ladder and heap popped different event streams"
        );
        ratios.push(heap_ns as f64 / ladder_ns as f64);
        ladder_med.push(ladder_ns);
        heap_med.push(heap_ns);
    }
    ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    ladder_med.sort_unstable();
    heap_med.sort_unstable();
    let (ratio, ladder_ns, heap_ns) = (ratios[2], ladder_med[2], heap_med[2]);
    let line = format!(
        "{{\"group\":\"smoke/queue_stress\",\"name\":\"deep_{STRESS_PENDING}\",\
         \"pending\":{STRESS_PENDING},\"ladder_ns\":{ladder_ns},\"heap_ns\":{heap_ns},\
         \"speedup_vs_heap\":{ratio:.3}}}"
    );
    writeln!(f, "{line}").expect("write queue stress record");
    println!(
        "smoke/queue_stress: ladder {ladder_ns} ns vs heap {heap_ns} ns (median pair ratio {ratio:.2}x) at {STRESS_PENDING} pending"
    );

    // Tracing-overhead gate (A19): the same deterministic run untraced,
    // traced at Info severity (the live-exposition configuration the
    // cluster sampler runs — lineage spans, admissions, recoveries), and
    // traced at full Debug fidelity (the forensic `trace` subcommand
    // configuration, which additionally records every pledge/refresh
    // message). All three SimResults must be bit-identical (tracing is
    // observational). ci.sh gates the Info ratio at >= 0.70x; the Debug
    // ratio is recorded ungated — capturing 2+ events per engine event
    // honestly costs more, and the number being visible here keeps that
    // cost from silently regressing. Triples are interleaved (so slow
    // clock drift hits all three configs equally) and each config's
    // throughput is estimated from its fastest of twenty-five runs: external
    // interference — preemption, frequency ramps, page-cache misses —
    // only ever slows a run down, so min-time is the lowest-variance
    // estimator of intrinsic cost and the fairest basis for a ratio
    // gate. A median of per-pair ratios was tried first and fluctuated
    // +/-0.07 run to run, because a spike in either member skews the
    // pair.
    let overhead_scenario = bench_scenario(ProtocolKind::Realtor, 6.0);
    const OVERHEAD_REPS: usize = 25;
    let mut untraced_eps = Vec::with_capacity(OVERHEAD_REPS);
    let mut traced_eps = Vec::with_capacity(OVERHEAD_REPS);
    let mut debug_eps = Vec::with_capacity(OVERHEAD_REPS);
    for _ in 0..OVERHEAD_REPS {
        let (plain, plain_profile) = run_scenario_profiled(&overhead_scenario);
        let tracer = Tracer::bounded(100_000).with_min_severity(Severity::Info);
        let (traced, traced_profile) = run_scenario_traced_profiled(&overhead_scenario, tracer);
        assert_eq!(plain, traced, "tracing perturbed the simulation");
        let tracer = Tracer::bounded(100_000);
        let (debug_traced, debug_profile) =
            run_scenario_traced_profiled(&overhead_scenario, tracer);
        assert_eq!(plain, debug_traced, "debug tracing perturbed the simulation");
        untraced_eps.push(plain_profile.events_per_sec());
        traced_eps.push(traced_profile.events_per_sec());
        debug_eps.push(debug_profile.events_per_sec());
    }
    for v in [&mut untraced_eps, &mut traced_eps, &mut debug_eps] {
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    }
    let best = OVERHEAD_REPS - 1;
    let info_ratio = traced_eps[best] / untraced_eps[best];
    let debug_ratio = debug_eps[best] / untraced_eps[best];
    let line = format!(
        "{{\"group\":\"smoke/trace_overhead\",\"name\":\"realtor_lambda6\",\
         \"untraced_events_per_sec\":{:.1},\"traced_events_per_sec\":{:.1},\
         \"traced_over_untraced\":{:.3},\"traced_debug_events_per_sec\":{:.1},\
         \"traced_debug_over_untraced\":{:.3}}}",
        untraced_eps[best], traced_eps[best], info_ratio, debug_eps[best], debug_ratio
    );
    writeln!(f, "{line}").expect("write trace overhead record");
    println!(
        "smoke/trace_overhead: {:.0} untraced vs {:.0} traced events/s \
         (best-of-{OVERHEAD_REPS} ratio {:.2}x at Info, {:.2}x at full Debug)",
        untraced_eps[best], traced_eps[best], info_ratio, debug_ratio
    );
}
