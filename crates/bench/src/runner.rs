//! Minimal wall-clock benchmark runner (the workspace builds with zero
//! external crates, so Criterion is out).
//!
//! Protocol per benchmark: a few warmup batches, then `samples` timed
//! batches; the reported figure is the **median** per-iteration time, which
//! is robust against the occasional scheduler hiccup that would wreck a
//! mean. Sub-millisecond bodies are auto-batched until one batch takes at
//! least [`TARGET_BATCH_NANOS`], so timer granularity never dominates.
//!
//! Results go two places: a human-readable table on stdout, and one JSON
//! object per line appended to a results file (default
//! `results/bench.jsonl`, overridable via the `BENCH_OUT` env var) so runs
//! can be diffed across commits. `BENCH_SAMPLES` overrides the per-group
//! sample count for quick smoke runs.

use std::fs;
use std::hint::black_box;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A batch should take at least this long before we trust the timer (5 ms).
pub const TARGET_BATCH_NANOS: u128 = 5_000_000;

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 15;

/// Default number of discarded warmup batches per benchmark.
pub const DEFAULT_WARMUP: usize = 3;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark group (e.g. `micro/event_queue`).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median per-iteration wall-clock time, nanoseconds.
    pub median_ns: u128,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: u128,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: u128,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample batch (1 unless auto-batched).
    pub iters: u64,
}

impl Record {
    /// Hand-formatted JSON object (no serde in the workspace).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"name\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{},\"iters\":{}}}",
            escape(&self.group),
            escape(&self.name),
            self.median_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Top-level runner: owns the collected records and the output path.
pub struct Runner {
    samples: usize,
    warmup: usize,
    out: PathBuf,
    records: Vec<Record>,
}

impl Runner {
    /// A runner configured from the environment (`BENCH_SAMPLES`,
    /// `BENCH_OUT`), falling back to the defaults above.
    pub fn from_env() -> Self {
        let samples = std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SAMPLES);
        let out = std::env::var("BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results/bench.jsonl"));
        Runner {
            samples,
            warmup: DEFAULT_WARMUP,
            out,
            records: Vec::new(),
        }
    }

    /// Override the output file.
    pub fn with_out(mut self, path: impl AsRef<Path>) -> Self {
        self.out = path.as_ref().to_path_buf();
        self
    }

    /// Override the per-benchmark sample count.
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples > 0);
        self.samples = samples;
        self
    }

    /// Start a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
            samples_override: None,
        }
    }

    /// Records measured so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Write all records as JSON lines and print the output path.
    ///
    /// Appends, so several bench binaries invoked by one `cargo bench` run
    /// accumulate into a single file.
    pub fn finish(self) {
        if self.records.is_empty() {
            return;
        }
        if let Some(dir) = self.out.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).expect("create results dir");
            }
        }
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.out)
            .expect("open bench results file");
        for r in &self.records {
            writeln!(f, "{}", r.to_json()).expect("write bench record");
        }
        println!("\nwrote {} result(s) to {}", self.records.len(), self.out.display());
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
    samples_override: Option<usize>,
}

impl Group<'_> {
    /// Override the sample count for this group (kept for parity with the
    /// Criterion API the benches were ported from).
    pub fn sample_size(&mut self, n: usize) {
        assert!(n > 0);
        self.samples_override = Some(n);
    }

    /// Measure `body` and record the median per-iteration time.
    ///
    /// `body`'s return value is passed through [`black_box`] so the work
    /// cannot be optimized away.
    pub fn bench_function<T>(&mut self, name: impl AsRef<str>, mut body: impl FnMut() -> T) {
        let name = name.as_ref();
        let samples = self.samples_override.unwrap_or(self.runner.samples);
        let warmup = self.runner.warmup;

        // Calibrate: time one iteration, then pick a batch size that makes
        // a batch long enough for the timer to be meaningful.
        let t0 = Instant::now();
        black_box(body());
        let single = t0.elapsed().as_nanos().max(1);
        let iters = if single >= TARGET_BATCH_NANOS {
            1
        } else {
            (TARGET_BATCH_NANOS / single).clamp(1, 1_000_000) as u64
        };

        for _ in 0..warmup {
            for _ in 0..iters {
                black_box(body());
            }
        }

        let mut per_iter: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            per_iter.push(t.elapsed().as_nanos() / iters as u128);
        }
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let rec = Record {
            group: self.name.clone(),
            name: name.to_string(),
            median_ns: median,
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            samples,
            iters,
        };
        println!(
            "{}/{:<32} median {:>12}  (min {}, max {}, {} samples x {} iters)",
            rec.group,
            rec.name,
            fmt_ns(rec.median_ns),
            fmt_ns(rec.min_ns),
            fmt_ns(rec.max_ns),
            rec.samples,
            rec.iters
        );
        self.runner.records.push(rec);
    }

    /// No-op, kept for call-site parity with Criterion.
    pub fn finish(self) {}
}

/// Render nanoseconds with a human-friendly unit.
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_json_shape() {
        let tmp = std::env::temp_dir().join(format!("bench_runner_test_{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&tmp);
        let mut runner = Runner::from_env().with_out(&tmp).with_samples(3);
        {
            let mut g = runner.group("unit/test");
            g.bench_function("noop", || 1 + 1);
        }
        assert_eq!(runner.records().len(), 1);
        let r = &runner.records()[0];
        assert_eq!(r.group, "unit/test");
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        let json = r.to_json();
        assert!(json.starts_with("{\"group\":\"unit/test\""), "{json}");
        assert!(json.ends_with('}'), "{json}");
        runner.finish();
        let written = fs::read_to_string(&tmp).unwrap();
        assert_eq!(written.lines().count(), 1);
        let _ = fs::remove_file(&tmp);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn sample_size_override() {
        let mut runner = Runner::from_env().with_samples(5).with_out("/dev/null");
        {
            let mut g = runner.group("unit/override");
            g.sample_size(2);
            g.bench_function("noop", || ());
        }
        assert_eq!(runner.records()[0].samples, 2);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
