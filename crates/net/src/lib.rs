//! # realtor-net — network substrate
//!
//! The overlay network the discovery protocols run on:
//!
//! * [`topology`] — undirected graphs and the generators used by the paper
//!   (the 5×5 mesh of Figure 4) and the ablations (torus, ring, star,
//!   complete, seeded random),
//! * [`routing`] — all-pairs BFS shortest paths, recomputable over the
//!   surviving subgraph,
//! * [`cost`] — the paper's Section-5 message accounting (flood = #links,
//!   unicast = constant 4) plus an exact-hops variant,
//! * [`fault`] — node-failure injection modelling external attacks,
//! * [`idmap`] — a dense `NodeId`-keyed map (O(1) lookups, id-ordered
//!   iteration) backing the protocol hot-path tables,
//! * [`channel`] — the unreliable-delivery model (loss, latency, jitter,
//!   duplication, degraded links) layered on top of routing.

#![warn(missing_docs)]

pub mod channel;
pub mod cost;
pub mod fault;
pub mod idmap;
pub mod routing;
pub mod topology;

pub use channel::{ChannelModel, LinkQuality, Sampled};
pub use cost::{CostModel, FloodCharge, MessageLedger, UnicastCharge};
pub use fault::{FaultState, TargetingStrategy};
pub use idmap::IdMap;
pub use routing::{Hops, Routing, HOPS_UNREACHABLE};
pub use topology::{NodeId, Topology};
