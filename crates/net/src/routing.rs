//! All-pairs shortest-path routing over a [`Topology`].
//!
//! The paper's message accounting charges a unicast PLEDGE "the average
//! number of shortest paths" (they use the constant 4 on the 5×5 mesh); this
//! module computes exact per-pair hop counts by BFS so the cost model can use
//! either exact or constant charging. Routing tables can be recomputed over a
//! subset of alive nodes to model attacks.

use crate::topology::{NodeId, Topology};

/// Hop distance; `HOPS_UNREACHABLE` marks disconnected pairs.
pub type Hops = u32;

/// Sentinel for "no path".
pub const HOPS_UNREACHABLE: Hops = Hops::MAX;

/// All-pairs hop counts and next-hop tables.
#[derive(Debug, Clone)]
pub struct Routing {
    n: usize,
    /// `dist[src * n + dst]`
    dist: Vec<Hops>,
    /// `next[src * n + dst]`: first hop on a shortest path (lowest-id
    /// tie-break, so routing is deterministic); `usize::MAX` when unreachable
    /// or src == dst.
    next: Vec<NodeId>,
}

impl Routing {
    /// Compute routing over all nodes of `topo`.
    pub fn new(topo: &Topology) -> Self {
        Self::over_alive(topo, &vec![true; topo.node_count()])
    }

    /// Compute routing over the alive subgraph only; dead nodes neither
    /// originate, receive, nor forward.
    pub fn over_alive(topo: &Topology, alive: &[bool]) -> Self {
        let n = topo.node_count();
        assert_eq!(alive.len(), n);
        let mut dist = vec![HOPS_UNREACHABLE; n * n];
        let mut next = vec![usize::MAX; n * n];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..n {
            if !alive[src] {
                continue;
            }
            let base = src * n;
            dist[base + src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                let du = dist[base + u];
                for &v in topo.neighbors(u) {
                    if !alive[v] || dist[base + v] != HOPS_UNREACHABLE {
                        continue;
                    }
                    dist[base + v] = du + 1;
                    // First hop toward v: either v itself (if u is src) or
                    // whatever first hop reaches u.
                    next[base + v] = if u == src { v } else { next[base + u] };
                    queue.push_back(v);
                }
            }
        }
        Routing { n, dist, next }
    }

    /// Number of nodes the table was built over.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Hop distance from `src` to `dst` ([`HOPS_UNREACHABLE`] if none).
    #[inline]
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Hops {
        self.dist[src * self.n + dst]
    }

    /// True when a path exists.
    #[inline]
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        self.hops(src, dst) != HOPS_UNREACHABLE
    }

    /// First hop on a shortest `src → dst` path (`None` when unreachable or
    /// `src == dst`).
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        let h = self.next[src * self.n + dst];
        (h != usize::MAX).then_some(h)
    }

    /// Full shortest path, including both endpoints; `None` when unreachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(src, dst) {
            return None;
        }
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst)?;
            path.push(cur);
            debug_assert!(path.len() <= self.n, "routing loop detected");
        }
        Some(path)
    }

    /// Mean hop distance over all ordered reachable pairs with `src != dst`.
    ///
    /// For the paper's 5×5 mesh this is 10/3 ≈ 3.33 (the paper rounds to 4).
    pub fn mean_path_length(&self) -> f64 {
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for s in 0..self.n {
            for d in 0..self.n {
                if s != d && self.reachable(s, d) {
                    sum += u64::from(self.hops(s, d));
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            sum as f64 / pairs as f64
        }
    }

    /// Largest finite hop distance (graph diameter over reachable pairs).
    pub fn diameter(&self) -> Hops {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != HOPS_UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Nodes within `radius` hops of `center` (excluding `center`).
    pub fn within(&self, center: NodeId, radius: Hops) -> Vec<NodeId> {
        (0..self.n)
            .filter(|&v| v != center && self.hops(center, v) <= radius)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_distances() {
        let t = Topology::mesh(5, 5);
        let r = Routing::new(&t);
        // Manhattan distance on a grid mesh.
        assert_eq!(r.hops(0, 24), 8);
        assert_eq!(r.hops(0, 4), 4);
        assert_eq!(r.hops(12, 12), 0);
        assert_eq!(r.diameter(), 8);
    }

    #[test]
    fn mesh_mean_path_is_ten_thirds() {
        let r = Routing::new(&Topology::mesh(5, 5));
        let m = r.mean_path_length();
        assert!((m - 10.0 / 3.0).abs() < 1e-9, "mean {m}");
    }

    #[test]
    fn paths_are_shortest_and_valid() {
        let t = Topology::mesh(4, 4);
        let r = Routing::new(&t);
        for s in t.nodes() {
            for d in t.nodes() {
                let p = r.path(s, d).unwrap();
                assert_eq!(p.len() as Hops - 1, r.hops(s, d));
                assert_eq!(*p.first().unwrap(), s);
                assert_eq!(*p.last().unwrap(), d);
                for w in p.windows(2) {
                    assert!(t.has_link(w[0], w[1]), "invalid hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn symmetric_distances() {
        let t = Topology::random_connected(15, 0.25, 3);
        let r = Routing::new(&t);
        for s in t.nodes() {
            for d in t.nodes() {
                assert_eq!(r.hops(s, d), r.hops(d, s));
            }
        }
    }

    #[test]
    fn dead_nodes_do_not_forward() {
        // 1x5 line: 0-1-2-3-4. Killing 2 splits the line.
        let t = Topology::mesh(5, 1);
        let mut alive = vec![true; 5];
        alive[2] = false;
        let r = Routing::over_alive(&t, &alive);
        assert!(!r.reachable(0, 4));
        assert!(r.reachable(0, 1));
        assert!(r.reachable(3, 4));
        assert_eq!(r.hops(0, 2), HOPS_UNREACHABLE);
        assert!(r.path(0, 4).is_none());
    }

    #[test]
    fn within_radius() {
        let t = Topology::mesh(5, 5);
        let r = Routing::new(&t);
        let near = r.within(12, 1);
        assert_eq!(near, vec![7, 11, 13, 17]);
        assert_eq!(r.within(12, 8).len(), 24);
    }

    #[test]
    fn star_routes_via_hub() {
        let t = Topology::star(6);
        let r = Routing::new(&t);
        assert_eq!(r.hops(1, 5), 2);
        assert_eq!(r.next_hop(1, 5), Some(0));
        assert_eq!(r.path(1, 5).unwrap(), vec![1, 0, 5]);
    }
}
