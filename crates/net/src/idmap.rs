//! A map keyed by [`NodeId`], backed by a dense `Vec` of slots.
//!
//! The protocol hot path touches several per-node tables once per
//! *delivered message* (failure-detector heartbeats, membership refreshes,
//! pledge reports). Node ids are small dense integers — a simulation with
//! `n` nodes uses ids `0..n` — so a `BTreeMap<NodeId, T>` pays a pointer
//! chase per lookup for no benefit. [`IdMap`] makes every lookup a bounds
//! check and an index, grows lazily to the highest id inserted, and
//! iterates **in id order**, which is the property the protocol contracts
//! actually depend on (sweep verdicts and membership listings are specified
//! to be id-ordered). Swapping a `BTreeMap` for an `IdMap` is therefore
//! behaviour-preserving wherever the key space is node ids.

use crate::topology::NodeId;

/// A dense map from [`NodeId`] to `T`. Lookups are O(1); iteration is in
/// id order; memory is proportional to the highest id ever inserted (fine
/// for simulation node counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for IdMap<T> {
    fn default() -> Self {
        IdMap::new()
    }
}

impl<T> IdMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        IdMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// An empty map with room for ids `0..n` without reallocating.
    pub fn with_id_capacity(n: usize) -> Self {
        IdMap {
            slots: Vec::with_capacity(n),
            len: 0,
        }
    }

    /// Number of entries present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `id`, if present.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&T> {
        self.slots.get(id).and_then(|s| s.as_ref())
    }

    /// Mutable access to the value for `id`, if present.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        self.slots.get_mut(id).and_then(|s| s.as_mut())
    }

    /// True when `id` has an entry.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Insert or replace the value for `id`; returns the previous value.
    #[inline]
    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        if id >= self.slots.len() {
            self.slots.resize_with(id + 1, || None);
        }
        let old = self.slots[id].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove and return the value for `id`.
    #[inline]
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let old = self.slots.get_mut(id).and_then(|s| s.take());
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Mutable access to the slot for `id`, growing the map so the slot
    /// exists. The caller may fill an empty slot through the returned
    /// handle; [`SlotMut::insert`] keeps the length accurate.
    #[inline]
    pub fn slot_mut(&mut self, id: NodeId) -> SlotMut<'_, T> {
        if id >= self.slots.len() {
            self.slots.resize_with(id + 1, || None);
        }
        SlotMut {
            slot: &mut self.slots[id],
            len: &mut self.len,
        }
    }

    /// Iterate present entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_ref().map(|v| (id, v)))
    }

    /// Iterate present entries mutably, in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut T)> + '_ {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(id, s)| s.as_mut().map(|v| (id, v)))
    }

    /// Iterate present values in id order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Keep only the entries for which `keep` returns true; returns how
    /// many were removed.
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId, &mut T) -> bool) -> usize {
        let mut removed = 0;
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot {
                if !keep(id, v) {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        self.len -= removed;
        removed
    }

    /// Drop every entry (keeps the allocation).
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            *slot = None;
        }
        self.len = 0;
    }
}

/// A growable slot handle returned by [`IdMap::slot_mut`]: lets a caller
/// do the check-then-update-or-insert dance of a hot-path upsert with a
/// single bounds check, while keeping the map's length accurate.
pub struct SlotMut<'a, T> {
    slot: &'a mut Option<T>,
    len: &'a mut usize,
}

impl<'a, T> SlotMut<'a, T> {
    /// The current value in the slot, if any.
    #[inline]
    pub fn get_mut(&mut self) -> Option<&mut T> {
        self.slot.as_mut()
    }

    /// Fill the slot (replacing any previous value).
    #[inline]
    pub fn insert(self, value: T) {
        if self.slot.replace(value).is_none() {
            *self.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = IdMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(3, "a"), None);
        assert_eq!(m.insert(3, "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(3), Some(&"b"));
        assert_eq!(m.get(0), None);
        assert_eq!(m.remove(3), Some("b"));
        assert_eq!(m.remove(3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_id_ordered_regardless_of_insert_order() {
        let mut m = IdMap::new();
        m.insert(9, 90);
        m.insert(2, 20);
        m.insert(5, 50);
        let ids: Vec<NodeId> = m.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        let vals: Vec<i32> = m.values().copied().collect();
        assert_eq!(vals, vec![20, 50, 90]);
    }

    #[test]
    fn retain_reports_removed_count_and_fixes_len() {
        let mut m = IdMap::new();
        for id in 0..10 {
            m.insert(id, id as i32);
        }
        let removed = m.retain(|_, v| *v % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(m.len(), 5);
        assert_eq!(m.get(4), Some(&4));
        assert_eq!(m.get(5), None);
    }

    #[test]
    fn slot_mut_upsert_tracks_len() {
        let mut m = IdMap::new();
        let mut s = m.slot_mut(7);
        assert!(s.get_mut().is_none());
        s.insert(1);
        assert_eq!(m.len(), 1);
        let mut s = m.slot_mut(7);
        *s.get_mut().unwrap() = 2;
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(7), Some(&2));
    }

    #[test]
    fn out_of_range_reads_are_none() {
        let m: IdMap<u8> = IdMap::new();
        assert_eq!(m.get(100), None);
        assert!(!m.contains(100));
    }
}
