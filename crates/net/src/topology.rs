//! Overlay topologies.
//!
//! The paper evaluates on the 5×5 mesh of its Figure 4 ("25 nodes and 40
//! links"). The generators here cover that mesh plus the shapes used by the
//! scalability and robustness ablations (tori, rings, stars, complete graphs
//! and seeded Erdős–Rényi graphs). All topologies are simple undirected
//! graphs with contiguous node ids `0..n`.

use realtor_simcore::SimRng;

/// Index of a node in a topology (contiguous, `0..n`).
pub type NodeId = usize;

/// A simple undirected graph.
///
/// ```
/// use realtor_net::{Routing, Topology};
///
/// // The paper's Figure-4 overlay: 25 nodes, 40 links.
/// let mesh = Topology::mesh(5, 5);
/// assert_eq!((mesh.node_count(), mesh.link_count()), (25, 40));
/// let routing = Routing::new(&mesh);
/// assert_eq!(routing.hops(0, 24), 8); // corner to corner
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    adjacency: Vec<Vec<NodeId>>,
    links: usize,
}

impl Topology {
    /// Build from an explicit undirected edge list over `n` nodes.
    ///
    /// Duplicate edges, self-loops and out-of-range endpoints are rejected.
    pub fn from_edges(name: impl Into<String>, n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut adjacency = vec![Vec::new(); n];
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
            assert_ne!(a, b, "self-loop at node {a}");
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key), "duplicate edge ({a},{b})");
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for nbrs in &mut adjacency {
            nbrs.sort_unstable();
        }
        Topology {
            name: name.into(),
            adjacency,
            links: edges.len(),
        }
    }

    /// The `width × height` grid mesh of the paper's Figure 4.
    ///
    /// A `w × h` mesh has `w*h` nodes and `2wh - w - h` links; for 5×5 that
    /// is 25 nodes and 40 links, matching the paper exactly.
    pub fn mesh(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        let id = |x: usize, y: usize| y * width + x;
        let mut edges = Vec::new();
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < height {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        Topology::from_edges(format!("mesh-{width}x{height}"), width * height, &edges)
    }

    /// A `width × height` torus (mesh with wraparound links).
    pub fn torus(width: usize, height: usize) -> Self {
        assert!(width > 2 && height > 2, "torus needs width, height > 2");
        let id = |x: usize, y: usize| y * width + x;
        let mut edges = Vec::new();
        for y in 0..height {
            for x in 0..width {
                edges.push((id(x, y), id((x + 1) % width, y)));
                edges.push((id(x, y), id(x, (y + 1) % height)));
            }
        }
        Topology::from_edges(format!("torus-{width}x{height}"), width * height, &edges)
    }

    /// A ring of `n >= 3` nodes.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 nodes");
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Topology::from_edges(format!("ring-{n}"), n, &edges)
    }

    /// A star: node 0 is the hub, nodes `1..n` are leaves.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "star needs at least 2 nodes");
        let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
        Topology::from_edges(format!("star-{n}"), n, &edges)
    }

    /// The complete graph on `n` nodes.
    pub fn full(n: usize) -> Self {
        assert!(n >= 2);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Topology::from_edges(format!("full-{n}"), n, &edges)
    }

    /// A seeded Erdős–Rényi `G(n, p)` graph, re-sampled until connected
    /// (gives up after 1000 attempts).
    pub fn random_connected(n: usize, p: f64, seed: u64) -> Self {
        assert!(n >= 2 && (0.0..=1.0).contains(&p));
        let mut rng = SimRng::stream(seed, "topology-gnp");
        for attempt in 0..1000 {
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.bernoulli(p) {
                        edges.push((a, b));
                    }
                }
            }
            let t = Topology::from_edges(format!("gnp-{n}-{p}-{seed}-{attempt}"), n, &edges);
            if t.is_connected() {
                return t;
            }
        }
        panic!("could not sample a connected G({n},{p}) in 1000 attempts");
    }

    /// Human-readable name of this topology.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.adjacency.len()
    }

    /// Neighbors of `node` in ascending order.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node].len()
    }

    /// True when `a` and `b` share a link.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Breadth-first connectivity check over the whole graph.
    pub fn is_connected(&self) -> bool {
        self.is_connected_over(&vec![true; self.node_count()])
    }

    /// Connectivity restricted to nodes flagged alive; dead nodes are ignored
    /// entirely (a graph with zero or one alive node counts as connected).
    pub fn is_connected_over(&self, alive: &[bool]) -> bool {
        assert_eq!(alive.len(), self.node_count());
        let Some(start) = (0..self.node_count()).find(|&i| alive[i]) else {
            return true;
        };
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if alive[v] && !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == alive.iter().filter(|&&a| a).count()
    }

    /// Undirected edge list (each edge once, `a < b`).
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.links);
        for a in self.nodes() {
            for &b in self.neighbors(a) {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_is_25_nodes_40_links() {
        let t = Topology::mesh(5, 5);
        assert_eq!(t.node_count(), 25);
        assert_eq!(t.link_count(), 40);
        assert!(t.is_connected());
    }

    #[test]
    fn mesh_link_formula() {
        for (w, h) in [(1, 1), (2, 3), (4, 4), (10, 7)] {
            let t = Topology::mesh(w, h);
            assert_eq!(t.link_count(), 2 * w * h - w - h, "mesh {w}x{h}");
        }
    }

    #[test]
    fn mesh_corner_and_center_degrees() {
        let t = Topology::mesh(5, 5);
        assert_eq!(t.degree(0), 2); // corner
        assert_eq!(t.degree(2), 3); // edge
        assert_eq!(t.degree(12), 4); // center
    }

    #[test]
    fn torus_is_regular() {
        let t = Topology::torus(4, 5);
        assert_eq!(t.node_count(), 20);
        assert_eq!(t.link_count(), 40);
        assert!(t.nodes().all(|n| t.degree(n) == 4));
    }

    #[test]
    fn ring_and_star_shapes() {
        let r = Topology::ring(6);
        assert_eq!(r.link_count(), 6);
        assert!(r.nodes().all(|n| r.degree(n) == 2));
        let s = Topology::star(6);
        assert_eq!(s.link_count(), 5);
        assert_eq!(s.degree(0), 5);
        assert!((1..6).all(|n| s.degree(n) == 1));
    }

    #[test]
    fn full_graph_links() {
        let t = Topology::full(7);
        assert_eq!(t.link_count(), 21);
        assert!(t.has_link(2, 5));
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let a = Topology::random_connected(20, 0.2, 99);
        let b = Topology::random_connected(20, 0.2, 99);
        assert!(a.is_connected());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn connectivity_under_failures() {
        let t = Topology::mesh(3, 3);
        let mut alive = vec![true; 9];
        assert!(t.is_connected_over(&alive));
        // Kill the middle column: 1, 4, 7 — splits left/right columns.
        alive[1] = false;
        alive[4] = false;
        alive[7] = false;
        assert!(!t.is_connected_over(&alive));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        Topology::from_edges("bad", 3, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        Topology::from_edges("bad", 3, &[(1, 1)]);
    }

    #[test]
    fn edges_round_trip() {
        let t = Topology::mesh(3, 2);
        let edges = t.edges();
        let t2 = Topology::from_edges("copy", 6, &edges);
        assert_eq!(t2.link_count(), t.link_count());
        for n in t.nodes() {
            assert_eq!(t.neighbors(n), t2.neighbors(n));
        }
    }
}
