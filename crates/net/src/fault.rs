//! Node-failure injection — the paper's "external attack" model.
//!
//! The paper motivates REALTOR with survivability: "as nodes in the system
//! come under attack, resources on these systems become unavailable". The
//! attack model is therefore node unavailability: an attacked node stops
//! originating, answering and forwarding messages, and its queued work is
//! lost. [`FaultState`] tracks the alive set and lazily recomputes routing
//! over the surviving subgraph.

use crate::routing::Routing;
use crate::topology::{NodeId, Topology};
use realtor_simcore::SimRng;

/// A targeting strategy for selecting victims.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetingStrategy {
    /// Uniformly random victims.
    Random,
    /// Highest-degree nodes first (hub attack).
    HighestDegree,
    /// A contiguous region grown by BFS from a random epicenter (models a
    /// localized attack, e.g. one rack or subnet).
    Region,
    /// Correlated failure of one whole failure domain: node ids are split
    /// into `racks` contiguous ranges and a single random rack is hit — one
    /// event takes out every alive member of the domain (up to `count`),
    /// modelling a shared power feed or top-of-rack switch.
    Rack {
        /// Number of failure domains the id space is split into.
        racks: usize,
    },
    /// An explicit victim list.
    Explicit(Vec<NodeId>),
}

/// Current alive/dead state plus routing over the survivors.
#[derive(Debug, Clone)]
pub struct FaultState {
    alive: Vec<bool>,
    /// Links severed independently of node state, as `(min, max)` pairs.
    cut_links: std::collections::BTreeSet<(NodeId, NodeId)>,
    /// Links severed by an active network partition, kept separate from
    /// `cut_links` so healing the partition cannot resurrect a link that a
    /// `CutLinks` attack severed independently.
    partition_cuts: std::collections::BTreeSet<(NodeId, NodeId)>,
    routing: Routing,
    dirty: bool,
}

impl FaultState {
    /// All nodes alive.
    pub fn new(topo: &Topology) -> Self {
        FaultState {
            alive: vec![true; topo.node_count()],
            cut_links: Default::default(),
            partition_cuts: Default::default(),
            routing: Routing::new(topo),
            dirty: false,
        }
    }

    /// Whether `node` is currently alive.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node]
    }

    /// The alive flags, indexed by node id.
    pub fn alive_flags(&self) -> &[bool] {
        &self.alive
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Ids of alive nodes.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.alive.len()).filter(|&i| self.alive[i]).collect()
    }

    /// Kill one node. Idempotent.
    pub fn kill(&mut self, node: NodeId) {
        if std::mem::replace(&mut self.alive[node], false) {
            self.dirty = true;
        }
    }

    /// Restore one node. Idempotent.
    pub fn restore(&mut self, node: NodeId) {
        if !std::mem::replace(&mut self.alive[node], true) {
            self.dirty = true;
        }
    }

    /// Kill a set of victims chosen by `strategy`.
    ///
    /// Returns the victims actually killed (alive beforehand).
    pub fn attack(
        &mut self,
        topo: &Topology,
        strategy: &TargetingStrategy,
        count: usize,
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let victims = self.select_victims(topo, strategy, count, rng);
        let mut killed = Vec::with_capacity(victims.len());
        for v in victims {
            if self.alive[v] {
                self.kill(v);
                killed.push(v);
            }
        }
        killed
    }

    /// Choose victims by `strategy` *without* killing them — an attack
    /// warning. Feeding the same `rng` stream as [`FaultState::attack`]
    /// means a warned kill targets exactly the nodes an unwarned kill with
    /// the same seed would have hit.
    pub fn choose_victims(
        &self,
        topo: &Topology,
        strategy: &TargetingStrategy,
        count: usize,
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        self.select_victims(topo, strategy, count, rng)
    }

    fn select_victims(
        &self,
        topo: &Topology,
        strategy: &TargetingStrategy,
        count: usize,
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let alive: Vec<NodeId> = self.alive_nodes();
        let count = count.min(alive.len());
        match strategy {
            TargetingStrategy::Random => rng
                .sample_indices(alive.len(), count)
                .into_iter()
                .map(|i| alive[i])
                .collect(),
            TargetingStrategy::HighestDegree => {
                let mut sorted = alive.clone();
                // stable ordering: degree descending, id ascending
                sorted.sort_by_key(|&n| (std::cmp::Reverse(topo.degree(n)), n));
                sorted.truncate(count);
                sorted
            }
            TargetingStrategy::Region => {
                if alive.is_empty() || count == 0 {
                    return Vec::new();
                }
                let epicenter = alive[rng.index(alive.len())];
                let mut seen = vec![false; topo.node_count()];
                let mut queue = std::collections::VecDeque::from([epicenter]);
                seen[epicenter] = true;
                let mut region = Vec::new();
                while let Some(u) = queue.pop_front() {
                    if region.len() >= count {
                        break;
                    }
                    region.push(u);
                    for &v in topo.neighbors(u) {
                        if self.alive[v] && !seen[v] {
                            seen[v] = true;
                            queue.push_back(v);
                        }
                    }
                }
                region
            }
            TargetingStrategy::Rack { racks } => {
                let racks = (*racks).clamp(1, topo.node_count());
                let rack_size = topo.node_count().div_ceil(racks);
                let hit = rng.index(racks);
                let lo = hit * rack_size;
                let hi = ((hit + 1) * rack_size).min(topo.node_count());
                (lo..hi).filter(|&n| self.alive[n]).take(count).collect()
            }
            TargetingStrategy::Explicit(nodes) => {
                nodes.iter().copied().filter(|&n| self.alive[n]).take(count).collect()
            }
        }
    }

    /// Sever the link between `a` and `b` (no-op if absent or already cut).
    pub fn cut_link(&mut self, topo: &Topology, a: NodeId, b: NodeId) {
        if topo.has_link(a, b) && self.cut_links.insert((a.min(b), a.max(b))) {
            self.dirty = true;
        }
    }

    /// Restore a previously cut link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        if self.cut_links.remove(&(a.min(b), a.max(b))) {
            self.dirty = true;
        }
    }

    /// Is the link between `a` and `b` currently cut?
    pub fn is_link_cut(&self, a: NodeId, b: NodeId) -> bool {
        self.cut_links.contains(&(a.min(b), a.max(b)))
    }

    /// Number of currently cut links.
    pub fn cut_link_count(&self) -> usize {
        self.cut_links.len()
    }

    /// Split the alive subgraph into `parts` components by severing every
    /// edge that crosses a component boundary. Components are grown by
    /// multi-source BFS from `parts` random alive epicenters, so each part
    /// is contiguous; nodes stay alive but no message can cross the cut
    /// until [`FaultState::heal_partition`]. Replaces any active partition.
    /// Returns the number of links severed by the new cut.
    pub fn partition(&mut self, topo: &Topology, parts: usize, rng: &mut SimRng) -> usize {
        self.heal_partition();
        let alive = self.alive_nodes();
        let parts = parts.clamp(1, alive.len().max(1));
        if alive.is_empty() || parts < 2 {
            return 0;
        }
        // Deterministic multi-source BFS: epicenters drawn from the alive
        // set, FIFO expansion, first-assignment-wins tie-break.
        let mut group: Vec<Option<usize>> = vec![None; topo.node_count()];
        let mut queue = std::collections::VecDeque::new();
        for (g, i) in rng.sample_indices(alive.len(), parts).into_iter().enumerate() {
            group[alive[i]] = Some(g);
            queue.push_back(alive[i]);
        }
        while let Some(u) = queue.pop_front() {
            let gu = group[u].expect("queued nodes are assigned");
            for &v in topo.neighbors(u) {
                if self.alive[v] && group[v].is_none() {
                    group[v] = Some(gu);
                    queue.push_back(v);
                }
            }
        }
        for &(a, b) in &topo.edges() {
            // Edges with a dead endpoint are already unusable; edges inside
            // one component (or inside an unreached disconnected island,
            // where both groups are None) stay intact.
            if self.alive[a] && self.alive[b] && group[a] != group[b] {
                self.partition_cuts.insert((a.min(b), a.max(b)));
            }
        }
        if !self.partition_cuts.is_empty() {
            self.dirty = true;
        }
        self.partition_cuts.len()
    }

    /// Reconnect every link severed by the active partition. Idempotent;
    /// does not touch links cut by [`FaultState::cut_link`].
    pub fn heal_partition(&mut self) {
        if !self.partition_cuts.is_empty() {
            self.partition_cuts.clear();
            self.dirty = true;
        }
    }

    /// Is a partition currently in force?
    pub fn has_partition(&self) -> bool {
        !self.partition_cuts.is_empty()
    }

    /// Number of links severed by the active partition.
    pub fn partition_cut_count(&self) -> usize {
        self.partition_cuts.len()
    }

    /// Routing over the current alive subgraph (dead nodes and cut links
    /// removed), recomputing if the fault set changed since the last call.
    pub fn routing(&mut self, topo: &Topology) -> &Routing {
        if self.dirty {
            self.routing = if self.cut_links.is_empty() && self.partition_cuts.is_empty() {
                Routing::over_alive(topo, &self.alive)
            } else {
                // Rebuild a filtered topology without the cut links; this
                // path is rare (only link-attack and partition scenarios
                // pay for it).
                let edges: Vec<(NodeId, NodeId)> = topo
                    .edges()
                    .into_iter()
                    .filter(|&(a, b)| {
                        !self.cut_links.contains(&(a, b))
                            && !self.partition_cuts.contains(&(a, b))
                    })
                    .collect();
                let filtered =
                    Topology::from_edges("link-filtered", topo.node_count(), &edges);
                Routing::over_alive(&filtered, &self.alive)
            };
            self.dirty = false;
        }
        &self.routing
    }

    /// True when the alive subgraph is connected.
    pub fn survivors_connected(&self, topo: &Topology) -> bool {
        topo.is_connected_over(&self.alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed(11)
    }

    #[test]
    fn kill_and_restore_round_trip() {
        let t = Topology::mesh(3, 3);
        let mut f = FaultState::new(&t);
        assert_eq!(f.alive_count(), 9);
        f.kill(4);
        f.kill(4); // idempotent
        assert_eq!(f.alive_count(), 8);
        assert!(!f.is_alive(4));
        f.restore(4);
        assert_eq!(f.alive_count(), 9);
    }

    #[test]
    fn routing_recomputes_after_kill() {
        let t = Topology::mesh(5, 1); // line 0-1-2-3-4
        let mut f = FaultState::new(&t);
        assert!(f.routing(&t).reachable(0, 4));
        f.kill(2);
        assert!(!f.routing(&t).reachable(0, 4));
        f.restore(2);
        assert!(f.routing(&t).reachable(0, 4));
    }

    #[test]
    fn random_attack_kills_exactly_n() {
        let t = Topology::mesh(5, 5);
        let mut f = FaultState::new(&t);
        let killed = f.attack(&t, &TargetingStrategy::Random, 10, &mut rng());
        assert_eq!(killed.len(), 10);
        assert_eq!(f.alive_count(), 15);
    }

    #[test]
    fn attack_caps_at_alive_count() {
        let t = Topology::mesh(2, 2);
        let mut f = FaultState::new(&t);
        let killed = f.attack(&t, &TargetingStrategy::Random, 100, &mut rng());
        assert_eq!(killed.len(), 4);
        assert_eq!(f.alive_count(), 0);
    }

    #[test]
    fn degree_attack_hits_hub_first() {
        let t = Topology::star(8);
        let mut f = FaultState::new(&t);
        let killed = f.attack(&t, &TargetingStrategy::HighestDegree, 1, &mut rng());
        assert_eq!(killed, vec![0]);
        assert!(!f.survivors_connected(&t));
    }

    #[test]
    fn region_attack_is_contiguous() {
        let t = Topology::mesh(5, 5);
        let mut f = FaultState::new(&t);
        let killed = f.attack(&t, &TargetingStrategy::Region, 6, &mut rng());
        assert_eq!(killed.len(), 6);
        // Every victim after the first must neighbor some earlier victim.
        for (i, &v) in killed.iter().enumerate().skip(1) {
            assert!(
                killed[..i].iter().any(|&u| t.has_link(u, v)),
                "victim {v} not adjacent to earlier victims {:?}",
                &killed[..i]
            );
        }
    }

    #[test]
    fn link_cuts_reroute_and_restore() {
        // 3x1 line 0-1-2 plus nothing else: cutting 0-1 splits it.
        let t = Topology::mesh(3, 1);
        let mut f = FaultState::new(&t);
        assert_eq!(f.routing(&t).hops(0, 2), 2);
        f.cut_link(&t, 1, 0); // order-insensitive
        assert!(f.is_link_cut(0, 1));
        assert_eq!(f.cut_link_count(), 1);
        assert!(!f.routing(&t).reachable(0, 2));
        assert!(f.routing(&t).reachable(1, 2));
        f.restore_link(0, 1);
        assert_eq!(f.routing(&t).hops(0, 2), 2);
    }

    #[test]
    fn link_cut_forces_detour() {
        // 2x2 mesh: cutting one side lengthens the path but keeps connectivity.
        let t = Topology::mesh(2, 2);
        let mut f = FaultState::new(&t);
        assert_eq!(f.routing(&t).hops(0, 1), 1);
        f.cut_link(&t, 0, 1);
        assert_eq!(f.routing(&t).hops(0, 1), 3, "0-2-3-1 detour");
    }

    #[test]
    fn cutting_missing_link_is_noop() {
        let t = Topology::mesh(3, 1);
        let mut f = FaultState::new(&t);
        f.cut_link(&t, 0, 2); // not adjacent
        assert_eq!(f.cut_link_count(), 0);
        assert_eq!(f.routing(&t).hops(0, 2), 2);
    }

    #[test]
    fn node_and_link_faults_compose() {
        let t = Topology::mesh(3, 3);
        let mut f = FaultState::new(&t);
        f.kill(4); // center
        f.cut_link(&t, 0, 1);
        f.cut_link(&t, 0, 3);
        // node 0 is now fully isolated (both its links cut).
        assert!(!f.routing(&t).reachable(0, 8));
        assert!(f.routing(&t).reachable(1, 8));
        f.restore_link(0, 1);
        assert!(f.routing(&t).reachable(0, 8));
    }

    #[test]
    fn partition_splits_and_heals() {
        let t = Topology::mesh(5, 5);
        let mut f = FaultState::new(&t);
        let severed = f.partition(&t, 2, &mut rng());
        assert!(severed > 0);
        assert!(f.has_partition());
        assert_eq!(f.partition_cut_count(), severed);
        // Every node is still alive, but some alive pair is unreachable.
        assert_eq!(f.alive_count(), 25);
        let r = f.routing(&t).clone();
        let unreachable = (0..25)
            .flat_map(|a| (0..25).map(move |b| (a, b)))
            .filter(|&(a, b)| a != b && !r.reachable(a, b))
            .count();
        assert!(unreachable > 0, "a 2-way partition must disconnect some pair");
        f.heal_partition();
        assert!(!f.has_partition());
        assert!(f.routing(&t).reachable(0, 24));
    }

    #[test]
    fn partition_components_are_internally_connected() {
        let t = Topology::mesh(5, 5);
        let mut f = FaultState::new(&t);
        f.partition(&t, 3, &mut rng());
        let r = f.routing(&t).clone();
        // Reachability must be transitive-closed into disjoint groups: if a
        // can reach b and b can reach c then a can reach c.
        for a in 0..25 {
            for b in 0..25 {
                for c in 0..25 {
                    if r.reachable(a, b) && r.reachable(b, c) {
                        assert!(r.reachable(a, c), "{a}->{b}->{c} but not {a}->{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn heal_preserves_independent_link_cuts() {
        let t = Topology::mesh(5, 5);
        let mut f = FaultState::new(&t);
        f.cut_link(&t, 0, 1);
        f.partition(&t, 2, &mut rng());
        f.heal_partition();
        assert!(f.is_link_cut(0, 1), "heal must not restore attack-cut links");
        assert_eq!(f.cut_link_count(), 1);
    }

    #[test]
    fn repartition_replaces_previous_cut() {
        let t = Topology::mesh(5, 5);
        let mut f = FaultState::new(&t);
        let mut r = rng();
        f.partition(&t, 5, &mut r);
        let five_way = f.partition_cut_count();
        f.partition(&t, 2, &mut r);
        assert!(f.has_partition());
        assert!(
            f.partition_cut_count() < five_way,
            "2-way cut should sever fewer links than the 5-way it replaced"
        );
    }

    #[test]
    fn single_part_partition_is_noop() {
        let t = Topology::mesh(3, 3);
        let mut f = FaultState::new(&t);
        assert_eq!(f.partition(&t, 1, &mut rng()), 0);
        assert!(!f.has_partition());
    }

    #[test]
    fn rack_attack_kills_whole_domain() {
        let t = Topology::mesh(5, 5);
        let mut f = FaultState::new(&t);
        // 5 racks of 5 contiguous ids each.
        let killed = f.attack(&t, &TargetingStrategy::Rack { racks: 5 }, 25, &mut rng());
        assert_eq!(killed.len(), 5);
        let rack = killed[0] / 5;
        for &v in &killed {
            assert_eq!(v / 5, rack, "victims {killed:?} span racks");
        }
        // The whole domain died together.
        assert_eq!(killed, (rack * 5..rack * 5 + 5).collect::<Vec<_>>());
    }

    #[test]
    fn rack_attack_respects_count_cap() {
        let t = Topology::mesh(5, 5);
        let mut f = FaultState::new(&t);
        let killed = f.attack(&t, &TargetingStrategy::Rack { racks: 5 }, 3, &mut rng());
        assert_eq!(killed.len(), 3);
    }

    #[test]
    fn explicit_attack_skips_dead() {
        let t = Topology::mesh(3, 3);
        let mut f = FaultState::new(&t);
        f.kill(1);
        let killed = f.attack(
            &t,
            &TargetingStrategy::Explicit(vec![1, 2, 3]),
            10,
            &mut rng(),
        );
        assert_eq!(killed, vec![2, 3]);
    }
}
