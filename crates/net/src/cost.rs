//! The paper's message-accounting model.
//!
//! Section 5: *"the number of messages for resource information advertisement
//! to the network is counted as the number of links for all approaches. […]
//! HELP message requires the number of links for flooding, while PLEDGE
//! message takes the average number of shortest paths, which is 4 in this
//! particular network topology. So the total number of messages is counted as
//! the sum of 1) message flooding, and 2) communication for migration between
//! admission controls."*
//!
//! [`CostModel`] reproduces that accounting and offers an exact-hops variant
//! (a PLEDGE is charged the true shortest-path length of its sender→organizer
//! pair) so the effect of the paper's rounding can be quantified.

use crate::routing::Routing;
use crate::topology::{NodeId, Topology};

/// How a unicast message (PLEDGE, negotiation, migration) is charged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnicastCharge {
    /// Exact shortest-path hop count of the actual sender/receiver pair.
    ExactHops,
    /// A fixed per-message constant, as in the paper (they use 4.0 on the
    /// 5×5 mesh).
    Constant(f64),
    /// The topology's mean shortest-path length, computed once.
    MeanPath,
}

/// How a network-wide advertisement (HELP flood, PUSH dissemination) is
/// charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodCharge {
    /// One message per link, as in the paper ("counted as the number of
    /// links").
    PerLink,
    /// One message per alive node reached minus one (spanning-tree
    /// multicast), an optimistic lower bound used by the ablations.
    SpanningTree,
}

/// A message-cost model bound to a concrete topology + routing.
#[derive(Debug, Clone)]
pub struct CostModel {
    unicast: UnicastCharge,
    flood: FloodCharge,
    link_count: f64,
    mean_path: f64,
}

impl CostModel {
    /// The accounting used in the paper's Figures 6–7: floods cost
    /// `link_count`, unicasts cost a constant 4.
    pub fn paper(topo: &Topology) -> Self {
        Self::new(topo, &Routing::new(topo), UnicastCharge::Constant(4.0), FloodCharge::PerLink)
    }

    /// Exact accounting: floods cost `link_count`, unicasts cost true hops.
    pub fn exact(topo: &Topology, routing: &Routing) -> Self {
        Self::new(topo, routing, UnicastCharge::ExactHops, FloodCharge::PerLink)
    }

    /// Fully custom model.
    pub fn new(
        topo: &Topology,
        routing: &Routing,
        unicast: UnicastCharge,
        flood: FloodCharge,
    ) -> Self {
        CostModel {
            unicast,
            flood,
            link_count: topo.link_count() as f64,
            mean_path: routing.mean_path_length(),
        }
    }

    /// Cost of one network-wide advertisement originated anywhere.
    ///
    /// `alive_nodes` is only used by the spanning-tree variant.
    pub fn flood_cost(&self, alive_nodes: usize) -> f64 {
        match self.flood {
            FloodCharge::PerLink => self.link_count,
            FloodCharge::SpanningTree => alive_nodes.saturating_sub(1) as f64,
        }
    }

    /// Cost of one unicast from `src` to `dst`.
    ///
    /// Unreachable pairs cost zero under [`UnicastCharge::ExactHops`] — the
    /// message is simply lost, which is how the simulator treats partitions.
    pub fn unicast_cost(&self, routing: &Routing, src: NodeId, dst: NodeId) -> f64 {
        match self.unicast {
            UnicastCharge::ExactHops => {
                let h = routing.hops(src, dst);
                if h == crate::routing::HOPS_UNREACHABLE {
                    0.0
                } else {
                    f64::from(h)
                }
            }
            UnicastCharge::Constant(c) => c,
            UnicastCharge::MeanPath => self.mean_path,
        }
    }

    /// Cost of a migration negotiation: request plus response between the two
    /// admission controllers (2 × unicast), per DESIGN.md §5.
    pub fn negotiation_cost(&self, routing: &Routing, src: NodeId, dst: NodeId) -> f64 {
        2.0 * self.unicast_cost(routing, src, dst)
    }

    /// The unicast charging mode.
    pub fn unicast_mode(&self) -> UnicastCharge {
        self.unicast
    }

    /// The flood charging mode.
    pub fn flood_mode(&self) -> FloodCharge {
        self.flood
    }
}

/// Per-message-type ledger accumulated during a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MessageLedger {
    /// Cost charged to HELP floods (adaptive/pure PULL and REALTOR).
    pub help: f64,
    /// Cost charged to PLEDGE unicasts.
    pub pledge: f64,
    /// Cost charged to PUSH advertisements (pure/adaptive PUSH).
    pub push: f64,
    /// Cost charged to admission negotiation and migration signalling.
    pub migration: f64,
    /// Number of HELP floods.
    pub help_count: u64,
    /// Number of PLEDGE messages.
    pub pledge_count: u64,
    /// Number of PUSH advertisements.
    pub push_count: u64,
    /// Number of migration negotiations.
    pub migration_count: u64,
    /// Deliveries dropped by the unreliable channel (not charged — the
    /// send was already paid for; this counts what never arrived).
    pub lost_count: u64,
    /// Extra copies delivered by channel duplication.
    pub duplicated_count: u64,
    /// Messages (flood legs or unicasts) dropped because an active network
    /// partition separated sender and receiver. Like `lost_count`, this is
    /// accounting only — the send was already charged.
    pub partition_dropped_count: u64,
}

impl MessageLedger {
    /// Total charged cost across all message classes — the y-axis of the
    /// paper's Figure 6.
    pub fn total(&self) -> f64 {
        self.help + self.pledge + self.push + self.migration
    }

    /// Total message events (not cost).
    pub fn total_count(&self) -> u64 {
        self.help_count + self.pledge_count + self.push_count + self.migration_count
    }

    /// Record one HELP flood of the given cost.
    pub fn charge_help(&mut self, cost: f64) {
        self.help += cost;
        self.help_count += 1;
    }

    /// Record one PLEDGE unicast of the given cost.
    pub fn charge_pledge(&mut self, cost: f64) {
        self.pledge += cost;
        self.pledge_count += 1;
    }

    /// Record one PUSH advertisement of the given cost.
    pub fn charge_push(&mut self, cost: f64) {
        self.push += cost;
        self.push_count += 1;
    }

    /// Record one migration negotiation of the given cost.
    pub fn charge_migration(&mut self, cost: f64) {
        self.migration += cost;
        self.migration_count += 1;
    }

    /// Record one delivery dropped by the channel.
    pub fn count_lost(&mut self) {
        self.lost_count += 1;
    }

    /// Record one duplicate copy delivered by the channel.
    pub fn count_duplicated(&mut self) {
        self.duplicated_count += 1;
    }

    /// Record one message dropped at a partition boundary.
    pub fn count_partition_dropped(&mut self) {
        self.partition_dropped_count += 1;
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &MessageLedger) {
        self.help += other.help;
        self.pledge += other.pledge;
        self.push += other.push;
        self.migration += other.migration;
        self.help_count += other.help_count;
        self.pledge_count += other.pledge_count;
        self.push_count += other.push_count;
        self.migration_count += other.migration_count;
        self.lost_count += other.lost_count;
        self.duplicated_count += other.duplicated_count;
        self.partition_dropped_count += other.partition_dropped_count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_on_paper_mesh() {
        let t = Topology::mesh(5, 5);
        let r = Routing::new(&t);
        let m = CostModel::paper(&t);
        assert_eq!(m.flood_cost(25), 40.0);
        assert_eq!(m.unicast_cost(&r, 0, 24), 4.0);
        assert_eq!(m.negotiation_cost(&r, 0, 24), 8.0);
    }

    #[test]
    fn exact_model_uses_hops() {
        let t = Topology::mesh(5, 5);
        let r = Routing::new(&t);
        let m = CostModel::exact(&t, &r);
        assert_eq!(m.unicast_cost(&r, 0, 24), 8.0);
        assert_eq!(m.unicast_cost(&r, 0, 1), 1.0);
        assert_eq!(m.unicast_cost(&r, 3, 3), 0.0);
    }

    #[test]
    fn mean_path_mode() {
        let t = Topology::mesh(5, 5);
        let r = Routing::new(&t);
        let m = CostModel::new(&t, &r, UnicastCharge::MeanPath, FloodCharge::PerLink);
        let c = m.unicast_cost(&r, 0, 1);
        assert!((c - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn spanning_tree_flood() {
        let t = Topology::mesh(5, 5);
        let r = Routing::new(&t);
        let m = CostModel::new(&t, &r, UnicastCharge::ExactHops, FloodCharge::SpanningTree);
        assert_eq!(m.flood_cost(25), 24.0);
        assert_eq!(m.flood_cost(10), 9.0);
        assert_eq!(m.flood_cost(0), 0.0);
    }

    #[test]
    fn unreachable_unicast_is_free() {
        let t = Topology::mesh(5, 1);
        let mut alive = vec![true; 5];
        alive[2] = false;
        let r = Routing::over_alive(&t, &alive);
        let m = CostModel::exact(&t, &r);
        assert_eq!(m.unicast_cost(&r, 0, 4), 0.0);
    }

    #[test]
    fn ledger_accumulates_and_merges() {
        let mut a = MessageLedger::default();
        a.charge_help(40.0);
        a.charge_pledge(4.0);
        a.charge_pledge(4.0);
        a.charge_migration(8.0);
        assert_eq!(a.total(), 56.0);
        assert_eq!(a.total_count(), 4);

        let mut b = MessageLedger::default();
        b.charge_push(40.0);
        b.count_lost();
        b.count_duplicated();
        b.count_duplicated();
        b.count_partition_dropped();
        b.merge(&a);
        assert_eq!(b.total(), 96.0);
        assert_eq!(b.push_count, 1);
        assert_eq!(b.pledge_count, 2);
        assert_eq!(b.lost_count, 1);
        assert_eq!(b.duplicated_count, 2);
        assert_eq!(b.partition_dropped_count, 1);
        // Channel accounting never alters charged cost.
        assert_eq!(b.total_count(), 5);
    }
}
