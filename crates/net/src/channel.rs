//! Unreliable-channel model — loss, latency, jitter and duplication.
//!
//! The paper's stack sends HELP over IP multicast and PLEDGE over UDP (§6),
//! both best-effort: datagrams can be dropped, delayed, reordered or
//! duplicated by the network. [`LinkQuality`] captures those per-delivery
//! impairments; [`ChannelModel`] applies a base quality to every delivery
//! and lets scripted attacks degrade individual links on top of it
//! (`AttackAction::DegradeLinks`).
//!
//! Semantics shared by the DES world and the agile in-process fabric:
//!
//! * **loss** — each delivery is dropped independently with probability
//!   `loss` (one Bernoulli draw);
//! * **latency/jitter** — a delivered copy arrives `extra_latency` plus a
//!   uniform draw in `[0, jitter)` later than the nominal delivery time;
//! * **duplication** — with probability `duplication` a second copy is
//!   delivered, with its own independently drawn extra delay.
//!
//! The RNG draw order is fixed (loss, then jitter, then duplication, then
//! the duplicate's jitter) and draws are skipped whenever the corresponding
//! probability or span is zero, so an all-zero quality consumes no
//! randomness at all. That makes the ideal channel and an explicitly
//! configured zero-impairment channel *bit-for-bit equivalent*, which is the
//! refactor-safety property the simulator's golden tests pin.

use crate::routing::Routing;
use crate::topology::NodeId;
use realtor_simcore::{SimDuration, SimRng};

/// Per-delivery impairments of a link (or of a whole end-to-end path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Probability that a delivery is dropped, in `[0, 1]`.
    pub loss: f64,
    /// Deterministic extra delivery delay on top of the nominal latency.
    pub extra_latency: SimDuration,
    /// Additional uniform random delay in `[0, jitter)` per delivered copy.
    pub jitter: SimDuration,
    /// Probability that a delivered message arrives twice, in `[0, 1]`.
    pub duplication: f64,
}

/// The outcome of sampling one delivery through a channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampled {
    /// The message never arrives.
    Lost,
    /// The message arrives `delay` after its nominal delivery time; if the
    /// channel duplicated it, a second copy arrives with its own delay.
    Delivered {
        /// Extra delay of the (first) copy.
        delay: SimDuration,
        /// Extra delay of the duplicate copy, when one was created.
        duplicate: Option<SimDuration>,
    },
}

impl LinkQuality {
    /// A perfect link: nothing lost, delayed or duplicated.
    pub const IDEAL: LinkQuality = LinkQuality {
        loss: 0.0,
        extra_latency: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        duplication: 0.0,
    };

    /// A loss-only quality (the classic "p% lossy network").
    pub fn lossy(loss: f64) -> Self {
        LinkQuality {
            loss,
            ..LinkQuality::IDEAL
        }
    }

    /// The canonical "degraded link" used by `AttackAction::DegradeLinks`
    /// when the scenario does not override it: heavy loss plus visible
    /// delay spread.
    pub fn degraded() -> Self {
        LinkQuality {
            loss: 0.25,
            extra_latency: SimDuration::from_millis(20),
            jitter: SimDuration::from_millis(20),
            duplication: 0.02,
        }
    }

    /// True when this quality impairs nothing (and therefore samples
    /// without consuming randomness).
    pub fn is_ideal(&self) -> bool {
        self.loss <= 0.0
            && self.extra_latency.is_zero()
            && self.jitter.is_zero()
            && self.duplication <= 0.0
    }

    /// Panic unless probabilities are finite and within `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.loss.is_finite() && (0.0..=1.0).contains(&self.loss),
            "loss probability {} outside [0, 1]",
            self.loss
        );
        assert!(
            self.duplication.is_finite() && (0.0..=1.0).contains(&self.duplication),
            "duplication probability {} outside [0, 1]",
            self.duplication
        );
    }

    /// Compose two qualities traversed in sequence: losses and duplications
    /// combine as independent events, delays add.
    pub fn compose(&self, other: &LinkQuality) -> LinkQuality {
        LinkQuality {
            loss: 1.0 - (1.0 - self.loss) * (1.0 - other.loss),
            extra_latency: self.extra_latency + other.extra_latency,
            jitter: self.jitter + other.jitter,
            duplication: 1.0 - (1.0 - self.duplication) * (1.0 - other.duplication),
        }
    }

    /// Sample one delivery. Draw order: loss, jitter, duplication, duplicate
    /// jitter; draws with zero probability/span are skipped entirely.
    pub fn sample(&self, rng: &mut SimRng) -> Sampled {
        if rng.bernoulli(self.loss) {
            return Sampled::Lost;
        }
        let delay = self.extra_latency + self.draw_jitter(rng);
        let duplicate = rng
            .bernoulli(self.duplication)
            .then(|| self.extra_latency + self.draw_jitter(rng));
        Sampled::Delivered { delay, duplicate }
    }

    fn draw_jitter(&self, rng: &mut SimRng) -> SimDuration {
        if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(rng.range_f64(0.0, self.jitter.as_secs_f64()))
        }
    }
}

impl Default for LinkQuality {
    fn default() -> Self {
        LinkQuality::IDEAL
    }
}

/// The network-wide channel state: a base quality applied to every delivery
/// plus a set of individually degraded links.
///
/// A delivery from `src` to `dst` experiences the base quality composed with
/// one application of the degraded quality per degraded link on the current
/// shortest `src → dst` path.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelModel {
    base: LinkQuality,
    degraded_quality: LinkQuality,
    /// Degraded links as `(min, max)` endpoint pairs.
    degraded: std::collections::BTreeSet<(NodeId, NodeId)>,
}

impl ChannelModel {
    /// The perfect network: every delivery arrives exactly once, on time.
    pub fn ideal() -> Self {
        Self::uniform(LinkQuality::IDEAL)
    }

    /// Every delivery experiences `base`; no links are degraded yet.
    pub fn uniform(base: LinkQuality) -> Self {
        base.validate();
        ChannelModel {
            base,
            degraded_quality: LinkQuality::degraded(),
            degraded: Default::default(),
        }
    }

    /// Builder-style: the quality layered onto degraded links.
    pub fn with_degraded_quality(mut self, quality: LinkQuality) -> Self {
        quality.validate();
        self.degraded_quality = quality;
        self
    }

    /// The base (everywhere) quality.
    pub fn base(&self) -> LinkQuality {
        self.base
    }

    /// The quality layered onto each degraded link.
    pub fn degraded_quality(&self) -> LinkQuality {
        self.degraded_quality
    }

    /// True when every delivery is perfect — the fast path that bypasses
    /// sampling (and consumes no randomness).
    pub fn is_ideal(&self) -> bool {
        self.base.is_ideal() && self.degraded.is_empty()
    }

    /// Mark the link `a — b` degraded. Returns false when already degraded.
    pub fn degrade_link(&mut self, a: NodeId, b: NodeId) -> bool {
        self.degraded.insert((a.min(b), a.max(b)))
    }

    /// Restore one link's quality. Returns false when it was not degraded.
    pub fn restore_link_quality(&mut self, a: NodeId, b: NodeId) -> bool {
        self.degraded.remove(&(a.min(b), a.max(b)))
    }

    /// Restore every degraded link (`AttackAction::RestoreLinkQuality`).
    pub fn restore_all_quality(&mut self) {
        self.degraded.clear();
    }

    /// Is the link `a — b` currently degraded?
    pub fn is_link_degraded(&self, a: NodeId, b: NodeId) -> bool {
        self.degraded.contains(&(a.min(b), a.max(b)))
    }

    /// Number of currently degraded links.
    pub fn degraded_link_count(&self) -> usize {
        self.degraded.len()
    }

    /// The effective quality of one `src → dst` delivery under `routing`:
    /// the base quality composed with the degraded quality once per degraded
    /// link on the shortest path. Unreachable or trivial pairs see the base
    /// quality (the caller handles reachability separately).
    pub fn effective_quality(&self, routing: &Routing, src: NodeId, dst: NodeId) -> LinkQuality {
        if self.degraded.is_empty() || src == dst || !routing.reachable(src, dst) {
            return self.base;
        }
        let mut q = self.base;
        let mut cur = src;
        while cur != dst {
            let Some(next) = routing.next_hop(cur, dst) else {
                break;
            };
            if self.is_link_degraded(cur, next) {
                q = q.compose(&self.degraded_quality);
            }
            cur = next;
        }
        q
    }
}

impl Default for ChannelModel {
    fn default() -> Self {
        ChannelModel::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn rng() -> SimRng {
        SimRng::stream(7, "channel")
    }

    #[test]
    fn ideal_quality_samples_nothing() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(
            LinkQuality::IDEAL.sample(&mut a),
            Sampled::Delivered {
                delay: SimDuration::ZERO,
                duplicate: None
            }
        );
        // No randomness consumed: the next draw matches a fresh stream.
        assert_eq!(a.u64(), b.u64());
    }

    #[test]
    fn full_loss_always_loses() {
        let q = LinkQuality::lossy(1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(q.sample(&mut r), Sampled::Lost);
        }
    }

    #[test]
    fn partial_loss_is_partial_and_seeded() {
        let q = LinkQuality::lossy(0.3);
        let count = |mut r: SimRng| {
            (0..1000)
                .filter(|_| matches!(q.sample(&mut r), Sampled::Lost))
                .count()
        };
        let lost = count(rng());
        assert!((200..400).contains(&lost), "lost {lost}");
        assert_eq!(lost, count(rng()), "same seed, same losses");
    }

    #[test]
    fn jitter_bounds_delay() {
        let q = LinkQuality {
            loss: 0.0,
            extra_latency: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(5),
            duplication: 0.0,
        };
        let mut r = rng();
        for _ in 0..200 {
            match q.sample(&mut r) {
                Sampled::Delivered { delay, duplicate } => {
                    assert!(delay >= SimDuration::from_millis(10));
                    assert!(delay < SimDuration::from_millis(15));
                    assert_eq!(duplicate, None);
                }
                Sampled::Lost => panic!("lossless channel lost a message"),
            }
        }
    }

    #[test]
    fn duplication_produces_second_copies() {
        let q = LinkQuality {
            duplication: 1.0,
            ..LinkQuality::IDEAL
        };
        let mut r = rng();
        match q.sample(&mut r) {
            Sampled::Delivered { duplicate, .. } => assert!(duplicate.is_some()),
            Sampled::Lost => panic!("lossless channel lost a message"),
        }
    }

    #[test]
    fn compose_combines_independently() {
        let a = LinkQuality::lossy(0.5);
        let b = LinkQuality::lossy(0.5);
        let c = a.compose(&b);
        assert!((c.loss - 0.75).abs() < 1e-12);
        let d = LinkQuality {
            extra_latency: SimDuration::from_millis(3),
            jitter: SimDuration::from_millis(1),
            ..LinkQuality::IDEAL
        };
        let e = d.compose(&d);
        assert_eq!(e.extra_latency, SimDuration::from_millis(6));
        assert_eq!(e.jitter, SimDuration::from_millis(2));
        assert_eq!(e.loss, 0.0);
    }

    #[test]
    fn degraded_links_affect_only_paths_crossing_them() {
        // Line 0-1-2-3: degrade the middle link.
        let topo = Topology::mesh(4, 1);
        let routing = Routing::new(&topo);
        let mut ch = ChannelModel::uniform(LinkQuality::lossy(0.1))
            .with_degraded_quality(LinkQuality::lossy(0.5));
        assert!(ch.degrade_link(2, 1), "first degrade");
        assert!(!ch.degrade_link(1, 2), "idempotent");
        assert!(!ch.is_ideal());

        // 0 → 1 avoids the degraded link: base quality only.
        let q01 = ch.effective_quality(&routing, 0, 1);
        assert!((q01.loss - 0.1).abs() < 1e-12);
        // 0 → 3 crosses it: composed loss 1 - 0.9*0.5 = 0.55.
        let q03 = ch.effective_quality(&routing, 0, 3);
        assert!((q03.loss - 0.55).abs() < 1e-12, "loss {}", q03.loss);

        ch.restore_all_quality();
        assert_eq!(ch.degraded_link_count(), 0);
        let q = ch.effective_quality(&routing, 0, 3);
        assert!((q.loss - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ideal_channel_is_ideal_until_degraded() {
        let mut ch = ChannelModel::ideal();
        assert!(ch.is_ideal());
        ch.degrade_link(0, 1);
        assert!(!ch.is_ideal());
        assert!(ch.restore_link_quality(1, 0));
        assert!(ch.is_ideal());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        ChannelModel::uniform(LinkQuality::lossy(1.5));
    }
}
