//! Property-based tests for topologies and routing.

use proptest::prelude::*;
use realtor_net::{FaultState, Routing, TargetingStrategy, Topology, HOPS_UNREACHABLE};
use realtor_simcore::SimRng;

proptest! {
    /// The mesh link formula `2wh - w - h` holds for all sizes.
    #[test]
    fn mesh_link_count(w in 1usize..12, h in 1usize..12) {
        let t = Topology::mesh(w, h);
        prop_assert_eq!(t.node_count(), w * h);
        prop_assert_eq!(t.link_count(), 2 * w * h - w - h);
        prop_assert!(t.is_connected());
    }

    /// Distances are symmetric and satisfy the triangle inequality on random
    /// connected graphs.
    #[test]
    fn routing_metric_axioms(n in 4usize..16, seed in 0u64..1000) {
        let t = Topology::random_connected(n, 0.4, seed);
        let r = Routing::new(&t);
        for a in 0..n {
            prop_assert_eq!(r.hops(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(r.hops(a, b), r.hops(b, a));
                for c in 0..n {
                    prop_assert!(r.hops(a, c) <= r.hops(a, b) + r.hops(b, c));
                }
            }
        }
    }

    /// Mesh hop distance equals Manhattan distance.
    #[test]
    fn mesh_distance_is_manhattan(w in 2usize..8, h in 2usize..8) {
        let t = Topology::mesh(w, h);
        let r = Routing::new(&t);
        for a in 0..w * h {
            for b in 0..w * h {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                let manhattan = ax.abs_diff(bx) + ay.abs_diff(by);
                prop_assert_eq!(r.hops(a, b) as usize, manhattan);
            }
        }
    }

    /// Every reconstructed path is a valid walk of the stated length.
    #[test]
    fn paths_valid_on_random_graphs(n in 4usize..14, seed in 0u64..500) {
        let t = Topology::random_connected(n, 0.35, seed);
        let r = Routing::new(&t);
        for a in 0..n {
            for b in 0..n {
                let p = r.path(a, b).unwrap();
                prop_assert_eq!(p.len() as u32, r.hops(a, b) + 1);
                for win in p.windows(2) {
                    prop_assert!(t.has_link(win[0], win[1]));
                }
            }
        }
    }

    /// Killing nodes never creates new reachability, and restoring all
    /// victims restores full reachability.
    #[test]
    fn failures_only_remove_reachability(seed in 0u64..500, kills in 1usize..10) {
        let t = Topology::mesh(4, 4);
        let full = Routing::new(&t);
        let mut f = FaultState::new(&t);
        let mut rng = SimRng::from_seed(seed);
        let killed = f.attack(&t, &TargetingStrategy::Random, kills, &mut rng);
        let damaged = f.routing(&t).clone();
        for a in 0..16 {
            for b in 0..16 {
                if damaged.reachable(a, b) {
                    prop_assert!(full.reachable(a, b));
                    prop_assert!(damaged.hops(a, b) >= full.hops(a, b));
                }
                if a != b && (killed.contains(&a) || killed.contains(&b)) {
                    prop_assert_eq!(damaged.hops(a, b), HOPS_UNREACHABLE);
                }
            }
        }
        for v in killed {
            f.restore(v);
        }
        let restored = f.routing(&t);
        for a in 0..16 {
            for b in 0..16 {
                prop_assert_eq!(restored.hops(a, b), full.hops(a, b));
            }
        }
    }
}
