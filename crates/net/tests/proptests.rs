//! Property-based tests for topologies and routing, on the in-tree
//! `check` harness.

use realtor_net::{FaultState, Routing, TargetingStrategy, Topology, HOPS_UNREACHABLE};
use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};

/// The mesh link formula `2wh - w - h` holds for all sizes.
#[test]
fn mesh_link_count() {
    forall(
        "mesh_link_count",
        0x4E7001,
        128,
        |r| (gen::usize_in(r, 1, 12), gen::usize_in(r, 1, 12)),
        |&(w, h)| {
            let t = Topology::mesh(w, h);
            prop_assert_eq!(t.node_count(), w * h);
            prop_assert_eq!(t.link_count(), 2 * w * h - w - h);
            prop_assert!(t.is_connected());
            Ok(())
        },
    );
}

/// Distances are symmetric and satisfy the triangle inequality on random
/// connected graphs.
#[test]
fn routing_metric_axioms() {
    forall(
        "routing_metric_axioms",
        0x4E7002,
        64,
        |r| (gen::usize_in(r, 4, 16), gen::u64_in(r, 0, 1000)),
        |&(n, seed)| {
            let t = Topology::random_connected(n, 0.4, seed);
            let r = Routing::new(&t);
            for a in 0..n {
                prop_assert_eq!(r.hops(a, a), 0);
                for b in 0..n {
                    prop_assert_eq!(r.hops(a, b), r.hops(b, a));
                    for c in 0..n {
                        prop_assert!(r.hops(a, c) <= r.hops(a, b) + r.hops(b, c));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Mesh hop distance equals Manhattan distance.
#[test]
fn mesh_distance_is_manhattan() {
    forall(
        "mesh_distance_is_manhattan",
        0x4E7003,
        64,
        |r| (gen::usize_in(r, 2, 8), gen::usize_in(r, 2, 8)),
        |&(w, h)| {
            let t = Topology::mesh(w, h);
            let r = Routing::new(&t);
            for a in 0..w * h {
                for b in 0..w * h {
                    let (ax, ay) = (a % w, a / w);
                    let (bx, by) = (b % w, b / w);
                    let manhattan = ax.abs_diff(bx) + ay.abs_diff(by);
                    prop_assert_eq!(r.hops(a, b) as usize, manhattan);
                }
            }
            Ok(())
        },
    );
}

/// Every reconstructed path is a valid walk of the stated length.
#[test]
fn paths_valid_on_random_graphs() {
    forall(
        "paths_valid_on_random_graphs",
        0x4E7004,
        64,
        |r| (gen::usize_in(r, 4, 14), gen::u64_in(r, 0, 500)),
        |&(n, seed)| {
            let t = Topology::random_connected(n, 0.35, seed);
            let r = Routing::new(&t);
            for a in 0..n {
                for b in 0..n {
                    let p = r.path(a, b).unwrap();
                    prop_assert_eq!(p.len() as u32, r.hops(a, b) + 1);
                    for win in p.windows(2) {
                        prop_assert!(t.has_link(win[0], win[1]));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Killing nodes never creates new reachability, and restoring all
/// victims restores full reachability.
#[test]
fn failures_only_remove_reachability() {
    forall(
        "failures_only_remove_reachability",
        0x4E7005,
        128,
        |r| (gen::u64_in(r, 0, 500), gen::usize_in(r, 1, 10)),
        |&(seed, kills)| {
            let t = Topology::mesh(4, 4);
            let full = Routing::new(&t);
            let mut f = FaultState::new(&t);
            let mut rng = SimRng::from_seed(seed);
            let killed = f.attack(&t, &TargetingStrategy::Random, kills, &mut rng);
            let damaged = f.routing(&t).clone();
            for a in 0..16 {
                for b in 0..16 {
                    if damaged.reachable(a, b) {
                        prop_assert!(full.reachable(a, b));
                        prop_assert!(damaged.hops(a, b) >= full.hops(a, b));
                    }
                    if a != b && (killed.contains(&a) || killed.contains(&b)) {
                        prop_assert_eq!(damaged.hops(a, b), HOPS_UNREACHABLE);
                    }
                }
            }
            for v in killed {
                f.restore(v);
            }
            let restored = f.routing(&t);
            for a in 0..16 {
                for b in 0..16 {
                    prop_assert_eq!(restored.hops(a, b), full.hops(a, b));
                }
            }
            Ok(())
        },
    );
}
