//! Property-based tests for the host model, on the in-tree `check`
//! harness.

use realtor_node::{
    ConstantUtilizationServer, EdfScheduler, Priority, Task, TaskId, UtilizationAdmission,
    WorkQueue,
};
use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};

/// Queue invariant: the backlog never exceeds capacity and never goes
/// negative, under any admit/withdraw/observe sequence.
#[test]
fn queue_backlog_stays_in_bounds() {
    forall(
        "queue_backlog_stays_in_bounds",
        0x40DE01,
        256,
        |r| {
            gen::vec(r, 1, 200, |r| {
                (
                    gen::u8_in(r, 0, 3),
                    gen::f64_in(r, 0.1, 50.0),
                    gen::f64_in(r, 0.0, 5.0),
                )
            })
        },
        |ops| {
            let mut q = WorkQueue::new(100.0);
            let mut now = 0.0f64;
            for &(op, size, dt) in ops {
                now += dt;
                let t = SimTime::from_secs_f64(now);
                match op {
                    0 => {
                        let _ = q.admit(t, size);
                    }
                    1 => q.withdraw(t, size),
                    _ => q.sync(t),
                }
                let b = q.backlog_at(t);
                prop_assert!(b >= 0.0, "negative backlog {b}");
                prop_assert!(b <= 100.0 + 1e-6, "backlog over capacity {b}");
                prop_assert!((0.0..=1.0).contains(&q.frac_at(t)));
                prop_assert!((q.backlog_at(t) + q.headroom_at(t) - 100.0).abs() < 1e-6);
            }
            Ok(())
        },
    );
}

/// Admission accounting: total admitted work equals the sum of accepted
/// sizes, and every acceptance respected the capacity at that instant.
#[test]
fn queue_admission_accounting() {
    forall(
        "queue_admission_accounting",
        0x40DE02,
        256,
        |r| {
            (
                gen::vec(r, 1, 100, |r| gen::f64_in(r, 0.1, 40.0)),
                gen::vec(r, 1, 100, |r| gen::f64_in(r, 0.0, 3.0)),
            )
        },
        |(sizes, gaps)| {
            let mut q = WorkQueue::new(100.0);
            let mut now = 0.0;
            let mut accepted_work = 0.0;
            let mut accepted_n = 0u64;
            for (s, g) in sizes.iter().zip(gaps.iter().cycle()) {
                now += g;
                let t = SimTime::from_secs_f64(now);
                let before = q.backlog_at(t);
                if q.admit(t, *s).is_ok() {
                    prop_assert!(before + s <= 100.0 + 1e-6);
                    accepted_work += s;
                    accepted_n += 1;
                } else {
                    prop_assert!(before + s > 100.0 - 1e-6);
                }
            }
            let (n, w) = q.admitted_totals();
            prop_assert_eq!(n, accepted_n);
            prop_assert!((w - accepted_work).abs() < 1e-6);
            Ok(())
        },
    );
}

/// drain-to time is exact: at the reported instant the backlog equals
/// the requested level.
#[test]
fn queue_drain_time_exact() {
    forall(
        "queue_drain_time_exact",
        0x40DE03,
        256,
        |r| (gen::f64_in(r, 1.0, 100.0), gen::f64_in(r, 0.0, 100.0)),
        |&(fill, level)| {
            let mut q = WorkQueue::new(100.0);
            q.admit(SimTime::ZERO, fill).unwrap();
            match q.time_to_drain_to(SimTime::ZERO, level) {
                Some(t) => {
                    prop_assert!(fill > level);
                    prop_assert!((q.backlog_at(t) - level).abs() < 1e-6);
                }
                None => prop_assert!(fill <= level),
            }
            Ok(())
        },
    );
}

/// EDF dispatch order is total and respects (priority, deadline, id)
/// lexicographic order.
#[test]
fn edf_dispatch_is_sorted() {
    forall(
        "edf_dispatch_is_sorted",
        0x40DE04,
        256,
        |r| {
            gen::vec(r, 1, 100, |r| {
                (
                    gen::u8_in(r, 0, 4),
                    gen::u64_in(r, 1, 1000),
                    gen::u64_in(r, 0, 10_000),
                )
            })
        },
        |tasks| {
            let mut s = EdfScheduler::new();
            for (i, &(prio, dl, _)) in tasks.iter().enumerate() {
                s.enqueue(Task::real_time(
                    TaskId(i as u64),
                    1.0,
                    SimTime::ZERO,
                    SimTime::from_secs(dl),
                    Priority(prio),
                ));
            }
            let mut prev: Option<(u8, SimTime, u64)> = None;
            while let Some(t) = s.dispatch() {
                let key = (t.priority.0, t.deadline.unwrap(), t.id.0);
                if let Some(p) = prev {
                    prop_assert!(p <= key, "dispatch order violated: {p:?} then {key:?}");
                }
                prev = Some(key);
            }
            Ok(())
        },
    );
}

/// CUS deadlines are non-decreasing and never allocate beyond the rate:
/// total demand assigned by deadline d is at most U * d when the server
/// is busy from time zero.
#[test]
fn cus_rate_bound() {
    forall(
        "cus_rate_bound",
        0x40DE05,
        256,
        |r| {
            (
                gen::f64_in(r, 0.05, 1.0),
                gen::vec(r, 1, 80, |r| gen::f64_in(r, 0.01, 5.0)),
            )
        },
        |(u, demands)| {
            let u = *u;
            let mut cus = ConstantUtilizationServer::new(u);
            let mut total = 0.0;
            let mut prev = SimTime::ZERO;
            for &e in demands {
                let d = cus.assign_deadline(SimTime::ZERO, e);
                prop_assert!(d >= prev, "deadlines must be monotone");
                total += e;
                prop_assert!(total <= u * d.as_secs_f64() + 1e-6, "rate bound violated");
                prev = d;
            }
            Ok(())
        },
    );
}

/// Utilization admission never over-allocates and release restores the
/// exact share.
#[test]
fn utilization_admission_conserves() {
    forall(
        "utilization_admission_conserves",
        0x40DE06,
        256,
        |r| gen::vec(r, 1, 60, |r| gen::f64_in(r, 0.01, 0.6)),
        |shares| {
            let mut ac = UtilizationAdmission::new(1.0);
            let mut admitted = Vec::new();
            for (i, &s) in shares.iter().enumerate() {
                if ac.try_reserve(TaskId(i as u64), s) == realtor_node::AdmissionDecision::Admitted {
                    admitted.push((TaskId(i as u64), s));
                }
                prop_assert!(ac.allocated() <= 1.0 + 1e-9);
            }
            for &(id, _) in &admitted {
                ac.release(id);
            }
            prop_assert!(ac.allocated().abs() < 1e-9);
            prop_assert_eq!(ac.reservation_count(), 0);
            Ok(())
        },
    );
}
