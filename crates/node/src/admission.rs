//! Admission control.
//!
//! Section 3: *"Admission Control is in charge of the admission decision,
//! component instantiation, and migration. […] the admission control
//! overhead […] becomes a simple utilization test, and available CPU
//! resource can be directly measured in terms of unallocated utilization."*
//!
//! Two admission tests are provided:
//! * [`UtilizationAdmission`] — the guaranteed-rate test of the Agile
//!   Objects runtime: a component with utilization share `u` is admitted iff
//!   allocated + u ≤ capacity,
//! * [`QueueAdmission`] — the Section-5 simulation test: a task fits iff the
//!   work queue can absorb its size.

use crate::queue::{AdmitError, WorkQueue};
use crate::task::TaskId;
use realtor_simcore::SimTime;

/// Outcome of an admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admitted.
    Admitted,
    /// Refused: not enough spare resource.
    Refused,
}

/// Utilization-based admission for guaranteed-rate components.
#[derive(Debug, Clone)]
pub struct UtilizationAdmission {
    capacity: f64,
    allocated: f64,
    reservations: std::collections::BTreeMap<TaskId, f64>,
}

impl UtilizationAdmission {
    /// A controller managing `capacity` total utilization (1.0 = one CPU).
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0);
        UtilizationAdmission {
            capacity,
            allocated: 0.0,
            reservations: Default::default(),
        }
    }

    /// Currently unallocated utilization — what a PLEDGE would advertise.
    pub fn available(&self) -> f64 {
        (self.capacity - self.allocated).max(0.0)
    }

    /// Currently allocated utilization.
    pub fn allocated(&self) -> f64 {
        self.allocated
    }

    /// Try to reserve `share` for component `id`.
    pub fn try_reserve(&mut self, id: TaskId, share: f64) -> AdmissionDecision {
        assert!(share > 0.0);
        if self.reservations.contains_key(&id) {
            return AdmissionDecision::Refused; // double reservation is a bug upstream
        }
        if self.allocated + share > self.capacity + 1e-12 {
            return AdmissionDecision::Refused;
        }
        self.allocated += share;
        self.reservations.insert(id, share);
        AdmissionDecision::Admitted
    }

    /// Release the reservation of `id` (component completed or migrated
    /// away). Unknown ids are ignored (idempotence under message replay).
    pub fn release(&mut self, id: TaskId) {
        if let Some(share) = self.reservations.remove(&id) {
            self.allocated = (self.allocated - share).max(0.0);
        }
    }

    /// Number of live reservations.
    pub fn reservation_count(&self) -> usize {
        self.reservations.len()
    }
}

/// Queue-based admission for the Section-5 simulation model.
#[derive(Debug, Clone, Copy)]
pub struct QueueAdmission;

impl QueueAdmission {
    /// Apply the paper's test: admit iff the queue can absorb the task.
    pub fn decide(queue: &mut WorkQueue, now: SimTime, size_secs: f64) -> AdmissionDecision {
        match queue.admit(now, size_secs) {
            Ok(()) => AdmissionDecision::Admitted,
            Err(AdmitError::WouldOverflow) => AdmissionDecision::Refused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_test_admits_up_to_capacity() {
        let mut ac = UtilizationAdmission::new(1.0);
        assert_eq!(ac.try_reserve(TaskId(1), 0.5), AdmissionDecision::Admitted);
        assert_eq!(ac.try_reserve(TaskId(2), 0.5), AdmissionDecision::Admitted);
        assert_eq!(ac.try_reserve(TaskId(3), 0.01), AdmissionDecision::Refused);
        assert_eq!(ac.available(), 0.0);
    }

    #[test]
    fn release_frees_share() {
        let mut ac = UtilizationAdmission::new(1.0);
        ac.try_reserve(TaskId(1), 0.7);
        ac.release(TaskId(1));
        assert_eq!(ac.available(), 1.0);
        ac.release(TaskId(1)); // idempotent
        assert_eq!(ac.available(), 1.0);
        assert_eq!(ac.reservation_count(), 0);
    }

    #[test]
    fn double_reservation_refused() {
        let mut ac = UtilizationAdmission::new(1.0);
        ac.try_reserve(TaskId(1), 0.2);
        assert_eq!(ac.try_reserve(TaskId(1), 0.2), AdmissionDecision::Refused);
        assert!((ac.allocated() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn queue_admission_follows_queue_state() {
        let mut q = WorkQueue::new(100.0);
        let now = SimTime::ZERO;
        assert_eq!(
            QueueAdmission::decide(&mut q, now, 60.0),
            AdmissionDecision::Admitted
        );
        assert_eq!(
            QueueAdmission::decide(&mut q, now, 60.0),
            AdmissionDecision::Refused
        );
        // Refusal must not mutate the backlog.
        assert_eq!(q.backlog_at(now), 60.0);
    }
}
