//! Real-time schedulability simulation — validates the paper's §3 claim
//! that guaranteed-rate scheduling (EDF over Constant-Utilization-Server
//! style reservations) is what makes migration-time admission a "simple
//! utilization test".
//!
//! [`simulate_periodic`] runs a single-CPU preemptive-EDF or FIFO
//! simulation of a periodic task set (implicit deadlines) and reports
//! deadline misses. Under preemptive EDF a task set is schedulable iff its
//! total utilization is ≤ 1 (Liu & Layland), so the utilization-test
//! admission controller of [`crate::admission`] is exact for EDF hosts —
//! the property the experiments' `deadlines` ablation demonstrates against
//! a FIFO strawman.

use realtor_simcore::{SimDuration, SimTime};

/// A periodic task with implicit deadline (= period).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicTask {
    /// Worst-case execution time per job, seconds.
    pub wcet_secs: f64,
    /// Release period (and relative deadline), seconds.
    pub period_secs: f64,
}

impl PeriodicTask {
    /// CPU utilization share of this task.
    pub fn utilization(&self) -> f64 {
        self.wcet_secs / self.period_secs
    }
}

/// Dispatch policy of the simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Preemptive earliest-deadline-first (the Agile Objects job scheduler).
    EdfPreemptive,
    /// Non-preemptive first-come-first-served (the strawman).
    FifoNonPreemptive,
}

/// Outcome of one schedulability simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtReport {
    /// Jobs released within the horizon.
    pub released: u64,
    /// Jobs that completed (by the horizon).
    pub completed: u64,
    /// Completed jobs that missed their deadline.
    pub missed: u64,
}

impl RtReport {
    /// Fraction of completed jobs that missed their deadlines.
    pub fn miss_ratio(&self) -> f64 {
        realtor_simcore::stats::ratio(self.missed, self.completed)
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    release: SimTime,
    deadline: SimTime,
    remaining: f64,
    seq: u64,
}

/// Simulate a periodic task set on one CPU until `horizon`.
///
/// All tasks release their first job at time zero (the critical instant).
pub fn simulate_periodic(
    tasks: &[PeriodicTask],
    policy: DispatchPolicy,
    horizon: SimTime,
) -> RtReport {
    assert!(!tasks.is_empty());
    for t in tasks {
        assert!(t.wcet_secs > 0.0 && t.period_secs >= t.wcet_secs);
    }
    let mut report = RtReport::default();
    let mut next_release: Vec<SimTime> = vec![SimTime::ZERO; tasks.len()];
    let mut ready: Vec<Job> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut seq = 0u64;
    // Non-preemptive FIFO commits to the running job.
    let mut running: Option<Job> = None;

    loop {
        // Release every job due by `now`.
        for (i, t) in tasks.iter().enumerate() {
            while next_release[i] <= now && next_release[i] < horizon {
                ready.push(Job {
                    release: next_release[i],
                    deadline: next_release[i] + SimDuration::from_secs_f64(t.period_secs),
                    remaining: t.wcet_secs,
                    seq,
                });
                seq += 1;
                report.released += 1;
                next_release[i] += SimDuration::from_secs_f64(t.period_secs);
            }
        }

        let upcoming = next_release
            .iter()
            .copied()
            .filter(|&r| r < horizon)
            .min();

        // Select the job to run.
        let job_idx = match policy {
            DispatchPolicy::EdfPreemptive => {
                // put any committed job back (preemption allowed)
                if let Some(j) = running.take() {
                    ready.push(j);
                }
                ready
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.deadline
                            .cmp(&b.1.deadline)
                            .then(a.1.seq.cmp(&b.1.seq))
                    })
                    .map(|(i, _)| i)
            }
            DispatchPolicy::FifoNonPreemptive => {
                if running.is_none() {
                    ready
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            a.1.release
                                .cmp(&b.1.release)
                                .then(a.1.seq.cmp(&b.1.seq))
                        })
                        .map(|(i, _)| i)
                } else {
                    None // keep the committed job
                }
            }
        };
        if let Some(i) = job_idx {
            running = Some(ready.swap_remove(i));
        }

        match running {
            None => {
                // Idle: jump to the next release, or finish.
                match upcoming {
                    Some(r) if r < horizon => now = now.max(r),
                    _ => break,
                }
            }
            Some(mut job) => {
                let finish = now + SimDuration::from_secs_f64(job.remaining);
                // Under preemptive EDF a release may preempt; FIFO never.
                let stop = match (policy, upcoming) {
                    (DispatchPolicy::EdfPreemptive, Some(r)) => finish.min(r),
                    _ => finish,
                };
                if stop >= horizon {
                    // Horizon reached mid-execution: job unfinished.
                    break;
                }
                // Clamp at the clock's tick resolution: a remainder smaller
                // than one nanosecond would otherwise round to a zero-length
                // step and spin forever.
                job.remaining = (job.remaining - stop.since(now).as_secs_f64()).max(0.0);
                now = stop;
                if job.remaining <= 1e-9 {
                    report.completed += 1;
                    if now > job.deadline {
                        report.missed += 1;
                    }
                    running = None;
                } else {
                    running = Some(job);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn edf_schedulable_set_never_misses() {
        // U = 0.5 + 0.25 + 0.2 = 0.95 <= 1: EDF must meet every deadline.
        let tasks = [
            PeriodicTask { wcet_secs: 1.0, period_secs: 2.0 },
            PeriodicTask { wcet_secs: 1.0, period_secs: 4.0 },
            PeriodicTask { wcet_secs: 1.0, period_secs: 5.0 },
        ];
        let r = simulate_periodic(&tasks, DispatchPolicy::EdfPreemptive, horizon(1000));
        assert!(r.released > 800);
        assert_eq!(r.missed, 0, "EDF missed {} of {}", r.missed, r.completed);
    }

    #[test]
    fn edf_full_utilization_still_schedulable() {
        // U = 1.0 exactly: still schedulable under EDF.
        let tasks = [
            PeriodicTask { wcet_secs: 2.0, period_secs: 4.0 },
            PeriodicTask { wcet_secs: 1.0, period_secs: 2.0 },
        ];
        let r = simulate_periodic(&tasks, DispatchPolicy::EdfPreemptive, horizon(400));
        assert_eq!(r.missed, 0);
    }

    #[test]
    fn edf_overload_misses() {
        // U = 1.25: someone has to miss.
        let tasks = [
            PeriodicTask { wcet_secs: 3.0, period_secs: 4.0 },
            PeriodicTask { wcet_secs: 1.0, period_secs: 2.0 },
        ];
        let r = simulate_periodic(&tasks, DispatchPolicy::EdfPreemptive, horizon(400));
        assert!(r.missed > 0);
    }

    #[test]
    fn fifo_misses_where_edf_does_not() {
        // A long job ahead of a tight one: FIFO blows the short deadline.
        let tasks = [
            PeriodicTask { wcet_secs: 5.0, period_secs: 10.0 },
            PeriodicTask { wcet_secs: 0.5, period_secs: 2.0 },
        ];
        let edf = simulate_periodic(&tasks, DispatchPolicy::EdfPreemptive, horizon(1000));
        let fifo = simulate_periodic(&tasks, DispatchPolicy::FifoNonPreemptive, horizon(1000));
        assert_eq!(edf.missed, 0, "EDF must schedule U=0.75");
        assert!(
            fifo.missed > 0,
            "non-preemptive FIFO must miss short deadlines behind long jobs"
        );
    }

    #[test]
    fn utilization_accessor() {
        let t = PeriodicTask { wcet_secs: 1.0, period_secs: 4.0 };
        assert_eq!(t.utilization(), 0.25);
    }

    #[test]
    fn work_conservation() {
        // Completed work cannot exceed the horizon on one CPU.
        let tasks = [
            PeriodicTask { wcet_secs: 1.0, period_secs: 1.5 },
            PeriodicTask { wcet_secs: 1.0, period_secs: 2.0 },
        ];
        for policy in [DispatchPolicy::EdfPreemptive, DispatchPolicy::FifoNonPreemptive] {
            let r = simulate_periodic(&tasks, policy, horizon(300));
            // every completed job of task 0/1 took 1 s
            assert!(
                (r.completed as f64) <= 300.0 + 1.0,
                "{policy:?} completed more work than time allows"
            );
        }
    }
}
