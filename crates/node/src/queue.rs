//! The bounded work queue of a host.
//!
//! The paper: *"Each node is assumed to have a single queue of 100 seconds
//! to process tasks. […] Tasks arriving at a node whose queue is already
//! full are supposed to migrate to another node whose queue can still
//! accommodate the task."*
//!
//! The queue is measured in **seconds of work** and drains continuously at
//! unit rate (one second of work per second of time). Between events the
//! backlog therefore decays linearly; [`WorkQueue`] tracks the backlog
//! lazily as `(value, as_of)` so the simulator never needs per-tick events.
//! [`WorkQueue::time_to_drain_to`] gives the simulator the exact instant a
//! decaying backlog crosses a threshold, which drives Algorithm P's
//! usage-change notifications.

use realtor_simcore::{SimDuration, SimTime};

/// Why an admission attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Admitting would exceed queue capacity.
    WouldOverflow,
}

/// A fluid work queue with capacity in seconds of work.
///
/// ```
/// use realtor_node::WorkQueue;
/// use realtor_simcore::SimTime;
///
/// let mut q = WorkQueue::new(100.0);
/// q.admit(SimTime::ZERO, 30.0).unwrap();
/// // the backlog drains at one second of work per second of time
/// assert_eq!(q.backlog_at(SimTime::from_secs(10)), 20.0);
/// assert!(q.can_accept(SimTime::from_secs(10), 80.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WorkQueue {
    capacity_secs: f64,
    backlog_secs: f64,
    as_of: SimTime,
    /// Lifetime totals for statistics.
    admitted_count: u64,
    admitted_work_secs: f64,
    /// Largest backlog ever held, in seconds of work (watermark).
    high_water_secs: f64,
}

impl WorkQueue {
    /// An empty queue with the given capacity.
    pub fn new(capacity_secs: f64) -> Self {
        assert!(capacity_secs > 0.0, "capacity must be positive");
        WorkQueue {
            capacity_secs,
            backlog_secs: 0.0,
            as_of: SimTime::ZERO,
            admitted_count: 0,
            admitted_work_secs: 0.0,
            high_water_secs: 0.0,
        }
    }

    /// Queue capacity in seconds of work.
    pub fn capacity_secs(&self) -> f64 {
        self.capacity_secs
    }

    /// Backlog at `now` (the stored value decayed at unit rate).
    pub fn backlog_at(&self, now: SimTime) -> f64 {
        let elapsed = now.since(self.as_of).as_secs_f64();
        (self.backlog_secs - elapsed).max(0.0)
    }

    /// Spare capacity at `now`.
    pub fn headroom_at(&self, now: SimTime) -> f64 {
        self.capacity_secs - self.backlog_at(now)
    }

    /// Occupancy fraction at `now`, in `[0, 1]`.
    pub fn frac_at(&self, now: SimTime) -> f64 {
        self.backlog_at(now) / self.capacity_secs
    }

    /// Fold the decay up to `now` into the stored state.
    ///
    /// In the deterministic simulator `now` is monotone. In the threaded
    /// cluster substrate two threads sample the scaled wall clock *before*
    /// taking the queue lock, so a slightly stale sample can reach `sync`
    /// after a newer one; a stale sample means no time has passed since
    /// the last synchronization point, so it folds nothing.
    pub fn sync(&mut self, now: SimTime) {
        if now < self.as_of {
            return;
        }
        self.backlog_secs = self.backlog_at(now);
        self.as_of = now;
    }

    /// Would a task of `size_secs` fit at `now`?
    pub fn can_accept(&self, now: SimTime, size_secs: f64) -> bool {
        self.backlog_at(now) + size_secs <= self.capacity_secs + 1e-9
    }

    /// Occupancy fraction the queue *would* have if `size_secs` were
    /// admitted at `now` — Algorithm H's "if resource usage would exceed a
    /// threshold level" test is made against this value.
    pub fn frac_with(&self, now: SimTime, size_secs: f64) -> f64 {
        ((self.backlog_at(now) + size_secs) / self.capacity_secs).min(1.0)
    }

    /// Admit a task of `size_secs` at `now`, or report overflow.
    pub fn admit(&mut self, now: SimTime, size_secs: f64) -> Result<(), AdmitError> {
        assert!(size_secs > 0.0);
        self.sync(now);
        if self.backlog_secs + size_secs > self.capacity_secs + 1e-9 {
            return Err(AdmitError::WouldOverflow);
        }
        self.backlog_secs += size_secs;
        self.admitted_count += 1;
        self.admitted_work_secs += size_secs;
        if self.backlog_secs > self.high_water_secs {
            self.high_water_secs = self.backlog_secs;
        }
        Ok(())
    }

    /// Remove `size_secs` of not-yet-executed work (a task migrating away).
    /// Saturates at an empty queue.
    pub fn withdraw(&mut self, now: SimTime, size_secs: f64) {
        assert!(size_secs >= 0.0);
        self.sync(now);
        self.backlog_secs = (self.backlog_secs - size_secs).max(0.0);
    }

    /// The instant at which the decaying backlog reaches `level_secs`
    /// (`None` if it is already at or below that level at `now`).
    pub fn time_to_drain_to(&self, now: SimTime, level_secs: f64) -> Option<SimTime> {
        let backlog = self.backlog_at(now);
        if backlog <= level_secs {
            return None;
        }
        Some(now + SimDuration::from_secs_f64(backlog - level_secs))
    }

    /// The instant the queue becomes completely idle.
    pub fn drain_time(&self, now: SimTime) -> SimTime {
        self.time_to_drain_to(now, 0.0).unwrap_or(now)
    }

    /// Lifetime `(admitted task count, admitted work seconds)`.
    pub fn admitted_totals(&self) -> (u64, f64) {
        (self.admitted_count, self.admitted_work_secs)
    }

    /// Largest backlog this queue ever held, in seconds of work. Backlog
    /// only grows at admission, so the mark is exact despite the fluid
    /// decay between events.
    pub fn high_water_secs(&self) -> f64 {
        self.high_water_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn backlog_decays_at_unit_rate() {
        let mut q = WorkQueue::new(100.0);
        q.admit(at(0.0), 10.0).unwrap();
        assert_eq!(q.backlog_at(at(0.0)), 10.0);
        assert_eq!(q.backlog_at(at(4.0)), 6.0);
        assert_eq!(q.backlog_at(at(10.0)), 0.0);
        assert_eq!(q.backlog_at(at(50.0)), 0.0, "never negative");
    }

    #[test]
    fn admit_rejects_overflow() {
        let mut q = WorkQueue::new(100.0);
        q.admit(at(0.0), 60.0).unwrap();
        assert_eq!(q.admit(at(0.0), 50.0), Err(AdmitError::WouldOverflow));
        // After 10 s of draining, 50 more fits.
        assert!(q.can_accept(at(10.0), 50.0));
        q.admit(at(10.0), 50.0).unwrap();
        assert_eq!(q.backlog_at(at(10.0)), 100.0);
    }

    #[test]
    fn exact_fill_is_allowed() {
        let mut q = WorkQueue::new(100.0);
        assert!(q.can_accept(at(0.0), 100.0));
        q.admit(at(0.0), 100.0).unwrap();
        assert_eq!(q.frac_at(at(0.0)), 1.0);
    }

    #[test]
    fn frac_with_previews_admission() {
        let mut q = WorkQueue::new(100.0);
        q.admit(at(0.0), 85.0).unwrap();
        assert!((q.frac_with(at(0.0), 10.0) - 0.95).abs() < 1e-12);
        assert_eq!(q.frac_with(at(0.0), 50.0), 1.0, "clamped preview");
    }

    #[test]
    fn headroom_tracks_decay() {
        let mut q = WorkQueue::new(100.0);
        q.admit(at(0.0), 40.0).unwrap();
        assert_eq!(q.headroom_at(at(0.0)), 60.0);
        assert_eq!(q.headroom_at(at(20.0)), 80.0);
    }

    #[test]
    fn time_to_drain_to_threshold() {
        let mut q = WorkQueue::new(100.0);
        q.admit(at(0.0), 95.0).unwrap();
        // reaches 90 s backlog after 5 s
        assert_eq!(q.time_to_drain_to(at(0.0), 90.0), Some(at(5.0)));
        assert_eq!(q.time_to_drain_to(at(0.0), 95.0), None);
        assert_eq!(q.drain_time(at(0.0)), at(95.0));
        let empty = WorkQueue::new(100.0);
        assert_eq!(empty.drain_time(at(3.0)), at(3.0));
    }

    #[test]
    fn withdraw_removes_work() {
        let mut q = WorkQueue::new(100.0);
        q.admit(at(0.0), 50.0).unwrap();
        q.withdraw(at(0.0), 20.0);
        assert_eq!(q.backlog_at(at(0.0)), 30.0);
        q.withdraw(at(0.0), 500.0);
        assert_eq!(q.backlog_at(at(0.0)), 0.0);
    }

    #[test]
    fn sync_is_idempotent() {
        let mut q = WorkQueue::new(100.0);
        q.admit(at(0.0), 10.0).unwrap();
        q.sync(at(5.0));
        q.sync(at(5.0));
        assert_eq!(q.backlog_at(at(5.0)), 5.0);
    }

    #[test]
    fn totals_accumulate() {
        let mut q = WorkQueue::new(100.0);
        q.admit(at(0.0), 10.0).unwrap();
        q.admit(at(1.0), 20.0).unwrap();
        let (n, w) = q.admitted_totals();
        assert_eq!(n, 2);
        assert_eq!(w, 30.0);
    }

    #[test]
    fn high_water_marks_peak_backlog() {
        let mut q = WorkQueue::new(100.0);
        assert_eq!(q.high_water_secs(), 0.0);
        q.admit(at(0.0), 40.0).unwrap();
        assert_eq!(q.high_water_secs(), 40.0);
        // Decays to 10, then +20 peaks at 30: below the earlier 40.
        q.admit(at(30.0), 20.0).unwrap();
        assert_eq!(q.high_water_secs(), 40.0);
        q.admit(at(30.0), 50.0).unwrap();
        assert_eq!(q.high_water_secs(), 80.0);
        // Withdrawals never move the mark.
        q.withdraw(at(30.0), 80.0);
        assert_eq!(q.high_water_secs(), 80.0);
    }
}
