//! Per-task bookkeeping over the fluid [`crate::queue::WorkQueue`],
//! enabling crash recovery and evacuation.
//!
//! The fluid queue aggregates all admitted work into one backlog scalar,
//! which is exactly right for the paper's admission-probability metric but
//! destroys task identity — and recovery is *about* task identity: when a
//! node is killed, which tasks were still pending, and how much of each
//! survives as a checkpoint? [`TaskLog`] shadows the queue with one entry
//! per admitted task. Because the queue is FIFO and drains at unit rate,
//! each task's completion instant is known in closed form at admission
//! (`admit time + backlog including the task`), so the log needs no events:
//! the remaining work of any task at any instant is derived arithmetically,
//! mirroring how the queue itself derives its backlog.
//!
//! The log is pure bookkeeping — it never feeds back into admission
//! decisions — so worlds that don't need recovery simply keep it empty and
//! behave bit-identically to a log-free build.

use realtor_simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One admitted task still tracked by the log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskEntry {
    /// World-unique task id.
    pub id: u64,
    /// Full size in seconds of work.
    pub size_secs: f64,
    /// Completion instant under FIFO unit-rate draining (shifts earlier when
    /// queued work ahead of or behind it is withdrawn).
    pub finish_at: SimTime,
    /// An evacuation negotiation is in flight for this task; its fate is
    /// decided by that negotiation, not by kill-time splitting.
    pub evacuating: bool,
}

impl TaskEntry {
    /// Seconds of this task not yet executed at `now`.
    pub fn remaining_at(&self, now: SimTime) -> f64 {
        let to_finish = if now >= self.finish_at {
            0.0
        } else {
            self.finish_at.since(now).as_secs_f64()
        };
        to_finish.min(self.size_secs)
    }
}

/// What a kill leaves behind, per [`TaskLog::split_at_kill`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KillSplit {
    /// `(task id, checkpointed remaining seconds)` for each task saved by
    /// the checkpoint fraction, newest-admitted first.
    pub recoverable: Vec<(u64, f64)>,
    /// Number of pending tasks destroyed outright.
    pub destroyed_tasks: u64,
    /// Seconds of pending work destroyed outright.
    pub destroyed_work: f64,
}

/// FIFO shadow of a node's [`crate::queue::WorkQueue`], one entry per task.
#[derive(Debug, Clone, Default)]
pub struct TaskLog {
    entries: VecDeque<TaskEntry>,
}

impl TaskLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an admission. `finish_at` is the admission instant plus the
    /// queue backlog *including* the new task; entries must therefore arrive
    /// in non-decreasing `finish_at` order (FIFO admission guarantees it).
    pub fn record_admit(&mut self, id: u64, size_secs: f64, finish_at: SimTime) {
        debug_assert!(
            self.entries.back().is_none_or(|e| e.finish_at <= finish_at),
            "FIFO admission implies monotone finish times"
        );
        self.entries.push_back(TaskEntry {
            id,
            size_secs,
            finish_at,
            evacuating: false,
        });
    }

    /// Drop entries that have finished executing by `now`. Stops at the
    /// first unfinished or evacuating entry (finish times are monotone, and
    /// an evacuating entry must survive until its negotiation resolves).
    pub fn prune_finished(&mut self, now: SimTime) {
        while let Some(front) = self.entries.front() {
            if front.evacuating || front.remaining_at(now) > 0.0 {
                break;
            }
            self.entries.pop_front();
        }
    }

    /// Tasks still pending at `now` and not mid-evacuation, newest-admitted
    /// first (the newest has the longest remaining work — the natural
    /// evacuation order), as `(id, remaining seconds)`.
    pub fn pending_newest_first(&self, now: SimTime) -> Vec<(u64, f64)> {
        self.entries
            .iter()
            .rev()
            .filter(|e| !e.evacuating)
            .map(|e| (e.id, e.remaining_at(now)))
            .filter(|&(_, r)| r > 0.0)
            .collect()
    }

    /// Flag `id` as mid-evacuation (excluded from pending lists and kill
    /// splits until resolved).
    pub fn mark_evacuating(&mut self, id: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.evacuating = true;
        }
    }

    /// Clear the evacuation flag of `id` (the negotiation failed; the task
    /// stays and keeps executing here).
    pub fn clear_evacuating(&mut self, id: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.evacuating = false;
        }
    }

    /// Remove `id` (it migrated away), returning its remaining work at
    /// `now`. Every later task's finish time moves earlier by that amount —
    /// the withdrawal frees queue ahead of them.
    pub fn remove(&mut self, id: u64, now: SimTime) -> Option<f64> {
        let idx = self.entries.iter().position(|e| e.id == id)?;
        let remaining = self.entries[idx].remaining_at(now);
        self.entries.remove(idx);
        if remaining > 0.0 {
            let shift = SimDuration::from_secs_f64(remaining);
            for e in self.entries.iter_mut().skip(idx) {
                e.finish_at =
                    SimTime::from_ticks(e.finish_at.ticks().saturating_sub(shift.ticks()));
            }
        }
        Some(remaining)
    }

    /// The node was killed at `now`: split its pending tasks into the
    /// checkpointed survivors and the destroyed remainder.
    ///
    /// `checkpoint_fraction` of the pending tasks (rounded down, newest
    /// first — the newest tasks have executed least, so their checkpoints
    /// are cheapest and most worth saving) survive with their remaining
    /// work intact; the rest are destroyed. Mid-evacuation tasks are *not*
    /// included — their fate rides on the in-flight negotiation. The log is
    /// left empty either way (the node has amnesia).
    pub fn split_at_kill(&mut self, now: SimTime, checkpoint_fraction: f64) -> KillSplit {
        let pending = self.pending_newest_first(now);
        let saved = ((checkpoint_fraction * pending.len() as f64) + 1e-9).floor() as usize;
        let mut split = KillSplit::default();
        for (i, &(id, remaining)) in pending.iter().enumerate() {
            if i < saved {
                split.recoverable.push((id, remaining));
            } else {
                split.destroyed_tasks += 1;
                split.destroyed_work += remaining;
            }
        }
        self.entries.clear();
        split
    }

    /// Drop every entry (restore-with-amnesia).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of tracked entries (finished-but-unpruned included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    /// Admit helper mirroring the world's bookkeeping: `backlog_after` is
    /// the queue backlog including the new task.
    fn admit(log: &mut TaskLog, id: u64, size: f64, now: f64, backlog_after: f64) {
        log.record_admit(id, size, at(now + backlog_after));
    }

    #[test]
    fn remaining_tracks_fifo_draining() {
        let mut log = TaskLog::new();
        admit(&mut log, 1, 10.0, 0.0, 10.0); // runs 0..10
        admit(&mut log, 2, 20.0, 0.0, 30.0); // runs 10..30
        let e2 = log.entries[1];
        assert_eq!(e2.remaining_at(at(0.0)), 20.0, "capped at its own size");
        assert_eq!(e2.remaining_at(at(15.0)), 15.0);
        assert_eq!(e2.remaining_at(at(30.0)), 0.0);
        assert_eq!(log.entries[0].remaining_at(at(4.0)), 6.0);
    }

    #[test]
    fn prune_drops_finished_prefix() {
        let mut log = TaskLog::new();
        admit(&mut log, 1, 10.0, 0.0, 10.0);
        admit(&mut log, 2, 20.0, 0.0, 30.0);
        log.prune_finished(at(12.0));
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries[0].id, 2);
        log.prune_finished(at(30.0));
        assert!(log.is_empty());
    }

    #[test]
    fn prune_stops_at_evacuating_entry() {
        let mut log = TaskLog::new();
        admit(&mut log, 1, 10.0, 0.0, 10.0);
        log.mark_evacuating(1);
        log.prune_finished(at(50.0));
        assert_eq!(log.len(), 1, "evacuating entries await their negotiation");
    }

    #[test]
    fn remove_shifts_later_finish_times() {
        let mut log = TaskLog::new();
        admit(&mut log, 1, 10.0, 0.0, 10.0);
        admit(&mut log, 2, 20.0, 0.0, 30.0);
        admit(&mut log, 3, 5.0, 0.0, 35.0);
        // Evacuate task 2 at t=0 with all 20 s unexecuted.
        assert_eq!(log.remove(2, at(0.0)), Some(20.0));
        assert_eq!(log.entries[1].id, 3);
        assert_eq!(log.entries[1].finish_at, at(15.0));
        assert_eq!(log.remove(9, at(0.0)), None);
    }

    #[test]
    fn split_at_kill_respects_checkpoint_fraction() {
        let mut log = TaskLog::new();
        admit(&mut log, 1, 10.0, 0.0, 10.0);
        admit(&mut log, 2, 20.0, 0.0, 30.0);
        admit(&mut log, 3, 30.0, 0.0, 60.0);
        admit(&mut log, 4, 40.0, 0.0, 100.0);
        // Kill at t=5: task 1 has 5 s left, the rest are whole.
        let split = log.split_at_kill(at(5.0), 0.5);
        assert_eq!(split.recoverable, vec![(4, 40.0), (3, 30.0)]);
        assert_eq!(split.destroyed_tasks, 2);
        assert_eq!(split.destroyed_work, 20.0 + 5.0);
        assert!(log.is_empty(), "kill leaves amnesia");
    }

    #[test]
    fn split_extremes() {
        let mut log = TaskLog::new();
        admit(&mut log, 1, 10.0, 0.0, 10.0);
        admit(&mut log, 2, 10.0, 0.0, 20.0);
        let all_lost = log.clone().split_at_kill(at(0.0), 0.0);
        assert!(all_lost.recoverable.is_empty());
        assert_eq!(all_lost.destroyed_tasks, 2);
        let all_saved = log.split_at_kill(at(0.0), 1.0);
        assert_eq!(all_saved.recoverable.len(), 2);
        assert_eq!(all_saved.destroyed_tasks, 0);
    }

    #[test]
    fn split_skips_finished_and_evacuating() {
        let mut log = TaskLog::new();
        admit(&mut log, 1, 10.0, 0.0, 10.0);
        admit(&mut log, 2, 20.0, 0.0, 30.0);
        admit(&mut log, 3, 30.0, 0.0, 60.0);
        log.mark_evacuating(3);
        // t=12: task 1 finished, task 3 mid-evacuation — only task 2 splits.
        let split = log.split_at_kill(at(12.0), 1.0);
        assert_eq!(split.recoverable, vec![(2, 18.0)]);
        assert_eq!(split.destroyed_tasks, 0);
    }

    #[test]
    fn evacuation_flag_roundtrip() {
        let mut log = TaskLog::new();
        admit(&mut log, 1, 10.0, 0.0, 10.0);
        log.mark_evacuating(1);
        assert!(log.pending_newest_first(at(0.0)).is_empty());
        log.clear_evacuating(1);
        assert_eq!(log.pending_newest_first(at(0.0)), vec![(1, 10.0)]);
    }
}
