//! Tasks — the unit of work that arrives, queues, executes and migrates.
//!
//! The paper's simulation generates "tasks with exponentially distributed
//! lengths of a mean value [5 s]"; a task of size 2 "holds the CPU on the
//! node for 2 seconds". In the Agile Objects implementation (§6) each task
//! is "a timer waiting to expire", whose only migratable state is the
//! remaining un-expired time — exactly what [`Task::remaining_secs`] models.

use realtor_simcore::SimTime;

/// Globally unique task identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct TaskId(pub u64);

/// Static priority class (lower value = more urgent), as used by the Agile
/// Objects job scheduler ("static priority and EDF in the same priority").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Priority(pub u8);

/// A schedulable unit of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Unique id.
    pub id: TaskId,
    /// Total execution demand in seconds of CPU/queue time.
    pub size_secs: f64,
    /// When the task entered the system.
    pub arrival: SimTime,
    /// Absolute deadline, if the task is a hard real-time job.
    pub deadline: Option<SimTime>,
    /// Static priority class.
    pub priority: Priority,
    /// Execution already received (used when a partially executed component
    /// migrates: only the remainder moves).
    pub executed_secs: f64,
}

impl Task {
    /// A plain best-effort task, as in the paper's Section 5 workload.
    pub fn new(id: TaskId, size_secs: f64, arrival: SimTime) -> Self {
        assert!(size_secs > 0.0, "task size must be positive");
        Task {
            id,
            size_secs,
            arrival,
            deadline: None,
            priority: Priority::default(),
            executed_secs: 0.0,
        }
    }

    /// A real-time task with a deadline and priority class.
    pub fn real_time(
        id: TaskId,
        size_secs: f64,
        arrival: SimTime,
        deadline: SimTime,
        priority: Priority,
    ) -> Self {
        let mut t = Task::new(id, size_secs, arrival);
        assert!(deadline >= arrival, "deadline before arrival");
        t.deadline = Some(deadline);
        t.priority = priority;
        t
    }

    /// Execution still owed, in seconds.
    pub fn remaining_secs(&self) -> f64 {
        (self.size_secs - self.executed_secs).max(0.0)
    }

    /// Record `secs` of execution progress, saturating at completion.
    pub fn execute(&mut self, secs: f64) {
        assert!(secs >= 0.0);
        self.executed_secs = (self.executed_secs + secs).min(self.size_secs);
    }

    /// True when the task has received its full demand.
    pub fn is_complete(&self) -> bool {
        self.remaining_secs() == 0.0
    }

    /// Would the task meet its deadline if it completed at `finish`?
    /// Deadline-less tasks always do.
    pub fn meets_deadline(&self, finish: SimTime) -> bool {
        self.deadline.is_none_or(|d| finish <= d)
    }
}

/// Monotonic task-id allocator.
#[derive(Debug, Default, Clone)]
pub struct TaskIdGen(u64);

impl TaskIdGen {
    /// A fresh allocator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next id.
    pub fn next_id(&mut self) -> TaskId {
        let id = TaskId(self.0);
        self.0 += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_progress() {
        let mut t = Task::new(TaskId(1), 5.0, SimTime::ZERO);
        assert_eq!(t.remaining_secs(), 5.0);
        t.execute(2.0);
        assert_eq!(t.remaining_secs(), 3.0);
        assert!(!t.is_complete());
        t.execute(10.0); // saturates
        assert_eq!(t.remaining_secs(), 0.0);
        assert!(t.is_complete());
    }

    #[test]
    fn deadline_check() {
        let t = Task::real_time(
            TaskId(1),
            2.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
            Priority(1),
        );
        assert!(t.meets_deadline(SimTime::from_secs(10)));
        assert!(!t.meets_deadline(SimTime::from_secs(11)));
        let be = Task::new(TaskId(2), 2.0, SimTime::ZERO);
        assert!(be.meets_deadline(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn id_gen_is_monotonic_and_unique() {
        let mut g = TaskIdGen::new();
        let ids: Vec<TaskId> = (0..100).map(|_| g.next_id()).collect();
        for w in ids.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "task size")]
    fn zero_size_rejected() {
        Task::new(TaskId(0), 0.0, SimTime::ZERO);
    }
}
