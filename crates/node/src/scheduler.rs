//! Real-time job scheduling — the Agile Objects host scheduler.
//!
//! Section 6: *"Job Scheduler provides a simple form of real-time task
//! scheduler with static priority and EDF (Earliest Deadline First) in the
//! same priority."* [`EdfScheduler`] implements exactly that dispatch order.
//!
//! Section 3: *"The management of CPU resource is greatly simplified by the
//! use of guaranteed-rate scheduling in the nodes. […] The current
//! implementation uses a Constant Utilization Server."*
//! [`ConstantUtilizationServer`] implements the classic CUS rule: each job
//! of demand `e` arriving at `t` gets the virtual deadline
//! `max(t, d_prev) + e / U`, which guarantees the server never consumes more
//! than its utilization share `U` over any busy interval.

use crate::task::{Task, TaskId};
use realtor_simcore::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Dispatch key: static priority first, EDF within equal priority, then
/// arrival order (task id) for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DispatchKey {
    priority: u8,
    deadline: SimTime,
    id: TaskId,
}

impl Ord for DispatchKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for "smallest first".
        other
            .priority
            .cmp(&self.priority)
            .then_with(|| other.deadline.cmp(&self.deadline))
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for DispatchKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Heap entry: ordering is entirely determined by the key (`Task` holds
/// floats and has no total order of its own).
#[derive(Debug, Clone)]
struct Entry {
    key: DispatchKey,
    task: Task,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A ready queue dispatching by static priority, then EDF.
///
/// Removal (task migrated away) is tombstoned: the entry stays buried in
/// the heap, marked dead, and is discarded lazily when it surfaces — O(n)
/// to find the task, O(log n) amortized to delete it, instead of the old
/// full heap rebuild. Invariant: the heap top is never tombstoned, so
/// [`EdfScheduler::peek`] stays a borrow-only O(1) read.
#[derive(Debug, Default)]
pub struct EdfScheduler {
    heap: BinaryHeap<Entry>,
    /// Ids of entries still buried in `heap` but logically removed.
    tombstones: BTreeSet<TaskId>,
}

impl EdfScheduler {
    /// An empty ready queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a ready task. Deadline-less tasks sort after all deadlines in
    /// their priority class.
    pub fn enqueue(&mut self, task: Task) {
        if self.tombstones.contains(&task.id) {
            // A dead entry with this id is still buried; compact first so
            // the tombstone cannot later swallow the new live entry. Rare:
            // a task re-arriving after migrating away mid-queue.
            self.compact();
        }
        let key = DispatchKey {
            priority: task.priority.0,
            deadline: task.deadline.unwrap_or(SimTime::MAX),
            id: task.id,
        };
        self.heap.push(Entry { key, task });
    }

    /// Remove and return the next task to run.
    pub fn dispatch(&mut self) -> Option<Task> {
        // The top is never tombstoned (invariant), so this pop is always a
        // live task; afterwards discard any dead entries that surfaced.
        let task = self.heap.pop().map(|e| e.task);
        self.purge_top();
        task
    }

    /// Peek at the next task without removing it.
    pub fn peek(&self) -> Option<&Task> {
        self.heap.peek().map(|e| &e.task)
    }

    /// Number of ready tasks.
    pub fn len(&self) -> usize {
        self.heap.len() - self.tombstones.len()
    }

    /// True when no task is ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove a specific task (e.g. it migrated away): O(n) to find it,
    /// amortized O(log n) to delete (tombstone + lazy purge, no rebuild).
    pub fn remove(&mut self, id: TaskId) -> Option<Task> {
        if self.tombstones.contains(&id) {
            return None; // already logically removed
        }
        let task = self.heap.iter().find(|e| e.task.id == id)?.task;
        self.tombstones.insert(id);
        self.purge_top();
        Some(task)
    }

    /// Discard tombstoned entries sitting at the heap top, restoring the
    /// "top is live" invariant.
    fn purge_top(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.tombstones.remove(&top.task.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Physically drop every tombstoned entry (rare slow path).
    fn compact(&mut self) {
        let items = std::mem::take(&mut self.heap).into_vec();
        self.heap = items
            .into_iter()
            .filter(|e| !self.tombstones.contains(&e.task.id))
            .collect();
        self.tombstones.clear();
    }
}

/// A Constant Utilization Server with share `U ∈ (0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ConstantUtilizationServer {
    utilization: f64,
    last_deadline: SimTime,
    served_secs: f64,
}

impl ConstantUtilizationServer {
    /// Create a server with utilization share `u`.
    pub fn new(u: f64) -> Self {
        assert!(u > 0.0 && u <= 1.0, "utilization must be in (0, 1]");
        ConstantUtilizationServer {
            utilization: u,
            last_deadline: SimTime::ZERO,
            served_secs: 0.0,
        }
    }

    /// The server's utilization share.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Admit a job with execution demand `exec_secs` at `now`; returns the
    /// virtual deadline under which the job should be scheduled (EDF among
    /// servers then guarantees the rate).
    pub fn assign_deadline(&mut self, now: SimTime, exec_secs: f64) -> SimTime {
        assert!(exec_secs > 0.0);
        let start = now.max(self.last_deadline);
        let d = start + SimDuration::from_secs_f64(exec_secs / self.utilization);
        self.last_deadline = d;
        self.served_secs += exec_secs;
        d
    }

    /// Total demand ever assigned through this server.
    pub fn served_secs(&self) -> f64 {
        self.served_secs
    }

    /// The latest virtual deadline handed out.
    pub fn last_deadline(&self) -> SimTime {
        self.last_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Priority;

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn rt(id: u64, deadline: f64, prio: u8) -> Task {
        Task::real_time(TaskId(id), 1.0, SimTime::ZERO, at(deadline), Priority(prio))
    }

    #[test]
    fn edf_within_same_priority() {
        let mut s = EdfScheduler::new();
        s.enqueue(rt(1, 30.0, 0));
        s.enqueue(rt(2, 10.0, 0));
        s.enqueue(rt(3, 20.0, 0));
        let order: Vec<u64> = std::iter::from_fn(|| s.dispatch().map(|t| t.id.0)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn static_priority_dominates_deadline() {
        let mut s = EdfScheduler::new();
        s.enqueue(rt(1, 1.0, 5)); // earliest deadline, low priority class
        s.enqueue(rt(2, 100.0, 0)); // late deadline, urgent class
        assert_eq!(s.dispatch().unwrap().id.0, 2);
        assert_eq!(s.dispatch().unwrap().id.0, 1);
    }

    #[test]
    fn deadline_less_tasks_sort_last() {
        let mut s = EdfScheduler::new();
        s.enqueue(Task::new(TaskId(1), 1.0, SimTime::ZERO));
        s.enqueue(rt(2, 50.0, 0));
        assert_eq!(s.dispatch().unwrap().id.0, 2);
        assert_eq!(s.dispatch().unwrap().id.0, 1);
    }

    #[test]
    fn equal_keys_dispatch_in_id_order() {
        let mut s = EdfScheduler::new();
        for id in (0..10).rev() {
            s.enqueue(rt(id, 10.0, 0));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dispatch().map(|t| t.id.0)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn remove_extracts_single_task() {
        let mut s = EdfScheduler::new();
        s.enqueue(rt(1, 10.0, 0));
        s.enqueue(rt(2, 20.0, 0));
        s.enqueue(rt(3, 30.0, 0));
        let got = s.remove(TaskId(2)).unwrap();
        assert_eq!(got.id.0, 2);
        assert_eq!(s.len(), 2);
        assert!(s.remove(TaskId(99)).is_none());
        assert_eq!(s.peek().unwrap().id.0, 1);
    }

    #[test]
    fn remove_buried_then_dispatch_skips_dead_entries() {
        let mut s = EdfScheduler::new();
        for id in 1..=6 {
            s.enqueue(rt(id, id as f64 * 10.0, 0));
        }
        // Remove from the middle and the back: both stay buried as
        // tombstones until they surface.
        assert_eq!(s.remove(TaskId(3)).unwrap().id.0, 3);
        assert_eq!(s.remove(TaskId(6)).unwrap().id.0, 6);
        assert_eq!(s.len(), 4);
        assert_eq!(s.remove(TaskId(3)), None, "double remove is None");
        let order: Vec<u64> = std::iter::from_fn(|| s.dispatch().map(|t| t.id.0)).collect();
        assert_eq!(order, vec![1, 2, 4, 5]);
        assert!(s.is_empty());
    }

    #[test]
    fn remove_top_keeps_peek_live() {
        let mut s = EdfScheduler::new();
        s.enqueue(rt(1, 10.0, 0));
        s.enqueue(rt(2, 20.0, 0));
        assert_eq!(s.remove(TaskId(1)).unwrap().id.0, 1);
        // The tombstoned top must be purged eagerly so peek stays O(1).
        assert_eq!(s.peek().unwrap().id.0, 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reenqueue_after_remove_is_not_swallowed() {
        let mut s = EdfScheduler::new();
        s.enqueue(rt(1, 10.0, 0));
        s.enqueue(rt(2, 20.0, 0));
        s.enqueue(rt(3, 30.0, 0));
        assert_eq!(s.remove(TaskId(2)).unwrap().id.0, 2);
        // The task comes back (e.g. migration bounced); its buried
        // tombstone must not consume the new live entry.
        s.enqueue(rt(2, 5.0, 0));
        let order: Vec<u64> = std::iter::from_fn(|| s.dispatch().map(|t| t.id.0)).collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn tombstone_removal_matches_naive_rebuild() {
        // Differential check against a sort-based model over a scripted
        // enqueue/remove/dispatch mix.
        let mut s = EdfScheduler::new();
        let mut model: Vec<(u8, u64, u64)> = Vec::new(); // (prio, dl, id)
        let mut next_id = 0u64;
        let mut script_rng = 0x9E3779B97F4A7C15u64;
        let mut step = move || {
            script_rng = script_rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            script_rng >> 33
        };
        for _ in 0..500 {
            match step() % 4 {
                0 | 1 => {
                    let prio = (step() % 3) as u8;
                    let dl = step() % 100;
                    s.enqueue(rt_prio(next_id, dl as f64, prio));
                    model.push((prio, dl, next_id));
                    next_id += 1;
                }
                2 => {
                    if !model.is_empty() {
                        let pick = model[(step() as usize) % model.len()].2;
                        let got = s.remove(TaskId(pick)).map(|t| t.id.0);
                        let idx = model.iter().position(|m| m.2 == pick).unwrap();
                        model.remove(idx);
                        assert_eq!(got, Some(pick));
                    }
                }
                _ => {
                    let got = s.dispatch().map(|t| t.id.0);
                    model.sort();
                    let want = if model.is_empty() {
                        None
                    } else {
                        Some(model.remove(0).2)
                    };
                    assert_eq!(got, want);
                }
            }
            assert_eq!(s.len(), model.len());
        }
    }

    fn rt_prio(id: u64, deadline: f64, prio: u8) -> Task {
        // Whole-second deadlines so the naive model's integer sort matches.
        Task::real_time(
            TaskId(id),
            1.0,
            SimTime::ZERO,
            SimTime::from_secs(deadline as u64),
            Priority(prio),
        )
    }

    #[test]
    fn cus_spaces_deadlines_by_demand_over_u() {
        let mut cus = ConstantUtilizationServer::new(0.5);
        // 1 s of demand at U=0.5 → 2 s of virtual time.
        assert_eq!(cus.assign_deadline(at(0.0), 1.0), at(2.0));
        // back-to-back jobs chain from the previous deadline
        assert_eq!(cus.assign_deadline(at(0.0), 1.0), at(4.0));
        // an idle gap resets the chain to `now`
        assert_eq!(cus.assign_deadline(at(10.0), 1.0), at(12.0));
        assert_eq!(cus.served_secs(), 3.0);
    }

    #[test]
    fn cus_rate_guarantee_over_busy_interval() {
        // In any interval [0, d_k] the demand assigned is <= U * d_k.
        let mut cus = ConstantUtilizationServer::new(0.25);
        let mut total = 0.0;
        for i in 0..50 {
            let e = 0.1 + (i % 7) as f64 * 0.05;
            let deadline = cus.assign_deadline(SimTime::ZERO, e);
            total += e;
            assert!(
                total <= 0.25 * deadline.as_secs_f64() + 1e-9,
                "CUS rate bound violated at job {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn cus_rejects_zero_share() {
        ConstantUtilizationServer::new(0.0);
    }
}
