//! Real-time job scheduling — the Agile Objects host scheduler.
//!
//! Section 6: *"Job Scheduler provides a simple form of real-time task
//! scheduler with static priority and EDF (Earliest Deadline First) in the
//! same priority."* [`EdfScheduler`] implements exactly that dispatch order.
//!
//! Section 3: *"The management of CPU resource is greatly simplified by the
//! use of guaranteed-rate scheduling in the nodes. […] The current
//! implementation uses a Constant Utilization Server."*
//! [`ConstantUtilizationServer`] implements the classic CUS rule: each job
//! of demand `e` arriving at `t` gets the virtual deadline
//! `max(t, d_prev) + e / U`, which guarantees the server never consumes more
//! than its utilization share `U` over any busy interval.

use crate::task::{Task, TaskId};
use realtor_simcore::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dispatch key: static priority first, EDF within equal priority, then
/// arrival order (task id) for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DispatchKey {
    priority: u8,
    deadline: SimTime,
    id: TaskId,
}

impl Ord for DispatchKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for "smallest first".
        other
            .priority
            .cmp(&self.priority)
            .then_with(|| other.deadline.cmp(&self.deadline))
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for DispatchKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Heap entry: ordering is entirely determined by the key (`Task` holds
/// floats and has no total order of its own).
#[derive(Debug, Clone)]
struct Entry {
    key: DispatchKey,
    task: Task,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A ready queue dispatching by static priority, then EDF.
#[derive(Debug, Default)]
pub struct EdfScheduler {
    heap: BinaryHeap<Entry>,
}

impl EdfScheduler {
    /// An empty ready queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a ready task. Deadline-less tasks sort after all deadlines in
    /// their priority class.
    pub fn enqueue(&mut self, task: Task) {
        let key = DispatchKey {
            priority: task.priority.0,
            deadline: task.deadline.unwrap_or(SimTime::MAX),
            id: task.id,
        };
        self.heap.push(Entry { key, task });
    }

    /// Remove and return the next task to run.
    pub fn dispatch(&mut self) -> Option<Task> {
        self.heap.pop().map(|e| e.task)
    }

    /// Peek at the next task without removing it.
    pub fn peek(&self) -> Option<&Task> {
        self.heap.peek().map(|e| &e.task)
    }

    /// Number of ready tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no task is ready.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove a specific task (e.g. it migrated away); O(n).
    pub fn remove(&mut self, id: TaskId) -> Option<Task> {
        let mut removed = None;
        let items: Vec<_> = std::mem::take(&mut self.heap).into_vec();
        for e in items {
            if e.task.id == id && removed.is_none() {
                removed = Some(e.task);
            } else {
                self.heap.push(e);
            }
        }
        removed
    }
}

/// A Constant Utilization Server with share `U ∈ (0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ConstantUtilizationServer {
    utilization: f64,
    last_deadline: SimTime,
    served_secs: f64,
}

impl ConstantUtilizationServer {
    /// Create a server with utilization share `u`.
    pub fn new(u: f64) -> Self {
        assert!(u > 0.0 && u <= 1.0, "utilization must be in (0, 1]");
        ConstantUtilizationServer {
            utilization: u,
            last_deadline: SimTime::ZERO,
            served_secs: 0.0,
        }
    }

    /// The server's utilization share.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Admit a job with execution demand `exec_secs` at `now`; returns the
    /// virtual deadline under which the job should be scheduled (EDF among
    /// servers then guarantees the rate).
    pub fn assign_deadline(&mut self, now: SimTime, exec_secs: f64) -> SimTime {
        assert!(exec_secs > 0.0);
        let start = now.max(self.last_deadline);
        let d = start + SimDuration::from_secs_f64(exec_secs / self.utilization);
        self.last_deadline = d;
        self.served_secs += exec_secs;
        d
    }

    /// Total demand ever assigned through this server.
    pub fn served_secs(&self) -> f64 {
        self.served_secs
    }

    /// The latest virtual deadline handed out.
    pub fn last_deadline(&self) -> SimTime {
        self.last_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Priority;

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn rt(id: u64, deadline: f64, prio: u8) -> Task {
        Task::real_time(TaskId(id), 1.0, SimTime::ZERO, at(deadline), Priority(prio))
    }

    #[test]
    fn edf_within_same_priority() {
        let mut s = EdfScheduler::new();
        s.enqueue(rt(1, 30.0, 0));
        s.enqueue(rt(2, 10.0, 0));
        s.enqueue(rt(3, 20.0, 0));
        let order: Vec<u64> = std::iter::from_fn(|| s.dispatch().map(|t| t.id.0)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn static_priority_dominates_deadline() {
        let mut s = EdfScheduler::new();
        s.enqueue(rt(1, 1.0, 5)); // earliest deadline, low priority class
        s.enqueue(rt(2, 100.0, 0)); // late deadline, urgent class
        assert_eq!(s.dispatch().unwrap().id.0, 2);
        assert_eq!(s.dispatch().unwrap().id.0, 1);
    }

    #[test]
    fn deadline_less_tasks_sort_last() {
        let mut s = EdfScheduler::new();
        s.enqueue(Task::new(TaskId(1), 1.0, SimTime::ZERO));
        s.enqueue(rt(2, 50.0, 0));
        assert_eq!(s.dispatch().unwrap().id.0, 2);
        assert_eq!(s.dispatch().unwrap().id.0, 1);
    }

    #[test]
    fn equal_keys_dispatch_in_id_order() {
        let mut s = EdfScheduler::new();
        for id in (0..10).rev() {
            s.enqueue(rt(id, 10.0, 0));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dispatch().map(|t| t.id.0)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn remove_extracts_single_task() {
        let mut s = EdfScheduler::new();
        s.enqueue(rt(1, 10.0, 0));
        s.enqueue(rt(2, 20.0, 0));
        s.enqueue(rt(3, 30.0, 0));
        let got = s.remove(TaskId(2)).unwrap();
        assert_eq!(got.id.0, 2);
        assert_eq!(s.len(), 2);
        assert!(s.remove(TaskId(99)).is_none());
        assert_eq!(s.peek().unwrap().id.0, 1);
    }

    #[test]
    fn cus_spaces_deadlines_by_demand_over_u() {
        let mut cus = ConstantUtilizationServer::new(0.5);
        // 1 s of demand at U=0.5 → 2 s of virtual time.
        assert_eq!(cus.assign_deadline(at(0.0), 1.0), at(2.0));
        // back-to-back jobs chain from the previous deadline
        assert_eq!(cus.assign_deadline(at(0.0), 1.0), at(4.0));
        // an idle gap resets the chain to `now`
        assert_eq!(cus.assign_deadline(at(10.0), 1.0), at(12.0));
        assert_eq!(cus.served_secs(), 3.0);
    }

    #[test]
    fn cus_rate_guarantee_over_busy_interval() {
        // In any interval [0, d_k] the demand assigned is <= U * d_k.
        let mut cus = ConstantUtilizationServer::new(0.25);
        let mut total = 0.0;
        for i in 0..50 {
            let e = 0.1 + (i % 7) as f64 * 0.05;
            let deadline = cus.assign_deadline(SimTime::ZERO, e);
            total += e;
            assert!(
                total <= 0.25 * deadline.as_secs_f64() + 1e-9,
                "CUS rate bound violated at job {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn cus_rejects_zero_share() {
        ConstantUtilizationServer::new(0.0);
    }
}
