//! # realtor-node — host model
//!
//! The per-host substrate beneath the discovery protocols:
//!
//! * [`task`] — tasks with sizes, deadlines and priorities (and the paper's
//!   timer-style migratable state),
//! * [`queue`] — the fluid bounded work queue of the Section-5 simulation
//!   ("a single queue of 100 seconds"), with exact threshold-crossing times,
//! * [`scheduler`] — static-priority + EDF dispatch and the Constant
//!   Utilization Server of the Agile Objects runtime,
//! * [`admission`] — utilization-test and queue-test admission control,
//! * [`monitor`] — debounced usage monitoring with watermarks,
//! * [`recovery`] — per-task shadow log over the fluid queue, enabling
//!   crash recovery and evacuation,
//! * [`rt`] — single-CPU EDF/FIFO schedulability simulation validating the
//!   guaranteed-rate admission test.

#![warn(missing_docs)]

pub mod admission;
pub mod monitor;
pub mod queue;
pub mod recovery;
pub mod rt;
pub mod scheduler;
pub mod task;

pub use admission::{AdmissionDecision, QueueAdmission, UtilizationAdmission};
pub use monitor::{ResourceMonitor, UsageEvent};
pub use queue::{AdmitError, WorkQueue};
pub use recovery::{KillSplit, TaskEntry, TaskLog};
pub use rt::{DispatchPolicy, PeriodicTask, RtReport};
pub use scheduler::{ConstantUtilizationServer, EdfScheduler};
pub use task::{Priority, Task, TaskId, TaskIdGen};
