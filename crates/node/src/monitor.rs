//! Resource monitoring — turns raw occupancy into the usage-change
//! notifications that drive Algorithm P and resource-triggered migration.
//!
//! Section 3: *"migration can be triggered by schedulers and resource
//! monitors as response to overload."* The monitor debounces raw occupancy
//! samples: downstream consumers only hear about changes larger than the
//! configured resolution, plus every crossing of any registered watermark.


/// A usage observation worth reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageEvent {
    /// New occupancy fraction.
    pub frac: f64,
    /// Watermark index crossed, if this event was emitted because of a
    /// watermark crossing.
    pub watermark: Option<usize>,
    /// Direction: `true` when occupancy rose.
    pub rising: bool,
}

/// Debouncing usage monitor with watermarks.
#[derive(Debug, Clone)]
pub struct ResourceMonitor {
    resolution: f64,
    watermarks: Vec<f64>,
    last_reported: f64,
    last_seen: f64,
}

impl ResourceMonitor {
    /// Create a monitor reporting changes of at least `resolution`, plus
    /// every crossing of any value in `watermarks`.
    pub fn new(resolution: f64, mut watermarks: Vec<f64>) -> Self {
        assert!(resolution >= 0.0);
        watermarks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ResourceMonitor {
            resolution,
            watermarks,
            last_reported: 0.0,
            last_seen: 0.0,
        }
    }

    /// The registered watermarks, ascending.
    pub fn watermarks(&self) -> &[f64] {
        &self.watermarks
    }

    /// Feed a new occupancy sample; returns an event if it should be
    /// reported downstream.
    pub fn sample(&mut self, frac: f64) -> Option<UsageEvent> {
        let prev = self.last_seen;
        self.last_seen = frac;
        let rising = frac > prev;

        // Watermark crossings always report.
        for (i, &w) in self.watermarks.iter().enumerate() {
            let crossed = (prev < w && frac >= w) || (prev >= w && frac < w);
            if crossed {
                self.last_reported = frac;
                return Some(UsageEvent {
                    frac,
                    watermark: Some(i),
                    rising,
                });
            }
        }

        // Otherwise debounce on resolution.
        if (frac - self.last_reported).abs() >= self.resolution && self.resolution > 0.0 {
            self.last_reported = frac;
            return Some(UsageEvent {
                frac,
                watermark: None,
                rising,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_crossings_always_report() {
        let mut m = ResourceMonitor::new(1.0, vec![0.9]); // resolution too coarse to trigger
        assert!(m.sample(0.5).is_none());
        let ev = m.sample(0.95).unwrap();
        assert_eq!(ev.watermark, Some(0));
        assert!(ev.rising);
        assert!(m.sample(0.99).is_none(), "no re-report on same side");
        let ev = m.sample(0.5).unwrap();
        assert!(!ev.rising);
    }

    #[test]
    fn resolution_debounce() {
        let mut m = ResourceMonitor::new(0.1, vec![]);
        assert!(m.sample(0.05).is_none());
        let ev = m.sample(0.12).unwrap();
        assert_eq!(ev.watermark, None);
        assert!(m.sample(0.15).is_none(), "only 0.03 since last report");
        assert!(m.sample(0.30).is_some());
    }

    #[test]
    fn multiple_watermarks_sorted_and_indexed() {
        let mut m = ResourceMonitor::new(1.0, vec![0.9, 0.5]);
        assert_eq!(m.watermarks(), &[0.5, 0.9]);
        assert_eq!(m.sample(0.6).unwrap().watermark, Some(0));
        assert_eq!(m.sample(0.95).unwrap().watermark, Some(1));
    }

    #[test]
    fn exact_watermark_counts_as_above() {
        let mut m = ResourceMonitor::new(1.0, vec![0.9]);
        assert!(m.sample(0.9).is_some(), "0 -> 0.9 crosses");
        assert!(m.sample(0.9).is_none());
    }
}
