//! Typed sweep grids and their deterministic parallel execution.
//!
//! A [`SweepGrid`] names the axes the paper's evaluation sweeps — defence
//! arm, protocol, mesh side, arrival rate λ, datagram loss, kill count —
//! and expands them row-major into [`GridCell`]s. Axes a given experiment
//! does not sweep stay at their singleton defaults, so one grid type covers
//! the figures, lossy, failover and scalability drivers alike.
//!
//! **Seeding.** Every cell is a hermetic world with its own seed:
//!
//! * [`SeedPolicy::Shared`] gives each cell the grid seed verbatim — the
//!   paper's paired-comparison methodology (all protocols at a λ see the
//!   same arrivals) and the policy under which the golden Figure 5–9 cells
//!   regenerate bit-exact,
//! * [`SeedPolicy::PerCell`] derives `child_seed(grid_seed, cell_label)`
//!   from the cell's **coordinates**. Position never enters the split, so
//!   reordering the grid or adding cells cannot perturb existing cells'
//!   RNG streams (pinned by golden tests in `simcore::rng`).
//!
//! **Execution.** [`run_grid`] fans cells over `simcore::pool` with an
//! explicit job count; [`run_grid_csv`] additionally streams each cell's
//! CSV chunk through a grid-order [`OrderedMerge`] the moment the cell
//! completes, so artifacts are byte-identical for any `--jobs N`.

use realtor_core::ProtocolKind;
use realtor_simcore::merge::OrderedMerge;
use realtor_simcore::pool;
use realtor_simcore::rng::child_seed;
use realtor_simcore::stats::LogHistogram;
use std::io::Write as _;
use std::sync::Mutex;

/// How cells of a grid derive their world seeds from the grid seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedPolicy {
    /// Every cell runs at the grid seed itself (paired comparison across
    /// cells; the golden-figure policy).
    #[default]
    Shared,
    /// Every cell runs at a stable stream split of the grid seed by the
    /// cell's coordinate label (hermetic per-cell streams).
    PerCell,
}

/// A typed sweep grid: the cross product of its axes.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Master seed; cell seeds derive from it per [`SeedPolicy`].
    pub seed: u64,
    /// Experiment-arm axis (e.g. defence postures); `["-"]` when unused.
    pub arms: Vec<String>,
    /// Protocol axis.
    pub protocols: Vec<ProtocolKind>,
    /// Mesh-side axis (N = side²); `[5]` is the paper's 5×5 mesh.
    pub sides: Vec<usize>,
    /// Arrival-rate axis.
    pub lambdas: Vec<f64>,
    /// Datagram-loss axis; `[0.0]` is the ideal channel.
    pub losses: Vec<f64>,
    /// Kill-count axis; `[0]` means no attack.
    pub kills: Vec<usize>,
    /// Seeding policy.
    pub seed_policy: SeedPolicy,
}

impl SweepGrid {
    /// A grid with singleton defaults on every axis (one REALTOR cell on
    /// the paper mesh); set the axes to sweep with the builder methods.
    pub fn new(seed: u64) -> SweepGrid {
        SweepGrid {
            seed,
            arms: vec!["-".to_string()],
            protocols: vec![ProtocolKind::Realtor],
            sides: vec![5],
            lambdas: vec![1.0],
            losses: vec![0.0],
            kills: vec![0],
            seed_policy: SeedPolicy::Shared,
        }
    }

    /// Builder: experiment arms.
    pub fn with_arms<S: Into<String>>(mut self, arms: impl IntoIterator<Item = S>) -> Self {
        self.arms = arms.into_iter().map(Into::into).collect();
        assert!(!self.arms.is_empty(), "arms axis must be non-empty");
        self
    }

    /// Builder: protocols.
    pub fn with_protocols(mut self, protocols: &[ProtocolKind]) -> Self {
        assert!(!protocols.is_empty(), "protocol axis must be non-empty");
        self.protocols = protocols.to_vec();
        self
    }

    /// Builder: mesh sides.
    pub fn with_sides(mut self, sides: &[usize]) -> Self {
        assert!(!sides.is_empty(), "sides axis must be non-empty");
        self.sides = sides.to_vec();
        self
    }

    /// Builder: arrival rates.
    pub fn with_lambdas(mut self, lambdas: &[f64]) -> Self {
        assert!(!lambdas.is_empty(), "lambda axis must be non-empty");
        self.lambdas = lambdas.to_vec();
        self
    }

    /// Builder: datagram loss rates.
    pub fn with_losses(mut self, losses: &[f64]) -> Self {
        assert!(!losses.is_empty(), "loss axis must be non-empty");
        self.losses = losses.to_vec();
        self
    }

    /// Builder: kill counts.
    pub fn with_kills(mut self, kills: &[usize]) -> Self {
        assert!(!kills.is_empty(), "kills axis must be non-empty");
        self.kills = kills.to_vec();
        self
    }

    /// Builder: seeding policy.
    pub fn with_seed_policy(mut self, policy: SeedPolicy) -> Self {
        self.seed_policy = policy;
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.arms.len()
            * self.protocols.len()
            * self.sides.len()
            * self.lambdas.len()
            * self.losses.len()
            * self.kills.len()
    }

    /// True when the grid has no cells (impossible through the builders).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the grid row-major (arms, protocols, sides, lambdas, losses,
    /// kills — slowest to fastest) into seeded cells.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(self.len());
        for arm in &self.arms {
            for &protocol in &self.protocols {
                for &side in &self.sides {
                    for &lambda in &self.lambdas {
                        for &loss in &self.losses {
                            for &kills in &self.kills {
                                let mut cell = GridCell {
                                    index: out.len(),
                                    arm: arm.clone(),
                                    protocol,
                                    side,
                                    lambda,
                                    loss,
                                    kills,
                                    seed: 0,
                                };
                                cell.seed = match self.seed_policy {
                                    SeedPolicy::Shared => self.seed,
                                    SeedPolicy::PerCell => child_seed(self.seed, &cell.label()),
                                };
                                out.push(cell);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One hermetic cell of an expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Position in grid order (output order, never part of the seed).
    pub index: usize,
    /// Experiment arm.
    pub arm: String,
    /// Discovery protocol.
    pub protocol: ProtocolKind,
    /// Mesh side.
    pub side: usize,
    /// Arrival rate.
    pub lambda: f64,
    /// Datagram loss rate.
    pub loss: f64,
    /// Kill count.
    pub kills: usize,
    /// This cell's world seed (per the grid's [`SeedPolicy`]).
    pub seed: u64,
}

impl GridCell {
    /// The cell's stable coordinate label — the stream-split key for
    /// [`SeedPolicy::PerCell`] and for replication seeds. A pure function
    /// of the coordinates: two cells with equal coordinates label (and
    /// therefore seed) identically in any grid.
    pub fn label(&self) -> String {
        format!(
            "cell/arm={}/proto={}/side={}/lambda={}/loss={}/kills={}",
            self.arm,
            self.protocol.label(),
            self.side,
            self.lambda,
            self.loss,
            self.kills
        )
    }
}

/// Execution options for a grid run.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Worker threads (1 = serial on the calling thread).
    pub jobs: usize,
    /// Report completed/total cell counts on stderr.
    pub progress: bool,
}

impl RunOpts {
    /// Serial, quiet — the default the experiment drivers start from.
    pub fn serial() -> RunOpts {
        RunOpts {
            jobs: 1,
            progress: false,
        }
    }

    /// `jobs` workers with progress reporting on stderr.
    pub fn jobs(jobs: usize) -> RunOpts {
        assert!(jobs >= 1, "--jobs must be >= 1");
        RunOpts {
            jobs,
            progress: jobs > 1,
        }
    }
}

fn report_progress(completed: usize, total: usize) {
    // Throttle to ~10 updates per sweep (always report the final cell).
    let stride = (total / 10).max(1);
    if completed == total || completed.is_multiple_of(stride) {
        // stderr is a diagnostics channel here, never an artifact: write
        // through the handle so a closed pipe cannot panic the sweep.
        let _ = writeln!(std::io::stderr(), "  [runner] {completed}/{total} cells done");
    }
}

fn report_timing(timing: &LogHistogram) {
    if timing.is_empty() {
        return;
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    let _ = writeln!(
        std::io::stderr(),
        "  [runner] cell wall time: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms ({} cells)",
        ms(timing.quantile(0.5)),
        ms(timing.quantile(0.99)),
        ms(timing.max()),
        timing.count()
    );
}

/// Run every cell of `grid` through `f` on `opts.jobs` workers, returning
/// results in grid order plus a mergeable [`LogHistogram`] of per-cell
/// wall time (nanoseconds). With a pure `f`, the results are identical for
/// any job count; the timing histogram is a genuine wall-clock observation
/// and varies run to run.
pub fn run_grid_timed<R, F>(grid: &SweepGrid, opts: &RunOpts, f: F) -> (Vec<R>, LogHistogram)
where
    R: Send,
    F: Fn(&GridCell) -> R + Sync,
{
    let cells = grid.cells();
    let progress = opts.progress;
    let timing = Mutex::new(LogHistogram::new());
    let results = pool::run_ordered_observed(
        opts.jobs,
        &cells,
        |cell| {
            let started = std::time::Instant::now();
            let r = f(cell);
            let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            timing.lock().unwrap().record(ns);
            r
        },
        move |completed, total| {
            if progress {
                report_progress(completed, total);
            }
        },
    );
    (results, timing.into_inner().unwrap())
}

/// Run every cell of `grid` through `f` on `opts.jobs` workers, returning
/// results in grid order. With a pure `f`, the output is identical for any
/// job count. Progress mode additionally reports per-cell wall-time
/// quantiles on stderr when the sweep completes.
pub fn run_grid<R, F>(grid: &SweepGrid, opts: &RunOpts, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&GridCell) -> R + Sync,
{
    let (results, timing) = run_grid_timed(grid, opts, f);
    if opts.progress {
        report_timing(&timing);
    }
    results
}

/// Like [`run_grid`], but each cell additionally emits a CSV/JSONL chunk
/// (its own rows, newline-terminated) that is streamed into a grid-order
/// merge as cells complete. Returns the grid-ordered results and the
/// merged bytes (`header` first, then every cell's chunk in grid order) —
/// byte-identical to a serial write for any job count.
pub fn run_grid_csv<R, F>(
    grid: &SweepGrid,
    opts: &RunOpts,
    header: &str,
    f: F,
) -> (Vec<R>, String)
where
    R: Send,
    F: Fn(&GridCell) -> (R, String) + Sync,
{
    let merge = Mutex::new(OrderedMerge::with_header(grid.len(), header));
    let (results, timing) = run_grid_timed(grid, opts, |cell| {
        let (r, chunk) = f(cell);
        // Streamed: pushed at completion time, ordered by the merge.
        merge.lock().unwrap().push(cell.index, chunk);
        r
    });
    if opts.progress {
        report_timing(&timing);
    }
    (results, merge.into_inner().unwrap().finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid::new(42)
            .with_protocols(&[ProtocolKind::Realtor, ProtocolKind::PurePush])
            .with_lambdas(&[2.0, 6.0])
            .with_losses(&[0.0, 0.1])
    }

    #[test]
    fn expansion_is_row_major_and_indexed() {
        let cells = grid().cells();
        assert_eq!(cells.len(), 8);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // protocols slowest of the varied axes, losses fastest.
        assert_eq!(cells[0].protocol, ProtocolKind::Realtor);
        assert_eq!((cells[0].lambda, cells[0].loss), (2.0, 0.0));
        assert_eq!((cells[1].lambda, cells[1].loss), (2.0, 0.1));
        assert_eq!((cells[2].lambda, cells[2].loss), (6.0, 0.0));
        assert_eq!(cells[4].protocol, ProtocolKind::PurePush);
    }

    #[test]
    fn shared_policy_gives_every_cell_the_grid_seed() {
        assert!(grid().cells().iter().all(|c| c.seed == 42));
    }

    #[test]
    fn per_cell_policy_splits_by_coordinates_not_position() {
        let a = grid().with_seed_policy(SeedPolicy::PerCell);
        // The same coordinates in a *bigger, reordered* grid: extra λs in
        // front, extra loss levels appended.
        let b = SweepGrid::new(42)
            .with_protocols(&[ProtocolKind::PurePush, ProtocolKind::Realtor])
            .with_lambdas(&[9.0, 6.0, 2.0])
            .with_losses(&[0.0, 0.1, 0.25])
            .with_seed_policy(SeedPolicy::PerCell);
        let cells_a = a.cells();
        let cells_b = b.cells();
        for ca in &cells_a {
            let cb = cells_b
                .iter()
                .find(|c| {
                    c.protocol == ca.protocol && c.lambda == ca.lambda && c.loss == ca.loss
                })
                .expect("shared coordinates exist in both grids");
            assert_eq!(ca.seed, cb.seed, "seed must follow coordinates: {}", ca.label());
            assert_eq!(ca.label(), cb.label());
        }
        // And distinct coordinates get distinct seeds.
        let mut seeds: Vec<u64> = cells_a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), cells_a.len());
    }

    #[test]
    fn run_grid_orders_results_at_any_job_count() {
        let g = grid();
        let serial = run_grid(&g, &RunOpts::serial(), |c| c.label());
        for jobs in [2, 8] {
            let par = run_grid(&g, &RunOpts { jobs, progress: false }, |c| c.label());
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn run_grid_csv_streams_into_grid_order() {
        let g = grid();
        let header = "label,seed\n";
        let make = |c: &GridCell| (c.index, format!("{},{}\n", c.label(), c.seed));
        let (_, serial) = run_grid_csv(&g, &RunOpts::serial(), header, make);
        for jobs in [2, 8] {
            let (_, par) = run_grid_csv(&g, &RunOpts { jobs, progress: false }, header, make);
            assert_eq!(par, serial, "jobs={jobs}");
        }
        assert!(serial.starts_with(header));
        assert_eq!(serial.lines().count(), 1 + g.len());
    }

    #[test]
    fn run_grid_timed_records_one_sample_per_cell() {
        let g = grid();
        let (results, timing) = run_grid_timed(&g, &RunOpts::jobs(4), |c| c.index);
        assert_eq!(results.len(), g.len());
        assert_eq!(timing.count(), g.len() as u64);
    }

    #[test]
    fn labels_are_stable_strings() {
        let c = &grid().cells()[0];
        assert_eq!(
            c.label(),
            "cell/arm=-/proto=REALTOR-100/side=5/lambda=2/loss=0/kills=0"
        );
    }
}
