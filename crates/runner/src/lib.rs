//! # realtor-runner — deterministic parallel sweep execution
//!
//! The paper's evaluation is a pile of sweep grids: Figures 5–9 and the
//! A1–A14 ablations all expand `(protocol, λ, loss, seed, …)` axes into
//! independent simulation cells. This crate runs those grids across a
//! configurable worker pool while keeping every artifact **bit-identical
//! regardless of thread count**:
//!
//! * [`grid`] — the typed [`SweepGrid`]: axes, row-major expansion into
//!   hermetic [`GridCell`]s, and per-cell seeding by a stable stream split
//!   of the grid seed (`simcore::rng::child_seed` of the cell's
//!   *coordinates*, never its position — reordering or growing the grid
//!   cannot perturb existing cells),
//! * [`replicate`] — confidence-interval-width-driven replication: a cell
//!   re-runs with fresh split seeds until the target relative CI half-width
//!   is met or a cap is hit, replacing fixed-N replication,
//! * execution — `simcore::pool` work-stealing with an explicit `--jobs`
//!   count (serial fast path at 1) and `simcore::merge` grid-order
//!   streaming of per-cell CSV/JSONL chunks.
//!
//! The determinism guarantee is enforced end-to-end by property tests in
//! `tests/jobs_invariance.rs`: for random grids, seeds and protocols the
//! output bytes at `--jobs 1`, `2` and `8` are identical, and every cell's
//! result equals a from-scratch serial run of that single cell.

#![warn(missing_docs)]

pub mod grid;
pub mod replicate;

pub use grid::{run_grid, run_grid_csv, GridCell, RunOpts, SeedPolicy, SweepGrid};
pub use replicate::{replicate_until_ci, CiPolicy, Replication};
