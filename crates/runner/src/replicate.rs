//! Confidence-interval-width-driven replication.
//!
//! Fixed-N replication wastes runs on quiet cells and under-samples noisy
//! ones. [`replicate_until_ci`] instead re-runs a cell with fresh
//! replication seeds until every watched metric's 95% CI half-width falls
//! below a target *relative* width (half-width / |mean|), or a hard cap is
//! hit. Replication seeds come from the same stable stream split as cell
//! seeds — `indexed_child_seed(grid_seed, "rep/<cell label>", rep)` — so
//! replication `k` of a cell draws the same world no matter how many
//! replications end up being needed, which grids run beside it, or how
//! many workers execute the sweep. The whole procedure is a deterministic
//! function of `(policy, grid seed, cell label)`.

use realtor_simcore::rng::indexed_child_seed;
use realtor_simcore::stats::Welford;

/// When to stop replicating a cell.
#[derive(Debug, Clone, Copy)]
pub struct CiPolicy {
    /// Target relative 95% CI half-width: stop once
    /// `half_width <= rel_half_width * max(|mean|, floor)` for every metric.
    pub rel_half_width: f64,
    /// Always run at least this many replications (CI needs >= 2).
    pub min_reps: u64,
    /// Never run more than this many replications.
    pub max_reps: u64,
    /// Means below this magnitude are treated as zero (their absolute
    /// half-width must fall below `rel_half_width * floor`).
    pub floor: f64,
}

impl Default for CiPolicy {
    fn default() -> Self {
        CiPolicy {
            rel_half_width: 0.05,
            min_reps: 3,
            max_reps: 16,
            floor: 1e-9,
        }
    }
}

impl CiPolicy {
    /// Builder: target relative half-width.
    pub fn with_rel_half_width(mut self, v: f64) -> Self {
        assert!(v > 0.0, "relative half-width must be positive");
        self.rel_half_width = v;
        self
    }

    /// Builder: replication bounds.
    pub fn with_reps(mut self, min_reps: u64, max_reps: u64) -> Self {
        assert!(
            (2..=max_reps).contains(&min_reps),
            "need 2 <= min_reps <= max_reps"
        );
        self.min_reps = min_reps;
        self.max_reps = max_reps;
        self
    }
}

/// The outcome of an adaptive replication loop.
#[derive(Debug, Clone)]
pub struct Replication<R> {
    /// Per-replication results, in replication order.
    pub results: Vec<R>,
    /// Number of replications run.
    pub reps: u64,
    /// Whether the CI target was met (false = the cap stopped the loop).
    pub converged: bool,
    /// Worst relative half-width across metrics at stop time.
    pub worst_rel_half_width: f64,
}

impl<R> Replication<R> {
    /// Mean and 95% CI half-width of one watched metric over the
    /// replications actually run.
    pub fn mean_ci(&self, metric: impl Fn(&R) -> f64) -> (f64, f64) {
        let mut w = Welford::new();
        for r in &self.results {
            w.record(metric(r));
        }
        (w.mean(), w.ci95_half_width())
    }
}

/// Relative half-width of one accumulator under a policy.
fn rel_half_width(w: &Welford, policy: &CiPolicy) -> f64 {
    let hw = w.ci95_half_width();
    if hw == 0.0 {
        0.0
    } else {
        hw / w.mean().abs().max(policy.floor)
    }
}

/// Re-run a cell until its CI target is met or the cap is hit.
///
/// `run(seed)` executes one replication at a derived seed; `metrics`
/// extracts the watched quantities from a result (every one must meet the
/// target). Replication seeds are split from `grid_seed` by `cell_label`
/// and the replication index only.
pub fn replicate_until_ci<R>(
    policy: &CiPolicy,
    grid_seed: u64,
    cell_label: &str,
    run: impl Fn(u64) -> R,
    metrics: impl Fn(&R) -> Vec<f64>,
) -> Replication<R> {
    assert!(policy.min_reps >= 2, "CI needs at least two replications");
    assert!(policy.min_reps <= policy.max_reps, "min_reps must not exceed max_reps");
    let stream = format!("rep/{cell_label}");
    let mut results: Vec<R> = Vec::new();
    let mut accs: Vec<Welford> = Vec::new();
    let mut worst = f64::INFINITY;
    while (results.len() as u64) < policy.max_reps {
        let rep = results.len() as u64;
        let r = run(indexed_child_seed(grid_seed, &stream, rep));
        let ms = metrics(&r);
        if accs.is_empty() {
            accs = vec![Welford::new(); ms.len()];
        }
        assert_eq!(ms.len(), accs.len(), "metric count must be stable across reps");
        for (acc, m) in accs.iter_mut().zip(&ms) {
            acc.record(*m);
        }
        results.push(r);
        if (results.len() as u64) >= policy.min_reps {
            worst = accs
                .iter()
                .map(|w| rel_half_width(w, policy))
                .fold(0.0, f64::max);
            if worst <= policy.rel_half_width {
                return Replication {
                    reps: results.len() as u64,
                    results,
                    converged: true,
                    worst_rel_half_width: worst,
                };
            }
        }
    }
    Replication {
        reps: results.len() as u64,
        results,
        converged: false,
        worst_rel_half_width: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realtor_simcore::rng::SimRng;

    #[test]
    fn zero_variance_converges_at_min_reps() {
        let out = replicate_until_ci(
            &CiPolicy::default(),
            42,
            "cell/x",
            |_seed| 7.0,
            |&v| vec![v],
        );
        assert_eq!(out.reps, 3);
        assert!(out.converged);
        assert_eq!(out.worst_rel_half_width, 0.0);
        let (mean, hw) = out.mean_ci(|&v| v);
        assert_eq!((mean, hw), (7.0, 0.0));
    }

    #[test]
    fn high_variance_hits_the_cap() {
        // A metric that is pure seed noise never tightens to 0.1%.
        let policy = CiPolicy::default()
            .with_rel_half_width(0.001)
            .with_reps(2, 6);
        let out = replicate_until_ci(
            &policy,
            42,
            "cell/noisy",
            |seed| SimRng::from_seed(seed).f64(),
            |&v| vec![v],
        );
        assert_eq!(out.reps, 6);
        assert!(!out.converged);
        assert!(out.worst_rel_half_width > policy.rel_half_width);
    }

    #[test]
    fn replication_seeds_are_stable_prefixes() {
        // Running with a larger cap replays the same seeds for the shared
        // prefix: replication k depends only on (grid seed, label, k).
        let seeds = |cap| {
            let policy = CiPolicy::default().with_rel_half_width(1e-12).with_reps(2, cap);
            replicate_until_ci(&policy, 42, "cell/x", |s| s, |&s| vec![s as f64])
                .results
        };
        let short = seeds(4);
        let long = seeds(9);
        assert_eq!(short[..], long[..4]);
        // And they differ from another cell's seeds.
        let policy = CiPolicy::default().with_rel_half_width(1e-12).with_reps(2, 4);
        let other = replicate_until_ci(&policy, 42, "cell/y", |s| s, |&s| vec![s as f64]);
        assert_ne!(short[0], other.results[0]);
    }

    #[test]
    fn deterministic_across_calls() {
        let go = || {
            let policy = CiPolicy::default().with_rel_half_width(0.2).with_reps(2, 12);
            let out = replicate_until_ci(
                &policy,
                7,
                "cell/z",
                |seed| 10.0 + SimRng::from_seed(seed).f64(),
                |&v| vec![v],
            );
            (out.reps, out.converged, out.mean_ci(|&v| v))
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn every_watched_metric_must_converge() {
        // First metric is constant, second is noise: the pair converges
        // later than the first metric alone would.
        let policy = CiPolicy::default().with_rel_half_width(0.5).with_reps(2, 32);
        let out = replicate_until_ci(
            &policy,
            11,
            "cell/pair",
            |seed| SimRng::from_seed(seed).f64(),
            |&v| vec![1.0, v],
        );
        assert!(out.reps >= 2);
        if out.converged {
            assert!(out.worst_rel_half_width <= 0.5);
        }
        let constant_only = replicate_until_ci(
            &policy,
            11,
            "cell/pair",
            |seed| SimRng::from_seed(seed).f64(),
            |_| vec![1.0],
        );
        assert_eq!(constant_only.reps, 2);
        assert!(constant_only.reps <= out.reps);
    }
}
