//! The runner's headline guarantee, property-tested end-to-end on real
//! simulation grids:
//!
//! 1. **Thread-count invariance** — for random grids (protocol subsets,
//!    λs, loss levels, seeds, either seed policy), the merged output bytes
//!    and the grid-ordered `SimResult`s at `--jobs 1`, `2` and `8` are
//!    identical.
//! 2. **Cell hermeticity** — every cell's result equals a from-scratch
//!    serial run of that single cell: running beside other cells, on any
//!    worker, perturbs nothing.
//!
//! Horizons are short (the property is about scheduling, not statistics),
//! but the cells are full REALTOR simulations: floods, pledges,
//! migrations, lossy channels.

use realtor_core::ProtocolKind;
use realtor_net::LinkQuality;
use realtor_runner::{run_grid_csv, GridCell, RunOpts, SeedPolicy, SweepGrid};
use realtor_sim::{run_scenario, Scenario, SimResult};
use realtor_simcore::check::{forall, gen};
use realtor_simcore::prop_assert;

const HORIZON_SECS: u64 = 120;

/// Map a grid cell onto a paper scenario (5×5 mesh; loss via the channel).
fn scenario_of(cell: &GridCell) -> Scenario {
    let s = Scenario::paper(cell.protocol, cell.lambda, HORIZON_SECS, cell.seed);
    if cell.loss > 0.0 {
        s.with_channel(LinkQuality::lossy(cell.loss))
    } else {
        s
    }
}

/// One cell's CSV chunk. Bit-level renderings (`to_bits`) make the bytes
/// sensitive to any f64 drift a scheduling bug could introduce.
fn cell_chunk(cell: &GridCell, r: &SimResult) -> String {
    format!(
        "{},{:#018x},{:#018x},{}\n",
        cell.label(),
        r.admission_probability().to_bits(),
        r.total_messages().to_bits(),
        r.offered
    )
}

const HEADER: &str = "cell,admission_bits,messages_bits,offered\n";

fn run_at(grid: &SweepGrid, jobs: usize) -> (Vec<SimResult>, String) {
    run_grid_csv(
        grid,
        &RunOpts {
            jobs,
            progress: false,
        },
        HEADER,
        |cell| {
            let r = run_scenario(&scenario_of(cell));
            let chunk = cell_chunk(cell, &r);
            (r, chunk)
        },
    )
}

/// Generate a small random grid: 1–3 protocols, 1–3 λs, 1–2 loss levels,
/// any seed, either seed policy.
fn gen_grid(rng: &mut realtor_simcore::SimRng) -> (Vec<u8>, Vec<f64>, Vec<f64>, u64, bool) {
    let protos = gen::vec(rng, 1, 3, |r| gen::u8_in(r, 0, ProtocolKind::ALL.len() as u8));
    let lambdas = gen::vec(rng, 1, 3, |r| (gen::f64_in(r, 2.0, 8.0) * 2.0).round() / 2.0);
    let losses = gen::vec(rng, 1, 2, |r| gen::one_of(r, &[0.0, 0.05, 0.1]));
    (protos, lambdas, losses, rng.u64(), rng.bernoulli(0.5))
}

fn build_grid(input: &(Vec<u8>, Vec<f64>, Vec<f64>, u64, bool)) -> SweepGrid {
    let (protos, lambdas, losses, seed, per_cell) = input;
    let mut protocols: Vec<ProtocolKind> = protos
        .iter()
        .map(|&i| ProtocolKind::ALL[i as usize % ProtocolKind::ALL.len()])
        .collect();
    protocols.dedup();
    let policy = if *per_cell {
        SeedPolicy::PerCell
    } else {
        SeedPolicy::Shared
    };
    SweepGrid::new(*seed)
        .with_protocols(&protocols)
        .with_lambdas(lambdas)
        .with_losses(losses)
        .with_seed_policy(policy)
}

#[test]
fn output_bytes_identical_for_jobs_1_2_8() {
    forall("jobs_invariance", 0x9E1701, 5, gen_grid, |input| {
        let grid = build_grid(input);
        let (serial_results, serial_bytes) = run_at(&grid, 1);
        for jobs in [2usize, 8] {
            let (results, bytes) = run_at(&grid, jobs);
            prop_assert!(
                bytes == serial_bytes,
                "merged bytes diverged at jobs={jobs} on grid {:?}",
                input
            );
            prop_assert!(
                results == serial_results,
                "SimResults diverged at jobs={jobs} on grid {:?}",
                input
            );
        }
        Ok(())
    });
}

#[test]
fn each_cell_matches_a_from_scratch_single_cell_run() {
    forall("cell_hermeticity", 0x9E1702, 3, gen_grid, |input| {
        let grid = build_grid(input);
        let (grid_results, _) = run_at(&grid, 8);
        for (cell, from_grid) in grid.cells().iter().zip(&grid_results) {
            let alone = run_scenario(&scenario_of(cell));
            prop_assert!(
                alone == *from_grid,
                "cell {} differs from its from-scratch serial run",
                cell.label()
            );
        }
        Ok(())
    });
}

/// The Figure 5–8 grid itself (all five protocols, the paper's λ axis at a
/// short horizon) through the runner: grid execution must reproduce
/// serial `run_scenario` calls exactly, at every job count. Together with
/// `tests/golden_figures.rs` (which pins `run_scenario` bit-for-bit at
/// horizon 1000) this guarantees the golden figure cells regenerate
/// bit-exact through the new runner.
#[test]
fn figures_grid_through_runner_equals_direct_runs() {
    let lambdas = [2.0, 5.0, 8.0];
    let grid = SweepGrid::new(42)
        .with_protocols(&ProtocolKind::ALL)
        .with_lambdas(&lambdas);
    let expected: Vec<SimResult> = grid
        .cells()
        .iter()
        .map(|c| run_scenario(&Scenario::paper(c.protocol, c.lambda, HORIZON_SECS, 42)))
        .collect();
    for jobs in [1usize, 2, 8] {
        let got = realtor_runner::run_grid(
            &grid,
            &RunOpts {
                jobs,
                progress: false,
            },
            |c| run_scenario(&scenario_of(c)),
        );
        assert_eq!(got, expected, "jobs={jobs}");
    }
}
