//! Property-based tests of whole-simulation invariants: whatever the
//! workload, topology or protocol, the accounting must balance. On the
//! in-tree `check` harness.

use realtor_core::ProtocolKind;
use realtor_net::Topology;
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::prelude::*;
use realtor_simcore::{prop_assert, prop_assert_eq};

fn arb_protocol(rng: &mut SimRng) -> ProtocolKind {
    gen::one_of(
        rng,
        &[
            ProtocolKind::PurePull,
            ProtocolKind::PurePush,
            ProtocolKind::AdaptivePush,
            ProtocolKind::AdaptivePull,
            ProtocolKind::Realtor,
        ],
    )
}

/// Conservation: offered = admitted + rejected; migrated admissions
/// equal migration successes; ledger components are non-negative; the
/// run is reproducible.
#[test]
fn accounting_balances() {
    forall(
        "accounting_balances",
        0x514D01,
        24,
        |r| {
            (
                arb_protocol(r),
                gen::f64_in(r, 0.5, 12.0),
                gen::u64_in(r, 0, 1_000),
                gen::usize_in(r, 2, 6),
            )
        },
        |&(protocol, lambda, seed, side)| {
            let scenario = Scenario::paper(protocol, lambda, 120, seed)
                .with_topology(Topology::mesh(side, side));
            let r = run_scenario(&scenario);
            // validate() already ran inside; assert the key identities here too
            prop_assert_eq!(r.offered, r.admitted() + r.rejected);
            prop_assert_eq!(r.admitted_migrated, r.migration_successes);
            prop_assert!(r.migration_successes <= r.migration_attempts);
            prop_assert!(r.ledger.help >= 0.0);
            prop_assert!(r.ledger.pledge >= 0.0);
            prop_assert!(r.ledger.push >= 0.0);
            prop_assert!(r.ledger.migration >= 0.0);
            prop_assert!((0.0..=1.0).contains(&r.admission_probability()));
            let again = run_scenario(&scenario);
            prop_assert_eq!(r.offered, again.offered);
            prop_assert_eq!(r.admitted(), again.admitted());
            prop_assert_eq!(r.ledger, again.ledger);
            Ok(())
        },
    );
}

/// Load monotonicity (statistical, wide tolerance): doubling the arrival
/// rate never *increases* admission probability materially.
#[test]
fn admission_weakly_decreases_in_load() {
    forall(
        "admission_weakly_decreases_in_load",
        0x514D02,
        16,
        |r| (arb_protocol(r), gen::u64_in(r, 0, 200)),
        |&(protocol, seed)| {
            let p_low =
                run_scenario(&Scenario::paper(protocol, 3.0, 400, seed)).admission_probability();
            let p_high =
                run_scenario(&Scenario::paper(protocol, 10.0, 400, seed)).admission_probability();
            prop_assert!(
                p_high <= p_low + 0.02,
                "admission rose with load: {p_low} -> {p_high}"
            );
            Ok(())
        },
    );
}

/// Messages only flow when the protocol has a reason: with a workload
/// far below every threshold, pull-family protocols stay silent.
#[test]
fn quiet_system_sends_no_solicitations() {
    forall(
        "quiet_system_sends_no_solicitations",
        0x514D03,
        16,
        |r| gen::u64_in(r, 0, 200),
        |&seed| {
            for protocol in [
                ProtocolKind::PurePull,
                ProtocolKind::AdaptivePull,
                ProtocolKind::Realtor,
            ] {
                let r = run_scenario(&Scenario::paper(protocol, 0.4, 200, seed));
                prop_assert_eq!(
                    r.ledger.help_count,
                    0,
                    "{} sent HELP while idle",
                    protocol.label()
                );
                prop_assert_eq!(r.ledger.pledge_count, 0);
            }
            Ok(())
        },
    );
}
