//! Property tests of the chaos subsystem (A16): whatever churn schedule,
//! partition script or adversary configuration runs, the survivability
//! ledger must balance, the trace registry must reconcile, runs must be
//! reproducible — and with chaos disabled the world must be byte-identical
//! to the paper baseline.

use realtor_core::{FailureDetectorConfig, ProtocolConfig, ProtocolKind};
use realtor_net::TargetingStrategy;
use realtor_sim::{
    run_scenario, run_scenario_traced, AdversaryConfig, ChaosConfig, RecoveryConfig, Scenario,
};
use realtor_simcore::prelude::*;
use realtor_simcore::trace::Tracer;
use realtor_simcore::{prop_assert, prop_assert_eq, SimDuration, SimTime};
use realtor_workload::{AttackScenario, ChurnConfig};

const HORIZON_SECS: u64 = 300;

fn arb_protocol(rng: &mut SimRng) -> ProtocolKind {
    gen::one_of(rng, &ProtocolKind::ALL)
}

fn detector() -> FailureDetectorConfig {
    FailureDetectorConfig {
        suspect_after: SimDuration::from_secs(4),
        confirm_after: SimDuration::from_secs(2),
        sweep_interval: SimDuration::from_secs(1),
    }
}

/// A random churn schedule inside the horizon as shrinkable primitives:
/// (fraction 2–25%, interval 5–30 s, window start, window end).
fn arb_churn(rng: &mut SimRng) -> (f64, u64, u64, u64) {
    let fraction = gen::f64_in(rng, 0.02, 0.25);
    let interval = gen::u64_in(rng, 5, 30);
    let start = gen::u64_in(rng, 20, HORIZON_SECS / 2);
    let end = gen::u64_in(rng, start + 10, HORIZON_SECS - 10);
    (fraction, interval, start, end)
}

/// Build the config from the generated primitives, clamping the window so
/// shrunk counterexamples stay valid.
fn churn_of((fraction, interval, start, end): (f64, u64, u64, u64)) -> ChurnConfig {
    let start = start.clamp(5, HORIZON_SECS - 20);
    let end = end.clamp(start + 1, HORIZON_SECS - 1);
    ChurnConfig::new(
        fraction.clamp(0.01, 1.0),
        SimDuration::from_secs(interval.max(1)),
        SimTime::from_secs(start),
        SimTime::from_secs(end),
    )
}

/// The survivability task ledger balances for any churn schedule, any
/// partition script layered on top, any seed and protocol — and the run
/// reproduces bit-for-bit.
#[test]
fn ledger_balances_under_random_churn_and_partitions() {
    forall(
        "chaos_ledger",
        0xC4A051,
        12,
        |r| {
            (
                arb_protocol(r),
                gen::f64_in(r, 3.0, 9.0),
                gen::u64_in(r, 0, 1_000),
                arb_churn(r),
                r.bernoulli(0.5),
                gen::usize_in(r, 2, 4),
            )
        },
        |&(protocol, lambda, seed, churn, partitioned, parts)| {
            let mut scenario = Scenario::paper(protocol, lambda, HORIZON_SECS, seed)
                .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector()))
                .with_recovery(RecoveryConfig::reactive())
                .with_window(SimDuration::from_secs(10))
                .with_chaos(ChaosConfig::churn(churn_of(churn)));
            if partitioned {
                scenario = scenario.with_attack(
                    AttackScenario::partition_and_heal(
                        SimTime::from_secs(HORIZON_SECS / 3),
                        SimTime::from_secs(HORIZON_SECS * 2 / 3),
                        parts.clamp(2, 4),
                    ),
                    TargetingStrategy::Random,
                );
            }
            let r = run_scenario(&scenario);
            // SimResult::validate() already ran inside run_scenario; assert
            // the chaos ledger identities explicitly as well.
            prop_assert_eq!(r.tasks_interrupted, r.tasks_recovered + r.tasks_destroyed);
            prop_assert_eq!(r.offered, r.admitted() + r.rejected);
            prop_assert!(r.work_destroyed >= 0.0);
            let again = run_scenario(&scenario);
            prop_assert!(r == again, "chaos run must be deterministic");
            Ok(())
        },
    );
}

/// The trace registry reconciles with the `SimResult` under churn +
/// partition chaos, and the attached tracer never perturbs the run.
#[test]
fn registry_reconciles_under_chaos() {
    forall(
        "chaos_reconciliation",
        0xC4A052,
        6,
        |r| (gen::u64_in(r, 0, 500), arb_churn(r)),
        |&(seed, churn)| {
            let scenario = Scenario::paper(ProtocolKind::Realtor, 6.0, HORIZON_SECS, seed)
                .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector()))
                .with_recovery(RecoveryConfig::reactive())
                .with_window(SimDuration::from_secs(10))
                .with_attack(
                    AttackScenario::partition_and_heal(
                        SimTime::from_secs(HORIZON_SECS / 3),
                        SimTime::from_secs(HORIZON_SECS * 2 / 3),
                        2,
                    ),
                    TargetingStrategy::Random,
                )
                .with_chaos(ChaosConfig::churn(churn_of(churn)));
            let tracer = Tracer::bounded(100_000);
            let r = run_scenario_traced(&scenario, tracer.clone());
            let snap = tracer.snapshot();
            for (name, want) in [
                ("offered", r.offered),
                ("rejected", r.rejected),
                ("tasks_interrupted", r.tasks_interrupted),
                ("tasks_recovered", r.tasks_recovered),
                ("tasks_destroyed", r.tasks_destroyed),
                ("msg_help", r.ledger.help_count),
                ("msg_pledge", r.ledger.pledge_count),
                ("partition_dropped", r.ledger.partition_dropped_count),
            ] {
                prop_assert_eq!(snap.registry.counter(name), want, "counter {}", name);
            }
            prop_assert!(
                run_scenario(&scenario) == r,
                "tracing must not perturb a chaos run"
            );
            Ok(())
        },
    );
}

/// A partition is not a kill: nodes stay alive, but messages cannot cross
/// the cut (accounted in the ledger), and healing restores full service.
#[test]
fn partitions_block_traffic_without_killing_nodes() {
    let scenario = Scenario::paper(ProtocolKind::Realtor, 6.0, HORIZON_SECS, 42)
        .with_window(SimDuration::from_secs(10))
        .with_attack(
            AttackScenario::partition_and_heal(
                SimTime::from_secs(100),
                SimTime::from_secs(200),
                3,
            ),
            TargetingStrategy::Random,
        );
    let r = run_scenario(&scenario);
    assert!(
        r.ledger.partition_dropped_count > 0,
        "a 3-way partition must drop cross-partition messages"
    );
    // Every node stays alive through the whole run: partitions sever links,
    // not hosts.
    assert!(r.windows.iter().all(|w| w.alive_nodes == 25));
    assert_eq!(r.tasks_interrupted, 0, "no tasks die from a pure partition");
    // The partition does not leak into the ledger's charged total.
    let baseline = run_scenario(&Scenario::paper(ProtocolKind::Realtor, 6.0, HORIZON_SECS, 42));
    assert_eq!(baseline.ledger.partition_dropped_count, 0);
}

/// Chaos disabled is the paper baseline, bit for bit: attaching an empty
/// `ChaosConfig` changes nothing about a run (the golden-figure tests pin
/// the baseline itself).
#[test]
fn chaos_none_is_bit_exact_with_baseline() {
    for (lambda, seed) in [(2.0, 42), (8.0, 7)] {
        let base = Scenario::paper(ProtocolKind::Realtor, lambda, 200, seed);
        let with_none = base.clone().with_chaos(ChaosConfig::none());
        assert!(
            run_scenario(&base) == run_scenario(&with_none),
            "ChaosConfig::none() must be invisible (lambda {lambda}, seed {seed})"
        );
    }
}

/// The adaptive adversary: strikes kill exactly `kills` alive nodes chosen
/// from observed traffic, victims return after the downtime, runs are
/// deterministic — and the internal observation tracer's buffer capacity
/// never changes the decisions (counters, not buffered events, drive the
/// ranking).
#[test]
fn adversary_strikes_are_bounded_deterministic_and_capacity_free() {
    let adv = AdversaryConfig {
        interval: SimDuration::from_secs(50),
        kills: 3,
        downtime: SimDuration::from_secs(20),
        start: SimTime::from_secs(100),
        end: SimTime::from_secs(250),
    };
    let scenario = Scenario::paper(ProtocolKind::Realtor, 6.0, HORIZON_SECS, 42)
        .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector()))
        .with_recovery(RecoveryConfig::reactive())
        .with_window(SimDuration::from_secs(5))
        .with_chaos(ChaosConfig::adversary(adv));
    let r = run_scenario(&scenario);
    let min_alive = r.windows.iter().map(|w| w.alive_nodes).min().unwrap();
    assert_eq!(
        min_alive,
        25 - adv.kills,
        "each strike must take down exactly its kill budget"
    );
    assert_eq!(
        r.windows.last().unwrap().alive_nodes,
        25,
        "every adversary victim must be restored after its downtime"
    );
    assert_eq!(r.tasks_interrupted, r.tasks_recovered + r.tasks_destroyed);
    assert!(
        r.tasks_interrupted > 0,
        "strikes against top talkers must interrupt queued work"
    );
    // Determinism, and independence from the attached tracer's capacity:
    // the adversary reads the counter registry, which is unbounded, so a
    // huge externally-attached tracer must reproduce the same run.
    assert!(run_scenario(&scenario) == r);
    assert!(run_scenario_traced(&scenario, Tracer::bounded(1_000_000)) == r);
}
