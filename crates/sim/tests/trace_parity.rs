//! Satellite of the trace layer: attaching a tracer must never change what
//! the simulation computes. `SimResult` derives `PartialEq`, so "bit
//! identical" is a single comparison — every counter, every window, every
//! ledger cell.

use realtor_core::{FailureDetectorConfig, ProtocolConfig, ProtocolKind};
use realtor_net::{LinkQuality, TargetingStrategy, Topology};
use realtor_sim::{run_scenario, run_scenario_traced, RecoveryConfig, Scenario};
use realtor_simcore::prelude::*;
use realtor_simcore::prop_assert;
use realtor_workload::AttackScenario;

fn arb_protocol(rng: &mut SimRng) -> ProtocolKind {
    gen::one_of(
        rng,
        &[
            ProtocolKind::PurePull,
            ProtocolKind::PurePush,
            ProtocolKind::AdaptivePush,
            ProtocolKind::AdaptivePull,
            ProtocolKind::Realtor,
        ],
    )
}

/// The nastiest scenario shape we have: lossy channel, warned strike,
/// proactive recovery, failure detection — every trace emission site fires.
fn chaos_scenario(protocol: ProtocolKind, lambda: f64, seed: u64, loss: f64) -> Scenario {
    let horizon = 240;
    let detector = FailureDetectorConfig {
        suspect_after: SimDuration::from_secs(4),
        confirm_after: SimDuration::from_secs(2),
        sweep_interval: SimDuration::from_secs(1),
    };
    let attack = AttackScenario::warned_strike_and_recover(
        SimTime::from_secs(90),
        SimDuration::from_secs(10),
        SimTime::from_secs(170),
        5,
    );
    Scenario::paper(protocol, lambda, horizon, seed)
        .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector))
        .with_channel(LinkQuality::lossy(loss))
        .with_attack(attack, TargetingStrategy::Random)
        .with_window(SimDuration::from_secs(12))
        .with_recovery(RecoveryConfig::proactive())
}

/// Property: for random protocols, loads, seeds and loss rates, the traced
/// run returns a `SimResult` equal to the plain run's.
#[test]
fn tracing_on_equals_tracing_off() {
    forall(
        "tracing_on_equals_tracing_off",
        0x7ACE01,
        16,
        |r| {
            (
                arb_protocol(r),
                gen::f64_in(r, 1.0, 9.0),
                gen::u64_in(r, 0, 1_000),
                gen::f64_in(r, 0.0, 0.15),
            )
        },
        |&(protocol, lambda, seed, loss)| {
            let scenario = chaos_scenario(protocol, lambda, seed, loss);
            let plain = run_scenario(&scenario);
            let tracer = Tracer::bounded(4_096);
            let traced = run_scenario_traced(&scenario, tracer.clone());
            prop_assert!(
                plain == traced,
                "{} lambda {lambda} seed {seed} loss {loss}: tracing changed the result",
                protocol.label()
            );
            prop_assert!(
                tracer.snapshot().recorded > 0,
                "the chaos scenario must actually emit events"
            );
            Ok(())
        },
    );
}

/// A tracer with aggressive filtering (tiny ring, Info floor, narrow kind
/// allow-list) is still observational.
#[test]
fn filtered_tracer_is_still_observational() {
    forall(
        "filtered_tracer_is_still_observational",
        0x7ACE02,
        12,
        |r| (gen::f64_in(r, 2.0, 10.0), gen::u64_in(r, 0, 500)),
        |&(lambda, seed)| {
            let scenario = chaos_scenario(ProtocolKind::Realtor, lambda, seed, 0.05);
            let plain = run_scenario(&scenario);
            let tracer = Tracer::bounded(64)
                .with_min_severity(realtor_simcore::trace::Severity::Info)
                .with_kinds(&[TraceKind::HelpFlood, TraceKind::NodeKill]);
            let traced = run_scenario_traced(&scenario, tracer);
            prop_assert!(plain == traced, "filtering changed the result");
            Ok(())
        },
    );
}

/// Fixed golden-style cell for every protocol: the exact Figure-5 scenario
/// the golden tests pin, traced vs plain.
#[test]
fn golden_cell_parity_all_protocols() {
    for protocol in ProtocolKind::ALL {
        let scenario = Scenario::paper(protocol, 6.0, 400, 42)
            .with_topology(Topology::mesh(5, 5));
        let plain = run_scenario(&scenario);
        let traced = run_scenario_traced(&scenario, Tracer::bounded(100_000));
        assert!(
            plain == traced,
            "{}: traced golden cell diverged from plain run",
            protocol.label()
        );
    }
}
