//! Integration tests for the crash-recovery subsystem: failure detection
//! feeding reactive checkpoint recovery, warning-driven proactive
//! evacuation, and the determinism and ledger invariants that keep the
//! whole machinery honest. The golden Figure-5 configuration keeps
//! recovery disabled, so everything here exercises the opt-in paths.

use realtor_core::{FailureDetectorConfig, ProtocolConfig, ProtocolKind};
use realtor_net::TargetingStrategy;
use realtor_sim::{run_scenario, RecoveryConfig, Scenario};
use realtor_simcore::{SimDuration, SimTime};
use realtor_workload::AttackScenario;

const KILLS: usize = 8;

fn detector() -> FailureDetectorConfig {
    FailureDetectorConfig {
        suspect_after: SimDuration::from_secs(4),
        confirm_after: SimDuration::from_secs(2),
        sweep_interval: SimDuration::from_secs(1),
    }
}

/// λ=6 overload on the paper mesh, detector on, strike at t=100 (warned
/// strikes are warned at t=90 with a 10 s lead, landing at the same
/// instant), full restore at t=200, horizon 300 s.
fn scenario(recovery: RecoveryConfig, warned: bool, seed: u64) -> Scenario {
    let attack = if warned {
        AttackScenario::warned_strike_and_recover(
            SimTime::from_secs(90),
            SimDuration::from_secs(10),
            SimTime::from_secs(200),
            KILLS,
        )
    } else {
        AttackScenario::strike_and_recover(
            SimTime::from_secs(100),
            SimTime::from_secs(200),
            KILLS,
        )
    };
    Scenario::paper(ProtocolKind::Realtor, 6.0, 300, seed)
        .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector()))
        .with_attack(attack, TargetingStrategy::Random)
        .with_recovery(recovery)
}

#[test]
fn without_recovery_interrupted_work_is_silently_destroyed() {
    let r = run_scenario(&scenario(RecoveryConfig::default(), false, 42));
    assert!(r.work_destroyed > 0.0, "kills must destroy queued work");
    assert_eq!(r.tasks_interrupted, 0, "no task identity without recovery");
    assert_eq!(r.tasks_recovered, 0);
    assert_eq!(r.recovery_attempts, 0);
    assert_eq!(r.evacuation_attempts, 0);
    assert!(r.lost_to_attacks > 0);
    // The detector still runs (it is protocol state), so the outage itself
    // is noticed even though nobody acts on the orphaned work.
    assert!(r.detections > 0);
}

#[test]
fn reactive_recovery_rehomes_checkpointed_tasks() {
    let r = run_scenario(&scenario(RecoveryConfig::reactive(), false, 42));
    assert!(r.tasks_interrupted > 0, "the strike must interrupt tasks");
    assert!(r.tasks_recovered > 0, "full checkpoints must recover some");
    assert!(r.work_recovered > 0.0);
    assert!(r.recovered_fraction() > 0.0);
    // Detection is the recovery trigger: latency is bounded by the
    // detector windows (4 s suspicion + 2 s confirmation + 2 sweeps).
    assert!(r.detections >= 1);
    let lat = r.mean_detection_latency();
    assert!(lat > 0.0 && lat <= 8.0, "detection latency {lat}");
    // `tasks_interrupted == tasks_recovered + tasks_destroyed` was already
    // enforced by SimResult::validate() inside run_scenario.
}

#[test]
fn zero_checkpoint_fraction_destroys_every_interrupted_task() {
    let cfg = RecoveryConfig::reactive().with_checkpoint_fraction(0.0);
    let r = run_scenario(&scenario(cfg, false, 42));
    assert!(r.tasks_interrupted > 0);
    assert_eq!(r.tasks_recovered, 0, "nothing to recover without checkpoints");
    assert_eq!(r.tasks_destroyed, r.tasks_interrupted);
    assert_eq!(r.recovery_attempts, 0);
}

#[test]
fn proactive_evacuation_moves_work_before_the_strike() {
    let r = run_scenario(&scenario(RecoveryConfig::proactive(), true, 42));
    assert!(r.evacuation_attempts > 0, "warning must trigger evacuations");
    assert!(r.evacuation_successes > 0, "some evacuations must land");
    assert!(r.work_evacuated > 0.0);
    assert!(r.evacuation_successes <= r.evacuation_attempts);

    // Evacuation drains the victims before the kill, so proactive runs
    // destroy strictly less work at the strike than warned-but-passive
    // runs on the same seed (identical victims by construction).
    let passive = run_scenario(&scenario(RecoveryConfig::reactive(), true, 42));
    assert!(
        r.work_destroyed + r.work_recovered <= passive.work_destroyed + passive.work_recovered,
        "evacuation should shrink the exposed backlog: proactive {} vs passive {}",
        r.work_destroyed + r.work_recovered,
        passive.work_destroyed + passive.work_recovered,
    );
}

#[test]
fn warned_and_unwarned_strikes_are_equivalent_without_defence() {
    // Same seed, recovery off: the warning changes nothing except when the
    // targeting stream is drawn, and the draw is constructed to match.
    let unwarned = run_scenario(&scenario(RecoveryConfig::default(), false, 7));
    let warned = run_scenario(&scenario(RecoveryConfig::default(), true, 7));
    assert_eq!(unwarned.offered, warned.offered);
    assert_eq!(unwarned.admitted(), warned.admitted());
    assert_eq!(unwarned.lost_to_attacks, warned.lost_to_attacks);
    assert_eq!(
        unwarned.work_destroyed.to_bits(),
        warned.work_destroyed.to_bits(),
        "identical victims, identical destroyed backlog"
    );
}

#[test]
fn failover_runs_are_deterministic() {
    for (recovery, warned) in [
        (RecoveryConfig::reactive(), false),
        (RecoveryConfig::proactive(), true),
    ] {
        let a = run_scenario(&scenario(recovery, warned, 11));
        let b = run_scenario(&scenario(recovery, warned, 11));
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same run");
    }
}
