//! Link-level attack integration tests: the network degrades (paths
//! lengthen, partitions form) while every node stays alive.

use realtor_core::ProtocolKind;
use realtor_net::TargetingStrategy;
use realtor_sim::{run_scenario, Scenario};
use realtor_simcore::SimTime;
use realtor_workload::{AttackAction, AttackEvent, AttackScenario};

fn with_link_attack(cut: usize, restore: bool) -> realtor_sim::SimResult {
    let mut events = vec![AttackEvent {
        at: SimTime::from_secs(100),
        action: AttackAction::CutLinks { count: cut },
    }];
    if restore {
        events.push(AttackEvent {
            at: SimTime::from_secs(200),
            action: AttackAction::RestoreLinks,
        });
    }
    let scenario = Scenario::paper(ProtocolKind::Realtor, 6.0, 300, 21)
        .with_attack(AttackScenario::new(events), TargetingStrategy::Random);
    run_scenario(&scenario)
}

#[test]
fn link_cuts_do_not_lose_arrivals() {
    // Nodes stay up: no arrival is addressed to a dead node.
    let r = with_link_attack(15, true);
    assert_eq!(r.lost_to_attacks, 0);
    assert!(r.offered > 1000);
    r.validate();
}

#[test]
fn severe_link_damage_still_admits_locally() {
    // Cutting most of the 40 links partitions the mesh; local admission
    // keeps working, so admission probability stays well above zero.
    let r = with_link_attack(35, false);
    assert!(
        r.admission_probability() > 0.5,
        "admission {} under heavy link damage",
        r.admission_probability()
    );
}

#[test]
fn link_attack_is_deterministic() {
    let a = with_link_attack(15, true);
    let b = with_link_attack(15, true);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.admitted(), b.admitted());
    assert_eq!(a.ledger, b.ledger);
}
