//! Satellite of the trace layer: the counter registry the world maintains
//! while tracing must reconcile, name by name, with the `SimResult` the run
//! returns — the counters are bumped beside the very same `result` field
//! mutations, so any drift means an instrumentation site was missed.

use realtor_core::{FailureDetectorConfig, ProtocolConfig, ProtocolKind};
use realtor_net::{LinkQuality, TargetingStrategy};
use realtor_sim::{run_scenario_traced, RecoveryConfig, Scenario, SimResult};
use realtor_simcore::trace::{validate_json_line, TraceSnapshot, Tracer};
use realtor_simcore::{SimDuration, SimTime};
use realtor_workload::AttackScenario;

/// Lossy channel + warned strike + proactive recovery: every counter the
/// world knows about moves in this run.
fn chaos() -> Scenario {
    let detector = FailureDetectorConfig {
        suspect_after: SimDuration::from_secs(4),
        confirm_after: SimDuration::from_secs(2),
        sweep_interval: SimDuration::from_secs(1),
    };
    let attack = AttackScenario::warned_strike_and_recover(
        SimTime::from_secs(160),
        SimDuration::from_secs(10),
        SimTime::from_secs(280),
        6,
    );
    Scenario::paper(ProtocolKind::Realtor, 6.0, 400, 42)
        .with_protocol_config(ProtocolConfig::paper().with_failure_detector(detector))
        .with_channel(LinkQuality::lossy(0.05))
        .with_attack(attack, TargetingStrategy::Random)
        .with_window(SimDuration::from_secs(20))
        .with_recovery(RecoveryConfig::proactive())
}

fn assert_counter(snap: &TraceSnapshot, name: &str, want: u64) {
    assert_eq!(
        snap.registry.counter(name),
        want,
        "registry counter {name} does not match SimResult"
    );
}

#[test]
fn registry_reconciles_with_sim_result() {
    let scenario = chaos();
    let tracer = Tracer::bounded(100_000);
    let r: SimResult = run_scenario_traced(&scenario, tracer.clone());
    let snap = tracer.snapshot();

    // The scenario must actually exercise the failure machinery, or the
    // reconciliation below would pass vacuously.
    assert!(r.offered > 0);
    assert!(r.tasks_interrupted > 0, "strike must interrupt tasks");
    assert!(r.ledger.lost_count > 0, "lossy channel must drop messages");
    assert!(r.detections > 0, "detector must confirm the outage");

    assert_counter(&snap, "offered", r.offered);
    assert_counter(&snap, "admitted_local", r.admitted_local);
    assert_counter(&snap, "admitted_migrated", r.admitted_migrated);
    assert_counter(&snap, "rejected", r.rejected);
    assert_counter(&snap, "lost_to_attacks", r.lost_to_attacks);
    assert_counter(&snap, "migration_attempts", r.migration_attempts);
    assert_counter(&snap, "migration_successes", r.migration_successes);
    assert_counter(&snap, "tasks_interrupted", r.tasks_interrupted);
    assert_counter(&snap, "tasks_recovered", r.tasks_recovered);
    assert_counter(&snap, "tasks_destroyed", r.tasks_destroyed);
    assert_counter(&snap, "recovery_attempts", r.recovery_attempts);
    assert_counter(&snap, "evacuation_attempts", r.evacuation_attempts);
    assert_counter(&snap, "evacuation_successes", r.evacuation_successes);
    assert_counter(&snap, "detections", r.detections);
    assert_counter(&snap, "false_suspicions", r.false_suspicions);

    // Message counters shadow the cost ledger's per-class counts.
    assert_counter(&snap, "msg_help", r.ledger.help_count);
    assert_counter(&snap, "msg_pledge", r.ledger.pledge_count);
    assert_counter(&snap, "msg_push", r.ledger.push_count);
    assert_counter(&snap, "msg_migration", r.ledger.migration_count);
    assert_counter(&snap, "channel_lost", r.ledger.lost_count);
    assert_counter(&snap, "channel_duplicated", r.ledger.duplicated_count);

    // Per-node counters shadow the per-node stats.
    for (node, stat) in r.node_stats.iter().enumerate() {
        assert_eq!(
            snap.registry.node_counter("offered", node),
            stat.offered,
            "node {node} offered"
        );
        assert_eq!(
            snap.registry.node_counter("admitted_here", node),
            stat.admitted_here,
            "node {node} admitted_here"
        );
    }
}

#[test]
fn exported_jsonl_is_valid_line_by_line() {
    let tracer = Tracer::bounded(100_000);
    let _ = run_scenario_traced(&chaos(), tracer.clone());
    let jsonl = tracer.export_jsonl();
    let mut lines = 0usize;
    for line in jsonl.lines() {
        validate_json_line(line).unwrap_or_else(|e| panic!("bad JSON line: {e}\n{line}"));
        lines += 1;
    }
    assert!(lines > 1_000, "chaos run should emit plenty of events");
}

#[test]
fn engine_profile_fields_are_populated() {
    let scenario = chaos();
    let (r, profile) = realtor_sim::run_scenario_profiled(&scenario);
    assert!(r.queue_high_water > 0, "event queue must have held events");
    assert_eq!(profile.events_processed, r.events_processed);
    assert_eq!(profile.queue_high_water, r.queue_high_water);
    assert!(profile.events_per_sec() > 0.0);
    // The profile never perturbs the result either.
    assert!(realtor_sim::run_scenario(&scenario) == r);
}
