//! Parameter sweeps — the machinery that regenerates the paper's figures.
//!
//! A sweep runs one simulation per (protocol, λ) point. All five protocols
//! at a given λ share the identical workload trace (same seed), so the
//! comparison is paired exactly as in the paper's methodology ("we
//! repeatedly run the simulation for other approaches"). Points run in
//! parallel on OS threads; results are assembled in deterministic order.

use crate::config::Scenario;
use crate::metrics::SimResult;
use crate::world::run_scenario;
use realtor_core::ProtocolKind;
use realtor_simcore::table::{Cell, Table};

/// Which figure metric a table column reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureMetric {
    /// Figure 5: admission probability.
    AdmissionProbability,
    /// Figure 6: total message cost.
    TotalMessages,
    /// Figure 7: message cost per admitted task.
    CostPerAdmittedTask,
    /// Figure 8: migrations per admitted task.
    MigrationRate,
}

impl FigureMetric {
    /// Extract this metric from a run result.
    pub fn extract(self, r: &SimResult) -> f64 {
        match self {
            FigureMetric::AdmissionProbability => r.admission_probability(),
            FigureMetric::TotalMessages => r.total_messages(),
            FigureMetric::CostPerAdmittedTask => r.cost_per_admitted_task(),
            FigureMetric::MigrationRate => r.migration_rate(),
        }
    }

    /// Column/axis label.
    pub fn label(self) -> &'static str {
        match self {
            FigureMetric::AdmissionProbability => "admission-probability",
            FigureMetric::TotalMessages => "number-of-messages",
            FigureMetric::CostPerAdmittedTask => "message-cost-per-task",
            FigureMetric::MigrationRate => "migration-rate",
        }
    }
}

/// One (protocol, λ) result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The protocol.
    pub protocol: ProtocolKind,
    /// The arrival rate.
    pub lambda: f64,
    /// The run's full metrics.
    pub result: SimResult,
}

/// The output of [`run_sweep`]: every protocol at every λ.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// λ values, ascending.
    pub lambdas: Vec<f64>,
    /// Protocols in legend order.
    pub protocols: Vec<ProtocolKind>,
    /// One entry per (protocol, λ), row-major in `protocols` then `lambdas`.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// The result for a given (protocol, λ) point.
    pub fn get(&self, protocol: ProtocolKind, lambda: f64) -> Option<&SimResult> {
        self.points
            .iter()
            .find(|p| p.protocol == protocol && p.lambda == lambda)
            .map(|p| &p.result)
    }

    /// Render one figure: λ rows, one column per protocol.
    pub fn figure(&self, metric: FigureMetric, title: &str) -> Table {
        let mut columns = vec!["lambda".to_string()];
        columns.extend(self.protocols.iter().map(|p| p.label().to_string()));
        let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(title, &col_refs).float_precision(4);
        for &lambda in &self.lambdas {
            let mut row: Vec<Cell> = vec![Cell::Float(lambda)];
            for &proto in &self.protocols {
                let v = self
                    .get(proto, lambda)
                    .map(|r| metric.extract(r))
                    .unwrap_or(f64::NAN);
                row.push(Cell::Float(v));
            }
            table.push_row(row);
        }
        table
    }
}

/// A replicated sweep: every (protocol, λ) point run at `reps` different
/// seeds, reported as mean ± 95 % CI.
#[derive(Debug, Clone)]
pub struct ReplicatedSweep {
    /// λ values, ascending.
    pub lambdas: Vec<f64>,
    /// Protocols in legend order.
    pub protocols: Vec<ProtocolKind>,
    /// Replica results per (protocol, λ), in `protocols × lambdas` order.
    pub points: Vec<(ProtocolKind, f64, Vec<SimResult>)>,
}

impl ReplicatedSweep {
    /// Replicas for one point.
    pub fn replicas(&self, protocol: ProtocolKind, lambda: f64) -> Option<&[SimResult]> {
        self.points
            .iter()
            .find(|(p, l, _)| *p == protocol && *l == lambda)
            .map(|(_, _, rs)| rs.as_slice())
    }

    /// Mean and 95 % CI half-width of a metric at one point.
    pub fn mean_ci(
        &self,
        protocol: ProtocolKind,
        lambda: f64,
        metric: FigureMetric,
    ) -> Option<(f64, f64)> {
        let rs = self.replicas(protocol, lambda)?;
        let mut w = realtor_simcore::stats::Welford::new();
        for r in rs {
            w.record(metric.extract(r));
        }
        Some((w.mean(), w.ci95_half_width()))
    }

    /// Render one figure with `mean ± ci` cells.
    pub fn figure(&self, metric: FigureMetric, title: &str) -> Table {
        let mut columns = vec!["lambda".to_string()];
        columns.extend(self.protocols.iter().map(|p| p.label().to_string()));
        let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(title, &col_refs);
        for &lambda in &self.lambdas {
            let mut row: Vec<Cell> = vec![Cell::Float(lambda)];
            for &proto in &self.protocols {
                let cell = match self.mean_ci(proto, lambda, metric) {
                    Some((m, ci)) => Cell::Str(format!("{m:.4}±{ci:.4}")),
                    None => Cell::Empty,
                };
                row.push(cell);
            }
            table.push_row(row);
        }
        table
    }
}

/// Run every (protocol, λ) point at `reps` seeds (base seed + replica
/// index), in parallel. Replicas of a point differ in workload; across
/// protocols the comparison stays paired per replica.
pub fn run_replicated_sweep(
    protocols: &[ProtocolKind],
    lambdas: &[f64],
    reps: u64,
    make_scenario: impl Fn(ProtocolKind, f64, u64) -> Scenario + Sync,
) -> ReplicatedSweep {
    assert!(reps >= 1);
    let mut jobs = Vec::new();
    for &p in protocols {
        for &l in lambdas {
            for rep in 0..reps {
                jobs.push((p, l, rep));
            }
        }
    }
    let results = run_parallel(&jobs, |&(p, l, rep)| {
        run_scenario(&make_scenario(p, l, rep))
    });
    let mut by_point: Vec<(ProtocolKind, f64, Vec<SimResult>)> = Vec::new();
    for &p in protocols {
        for &l in lambdas {
            by_point.push((p, l, Vec::with_capacity(reps as usize)));
        }
    }
    for ((p, l, _), r) in jobs.into_iter().zip(results) {
        let slot = by_point
            .iter_mut()
            .find(|(bp, bl, _)| *bp == p && *bl == l)
            .expect("point exists");
        slot.2.push(r);
    }
    ReplicatedSweep {
        lambdas: lambdas.to_vec(),
        protocols: protocols.to_vec(),
        points: by_point,
    }
}

/// Run `make_scenario(protocol, lambda)` for every combination, in parallel.
pub fn run_sweep(
    protocols: &[ProtocolKind],
    lambdas: &[f64],
    make_scenario: impl Fn(ProtocolKind, f64) -> Scenario + Sync,
) -> Sweep {
    let mut jobs: Vec<(ProtocolKind, f64)> = Vec::new();
    for &p in protocols {
        for &l in lambdas {
            jobs.push((p, l));
        }
    }
    let results: Vec<SimResult> = run_parallel(&jobs, |&(p, l)| run_scenario(&make_scenario(p, l)));
    let points = jobs
        .into_iter()
        .zip(results)
        .map(|((protocol, lambda), result)| SweepPoint {
            protocol,
            lambda,
            result,
        })
        .collect();
    Sweep {
        lambdas: lambdas.to_vec(),
        protocols: protocols.to_vec(),
        points,
    }
}

/// Run a job list on up to `available_parallelism` OS threads, preserving
/// input order in the output. A thin wrapper over `simcore::pool` — sweep
/// callers that need an explicit worker count use the grid runner instead.
pub fn run_parallel<J: Sync, R: Send>(
    jobs: &[J],
    f: impl Fn(&J) -> R + Sync,
) -> Vec<R> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    realtor_simcore::pool::run_ordered(workers, jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<u64> = (0..50).collect();
        let out = run_parallel(&jobs, |&j| j * 2);
        assert_eq!(out, (0..50).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_produces_full_grid() {
        let protocols = [ProtocolKind::Realtor, ProtocolKind::PurePush];
        let lambdas = [2.0, 6.0];
        let sweep = run_sweep(&protocols, &lambdas, |p, l| Scenario::paper(p, l, 100, 11));
        assert_eq!(sweep.points.len(), 4);
        assert!(sweep.get(ProtocolKind::Realtor, 2.0).is_some());
        assert!(sweep.get(ProtocolKind::PurePush, 6.0).is_some());
        assert!(sweep.get(ProtocolKind::PurePull, 2.0).is_none());
        let table = sweep.figure(FigureMetric::AdmissionProbability, "Fig 5 (mini)");
        assert_eq!(table.len(), 2);
        assert_eq!(table.columns().len(), 3);
        // Light load: both protocols admit nearly everything.
        assert!(table.value(0, 1).unwrap() > 0.95);
    }

    #[test]
    fn replicated_sweep_aggregates() {
        let protocols = [ProtocolKind::Realtor];
        let lambdas = [6.0];
        let sweep = run_replicated_sweep(&protocols, &lambdas, 4, |p, l, rep| {
            Scenario::paper(p, l, 150, 100 + rep)
        });
        let rs = sweep.replicas(ProtocolKind::Realtor, 6.0).unwrap();
        assert_eq!(rs.len(), 4);
        let (mean, ci) = sweep
            .mean_ci(ProtocolKind::Realtor, 6.0, FigureMetric::AdmissionProbability)
            .unwrap();
        assert!((0.5..=1.0).contains(&mean));
        assert!((0.0..0.2).contains(&ci), "ci {ci}");
        let table = sweep.figure(FigureMetric::AdmissionProbability, "ci test");
        assert_eq!(table.len(), 1);
        assert!(table.to_markdown().contains('±'));
    }

    #[test]
    fn metric_labels() {
        assert_eq!(
            FigureMetric::AdmissionProbability.label(),
            "admission-probability"
        );
        assert_eq!(FigureMetric::MigrationRate.label(), "migration-rate");
    }
}
