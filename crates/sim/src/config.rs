//! Simulation scenario configuration.

use realtor_core::{ProtocolConfig, ProtocolKind};
use realtor_net::{ChannelModel, FloodCharge, LinkQuality, TargetingStrategy, Topology, UnicastCharge};
use realtor_simcore::{SimDuration, SimTime};
use realtor_workload::{AttackScenario, AttackScenarioError, ChurnConfig, WorkloadSpec};

/// Which message-accounting model to apply (see `realtor_net::cost`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CostChoice {
    /// The paper's accounting: flood = #links, unicast = constant 4.
    #[default]
    Paper,
    /// Exact accounting: flood = #links, unicast = true hop count.
    Exact,
    /// Spanning-tree flood, exact unicast (optimistic multicast ablation).
    SpanningTree,
}

impl CostChoice {
    /// The unicast/flood charge pair this choice denotes.
    pub fn charges(self) -> (UnicastCharge, FloodCharge) {
        match self {
            CostChoice::Paper => (UnicastCharge::Constant(4.0), FloodCharge::PerLink),
            CostChoice::Exact => (UnicastCharge::ExactHops, FloodCharge::PerLink),
            CostChoice::SpanningTree => (UnicastCharge::ExactHops, FloodCharge::SpanningTree),
        }
    }
}

/// Crash-recovery and evacuation behaviour of the simulated hosts.
///
/// Everything here is **off by default**: the paper's Figure-5 runs destroy
/// queued work on a kill and never look back, and the golden pins depend on
/// that. With `enabled`, killed nodes orphan a checkpointed fraction of
/// their pending tasks, which are re-submitted through normal REALTOR
/// discovery once a surviving peer's failure detector confirms the death
/// (reactive recovery); the killed node itself re-admits its own orphans
/// when restored (crash-restart). With `proactive` as well, a node that
/// receives an attack warning evacuates pending tasks before the kill
/// lands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Master switch for task logging, orphan tracking and recovery.
    pub enabled: bool,
    /// Fraction of a killed node's pending tasks that survive as
    /// checkpoints (newest-admitted first), in `[0, 1]`.
    pub checkpoint_fraction: f64,
    /// How many times a recovered task is re-submitted through discovery
    /// before being declared destroyed.
    pub recovery_tries: u32,
    /// Evacuate pending tasks when an attack warning arrives.
    pub proactive: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: false,
            checkpoint_fraction: 1.0,
            recovery_tries: 2,
            proactive: false,
        }
    }
}

impl RecoveryConfig {
    /// Reactive recovery with full checkpoints.
    pub fn reactive() -> Self {
        RecoveryConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Reactive recovery plus warning-driven evacuation.
    pub fn proactive() -> Self {
        RecoveryConfig {
            enabled: true,
            proactive: true,
            ..Default::default()
        }
    }

    /// Builder-style: checkpoint fraction.
    pub fn with_checkpoint_fraction(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "checkpoint fraction in [0, 1]");
        self.checkpoint_fraction = v;
        self
    }

    /// Builder-style: recovery retry budget.
    pub fn with_recovery_tries(mut self, v: u32) -> Self {
        self.recovery_tries = v;
        self
    }

    /// Validate field ranges.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.checkpoint_fraction),
            "checkpoint fraction in [0, 1]"
        );
    }
}

/// The adaptive adversary: a recurring strike that ranks nodes by traffic
/// it has *observed* (per-node PLEDGE/HELP send counters from the trace
/// registry) and kills the busiest — no oracle access to queue contents or
/// organizer state. Killed nodes come back amnesiac after `downtime`.
///
/// Observed traffic is exactly what a network eavesdropper sees, so the
/// adversary's information model is realistic: against REALTOR it
/// discovers pledge-rich nodes and de-facto organizers purely from their
/// chattiness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryConfig {
    /// Time between strikes.
    pub interval: SimDuration,
    /// Nodes killed per strike (the observed-traffic top-k).
    pub kills: usize,
    /// How long each victim stays down before its amnesiac restore.
    pub downtime: SimDuration,
    /// First strike fires at this instant.
    pub start: SimTime,
    /// No strike fires at or after this instant.
    pub end: SimTime,
}

impl AdversaryConfig {
    /// Validate against a simulation horizon.
    pub fn validate(&self, horizon: SimTime) {
        assert!(self.kills > 0, "adversary must kill at least one node");
        assert!(!self.interval.is_zero(), "adversary interval must be positive");
        assert!(!self.downtime.is_zero(), "adversary downtime must be positive");
        assert!(self.start < self.end, "adversary window must be non-empty");
        assert!(self.end < horizon, "adversary window must end before the horizon");
    }
}

/// Chaos/fault-injection processes layered on top of the scripted attack
/// schedule. Everything here is **off by default** and bit-exact with the
/// paper baseline when disabled: no churn ticks, no adversary strikes, no
/// extra RNG draws.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosConfig {
    /// Continuous churn: a fraction of the population replaced per
    /// interval, victims drawn from a dedicated seed-split RNG stream.
    pub churn: Option<ChurnConfig>,
    /// The adaptive, observed-traffic-driven adversary.
    pub adversary: Option<AdversaryConfig>,
}

impl ChaosConfig {
    /// No chaos — the paper baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// Churn only.
    pub fn churn(config: ChurnConfig) -> Self {
        ChaosConfig {
            churn: Some(config),
            adversary: None,
        }
    }

    /// Adaptive adversary only.
    pub fn adversary(config: AdversaryConfig) -> Self {
        ChaosConfig {
            churn: None,
            adversary: Some(config),
        }
    }

    /// Is any chaos process configured?
    pub fn is_enabled(&self) -> bool {
        self.churn.is_some() || self.adversary.is_some()
    }

    /// Validate every configured process against the horizon.
    pub fn validate(&self, horizon: SimTime) {
        if let Some(churn) = &self.churn {
            churn.validate(horizon).expect("invalid churn config");
        }
        if let Some(adv) = &self.adversary {
            adv.validate(horizon);
        }
    }
}

/// A complete simulation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The overlay topology (the paper: 5×5 mesh).
    pub topology: Topology,
    /// Which discovery protocol every node runs.
    pub protocol: ProtocolKind,
    /// Protocol parameters.
    pub protocol_config: ProtocolConfig,
    /// Per-node queue capacity in seconds (the paper: 100).
    pub capacity_secs: f64,
    /// The workload.
    pub workload: WorkloadSpec,
    /// Scripted attacks (empty for the paper's Figures 5–8).
    pub attack: AttackScenario,
    /// Victim-selection strategy for attack events.
    pub targeting: TargetingStrategy,
    /// Message accounting model.
    pub cost: CostChoice,
    /// One-way delivery latency per hop (the paper is silent; 1 ms default —
    /// small against 1-second task scales but enough that information is
    /// never supernaturally instantaneous).
    pub per_hop_latency: SimDuration,
    /// Metrics are only collected after this much simulated time (warm-up).
    pub warmup: SimDuration,
    /// Optional time-series window; when set, per-window admission
    /// statistics are recorded (used by the attack experiment).
    pub window: Option<SimDuration>,
    /// The unreliable-delivery model every message crosses. [`ChannelModel::ideal`]
    /// (the default) reproduces the paper's perfectly reliable network.
    pub channel: ChannelModel,
    /// How long a migration negotiation waits for the destination's reply
    /// before retrying or giving up.
    pub negotiation_timeout: SimDuration,
    /// How many times a timed-out negotiation request is re-sent before the
    /// task is rejected (the paper's one-shot semantics cap this at a single
    /// bounded retry; explicit refusals are never retried).
    pub negotiation_retries: u32,
    /// Crash-recovery behaviour (disabled by default — golden-safe).
    pub recovery: RecoveryConfig,
    /// Chaos processes: churn and the adaptive adversary (disabled by
    /// default — golden-safe).
    pub chaos: ChaosConfig,
}

impl Scenario {
    /// The paper's Section-5 setup at arrival rate `lambda`:
    /// 5×5 mesh, queue 100 s, exponential sizes (mean 5 s), horizon
    /// `horizon_secs`, paper cost accounting, chosen `protocol`.
    pub fn paper(protocol: ProtocolKind, lambda: f64, horizon_secs: u64, seed: u64) -> Self {
        let topology = Topology::mesh(5, 5);
        let workload = WorkloadSpec::paper(
            lambda,
            topology.node_count(),
            SimTime::from_secs(horizon_secs),
            seed,
        );
        Scenario {
            topology,
            protocol,
            protocol_config: ProtocolConfig::paper(),
            capacity_secs: 100.0,
            workload,
            attack: AttackScenario::none(),
            targeting: TargetingStrategy::Random,
            cost: CostChoice::Paper,
            per_hop_latency: SimDuration::from_millis(1),
            warmup: SimDuration::ZERO,
            window: None,
            channel: ChannelModel::ideal(),
            negotiation_timeout: SimDuration::from_secs(1),
            negotiation_retries: 1,
            recovery: RecoveryConfig::default(),
            chaos: ChaosConfig::none(),
        }
    }

    /// Simulation horizon (inherited from the workload).
    pub fn horizon(&self) -> SimTime {
        self.workload.horizon
    }

    /// Builder-style: replace the topology (rescatters the workload over the
    /// new node count).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.workload.node_count = topology.node_count();
        self.topology = topology;
        self
    }

    /// Builder-style: replace the protocol parameters.
    pub fn with_protocol_config(mut self, cfg: ProtocolConfig) -> Self {
        self.protocol_config = cfg;
        self
    }

    /// Builder-style: add an attack scenario.
    ///
    /// Panics if the script fails [`AttackScenario::validate`] against this
    /// scenario's horizon and node count; use [`Scenario::try_with_attack`]
    /// for a recoverable error.
    pub fn with_attack(self, attack: AttackScenario, targeting: TargetingStrategy) -> Self {
        self.try_with_attack(attack, targeting)
            .expect("invalid attack scenario")
    }

    /// Builder-style: add an attack scenario, validating it against the
    /// simulation horizon and topology first.
    pub fn try_with_attack(
        mut self,
        attack: AttackScenario,
        targeting: TargetingStrategy,
    ) -> Result<Self, AttackScenarioError> {
        attack.validate(self.horizon(), self.topology.node_count())?;
        self.attack = attack;
        self.targeting = targeting;
        Ok(self)
    }

    /// Builder-style: record windowed time series.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = Some(window);
        self
    }

    /// Builder-style: change the cost accounting.
    pub fn with_cost(mut self, cost: CostChoice) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style: per-node queue capacity.
    pub fn with_capacity(mut self, capacity_secs: f64) -> Self {
        assert!(capacity_secs > 0.0);
        self.capacity_secs = capacity_secs;
        self
    }

    /// Builder-style: apply one link quality uniformly to every delivery.
    pub fn with_channel(self, quality: LinkQuality) -> Self {
        self.with_channel_model(ChannelModel::uniform(quality))
    }

    /// Builder-style: replace the full channel model.
    pub fn with_channel_model(mut self, channel: ChannelModel) -> Self {
        self.channel = channel;
        self
    }

    /// Builder-style: negotiation timeout and retry budget.
    pub fn with_negotiation(mut self, timeout: SimDuration, retries: u32) -> Self {
        assert!(!timeout.is_zero(), "negotiation timeout must be positive");
        self.negotiation_timeout = timeout;
        self.negotiation_retries = retries;
        self
    }

    /// Builder-style: crash-recovery behaviour.
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        recovery.validate();
        self.recovery = recovery;
        self
    }

    /// Builder-style: chaos processes (validated against the horizon).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        chaos.validate(self.horizon());
        self.chaos = chaos;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_defaults() {
        let s = Scenario::paper(ProtocolKind::Realtor, 5.0, 1000, 1);
        assert_eq!(s.topology.node_count(), 25);
        assert_eq!(s.topology.link_count(), 40);
        assert_eq!(s.capacity_secs, 100.0);
        assert_eq!(s.horizon(), SimTime::from_secs(1000));
        assert!(s.attack.is_empty());
    }

    #[test]
    fn with_topology_rescatters_workload() {
        let s = Scenario::paper(ProtocolKind::Realtor, 5.0, 100, 1)
            .with_topology(Topology::mesh(3, 3));
        assert_eq!(s.workload.node_count, 9);
    }

    #[test]
    fn default_channel_is_ideal() {
        let s = Scenario::paper(ProtocolKind::Realtor, 5.0, 100, 1);
        assert!(s.channel.is_ideal());
        assert_eq!(s.negotiation_retries, 1);
        assert!(!s.negotiation_timeout.is_zero());
        let s = s.with_channel(LinkQuality::lossy(0.1));
        assert!(!s.channel.is_ideal());
    }

    #[test]
    fn try_with_attack_validates() {
        use realtor_workload::{AttackAction, AttackEvent};
        let s = Scenario::paper(ProtocolKind::Realtor, 5.0, 100, 1);
        let bad = AttackScenario::new(vec![AttackEvent {
            at: SimTime::from_secs(500),
            action: AttackAction::Kill { count: 3 },
        }]);
        assert!(s
            .clone()
            .try_with_attack(bad, TargetingStrategy::Random)
            .is_err());
        let good = AttackScenario::strike_and_recover(
            SimTime::from_secs(40),
            SimTime::from_secs(70),
            5,
        );
        assert!(s.try_with_attack(good, TargetingStrategy::Random).is_ok());
    }

    #[test]
    fn recovery_is_off_by_default() {
        let s = Scenario::paper(ProtocolKind::Realtor, 5.0, 100, 1);
        assert!(!s.recovery.enabled, "golden safety: recovery defaults off");
        assert!(!s.recovery.proactive);
        let s = s.with_recovery(RecoveryConfig::proactive().with_checkpoint_fraction(0.5));
        assert!(s.recovery.enabled);
        assert!(s.recovery.proactive);
        assert_eq!(s.recovery.checkpoint_fraction, 0.5);
    }

    #[test]
    #[should_panic(expected = "checkpoint fraction")]
    fn checkpoint_fraction_out_of_range_rejected() {
        RecoveryConfig::reactive().with_checkpoint_fraction(1.5);
    }

    #[test]
    fn chaos_is_off_by_default() {
        let s = Scenario::paper(ProtocolKind::Realtor, 5.0, 100, 1);
        assert!(!s.chaos.is_enabled(), "golden safety: chaos defaults off");
        let churn = ChurnConfig::new(
            0.1,
            SimDuration::from_secs(5),
            SimTime::from_secs(20),
            SimTime::from_secs(80),
        );
        let s = s.with_chaos(ChaosConfig::churn(churn));
        assert!(s.chaos.is_enabled());
        assert_eq!(s.chaos.churn, Some(churn));
        assert_eq!(s.chaos.adversary, None);
    }

    #[test]
    #[should_panic(expected = "invalid churn config")]
    fn chaos_validation_catches_bad_churn_window() {
        let churn = ChurnConfig::new(
            0.1,
            SimDuration::from_secs(5),
            SimTime::from_secs(20),
            SimTime::from_secs(200), // past the 100 s horizon
        );
        let _ = Scenario::paper(ProtocolKind::Realtor, 5.0, 100, 1)
            .with_chaos(ChaosConfig::churn(churn));
    }

    #[test]
    #[should_panic(expected = "adversary window")]
    fn chaos_validation_catches_bad_adversary_window() {
        let adv = AdversaryConfig {
            interval: SimDuration::from_secs(10),
            kills: 2,
            downtime: SimDuration::from_secs(5),
            start: SimTime::from_secs(50),
            end: SimTime::from_secs(40),
        };
        let _ = Scenario::paper(ProtocolKind::Realtor, 5.0, 100, 1)
            .with_chaos(ChaosConfig::adversary(adv));
    }

    #[test]
    fn cost_choice_charges() {
        assert_eq!(
            CostChoice::Paper.charges(),
            (UnicastCharge::Constant(4.0), FloodCharge::PerLink)
        );
        assert_eq!(
            CostChoice::Exact.charges(),
            (UnicastCharge::ExactHops, FloodCharge::PerLink)
        );
    }
}
