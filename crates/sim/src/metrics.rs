//! Run-level metrics — the quantities plotted in the paper's Figures 5–8.

use realtor_net::MessageLedger;
use realtor_simcore::SimTime;

/// Admission statistics over one time window (attack experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStat {
    /// Window start.
    pub start: SimTime,
    /// Tasks offered in the window.
    pub offered: u64,
    /// Tasks admitted (locally or by migration) in the window.
    pub admitted: u64,
    /// Alive nodes at the end of the window.
    pub alive_nodes: usize,
}

impl WindowStat {
    /// Admission probability within the window (0 when nothing offered).
    pub fn admission_probability(&self) -> f64 {
        realtor_simcore::stats::ratio(self.admitted, self.offered)
    }
}

/// Per-node statistics (fairness/load-balance analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeStat {
    /// Tasks that arrived at this node.
    pub offered: u64,
    /// Tasks admitted into this node's queue (locally arrived or migrated
    /// in).
    pub admitted_here: u64,
    /// Time-weighted mean queue occupancy fraction over the run.
    pub mean_occupancy: f64,
}

/// The full outcome of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimResult {
    /// Tasks generated (after warm-up).
    pub offered: u64,
    /// Tasks admitted at their arrival node.
    pub admitted_local: u64,
    /// Tasks admitted at a migration destination.
    pub admitted_migrated: u64,
    /// Tasks rejected (no candidate, candidate refused, or node dead).
    pub rejected: u64,
    /// Tasks offered to dead nodes (subset of `rejected`).
    pub lost_to_attacks: u64,
    /// Migration attempts (one-shot tries).
    pub migration_attempts: u64,
    /// Migration attempts that were admitted at the destination.
    pub migration_successes: u64,
    /// Message accounting.
    pub ledger: MessageLedger,
    /// Windowed statistics when the scenario requested them.
    pub windows: Vec<WindowStat>,
    /// Per-node statistics, indexed by node id.
    pub node_stats: Vec<NodeStat>,
    /// Sampled Algorithm-H interval dynamics (one sample per window when
    /// windows are enabled): `(time, mean interval s, max interval s)`
    /// across alive pull-family nodes.
    pub interval_series: Vec<(SimTime, f64, f64)>,
    /// Total events the engine processed (sanity/performance diagnostics).
    pub events_processed: u64,
    /// Deepest the engine's event queue ever got during the run (a
    /// deterministic function of the schedule, so safe next to golden pins).
    pub queue_high_water: u64,
    /// Seconds of queued-but-unexecuted work wiped by node kills — the
    /// hidden cost `lost_to_attacks` (which only counts arrivals *at* dead
    /// nodes) never metered. Nonzero whenever a kill lands on a non-empty
    /// queue, recovery enabled or not.
    pub work_destroyed: f64,
    /// Admitted tasks still pending when their node was killed.
    pub tasks_interrupted: u64,
    /// Interrupted tasks whose checkpoint was re-admitted somewhere
    /// (reactive recovery, crash-restart, or an in-flight evacuation that
    /// completed after the kill).
    pub tasks_recovered: u64,
    /// Interrupted tasks destroyed for good (no checkpoint, recovery
    /// retries exhausted, or recovery disabled).
    pub tasks_destroyed: u64,
    /// Seconds of checkpointed work successfully re-admitted.
    pub work_recovered: f64,
    /// Discovery re-submissions attempted for orphaned checkpoints.
    pub recovery_attempts: u64,
    /// Evacuation negotiations launched on an attack warning.
    pub evacuation_attempts: u64,
    /// Evacuations that moved the task off the warned node before the kill.
    pub evacuation_successes: u64,
    /// Seconds of work moved off warned nodes before their kill.
    pub work_evacuated: f64,
    /// Node deaths confirmed by some surviving peer's failure detector
    /// (first confirmation per kill only).
    pub detections: u64,
    /// Sum over detections of (confirmation time − kill time), seconds.
    pub detection_latency_sum: f64,
    /// Worst single detection latency, seconds.
    pub detection_latency_max: f64,
    /// Dead-peer declarations that named a node which was actually alive.
    pub false_suspicions: u64,
}

impl SimResult {
    /// Total tasks admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted_local + self.admitted_migrated
    }

    /// The paper's Figure-5 metric: admitted / offered.
    pub fn admission_probability(&self) -> f64 {
        realtor_simcore::stats::ratio(self.admitted(), self.offered)
    }

    /// The paper's Figure-6 metric: total message cost.
    pub fn total_messages(&self) -> f64 {
        self.ledger.total()
    }

    /// The paper's Figure-7 metric: message cost per admitted task
    /// (0 when nothing was admitted).
    pub fn cost_per_admitted_task(&self) -> f64 {
        let admitted = self.admitted();
        if admitted == 0 {
            0.0
        } else {
            self.ledger.total() / admitted as f64
        }
    }

    /// The paper's Figure-8 metric: migrations per admitted task.
    pub fn migration_rate(&self) -> f64 {
        realtor_simcore::stats::ratio(self.migration_successes, self.admitted())
    }

    /// Jain's fairness index of per-node admitted work — how evenly the
    /// discovery protocol spread load across the system (1 = perfectly
    /// even). Returns 1 when per-node stats were not collected.
    pub fn placement_fairness(&self) -> f64 {
        let xs: Vec<f64> = self
            .node_stats
            .iter()
            .map(|s| s.admitted_here as f64)
            .collect();
        realtor_simcore::stats::jain_fairness(&xs)
    }

    /// Mean and max of per-node mean occupancy (0s when not collected).
    pub fn occupancy_spread(&self) -> (f64, f64) {
        if self.node_stats.is_empty() {
            return (0.0, 0.0);
        }
        let mean = self.node_stats.iter().map(|s| s.mean_occupancy).sum::<f64>()
            / self.node_stats.len() as f64;
        let max = self
            .node_stats
            .iter()
            .map(|s| s.mean_occupancy)
            .fold(0.0f64, f64::max);
        (mean, max)
    }

    /// Mean windowed admission probability over windows that end at or
    /// before `before` (the pre-attack baseline). Windows with no offered
    /// tasks are skipped; `None` when no complete window precedes `before`.
    pub fn baseline_admission(&self, before: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u32;
        for (i, w) in self.windows.iter().enumerate() {
            // A window's end is the next window's start; the last window's
            // end is the horizon, which we never treat as "before".
            let Some(next) = self.windows.get(i + 1) else { break };
            if next.start <= before && w.offered > 0 {
                sum += w.admission_probability();
                n += 1;
            }
        }
        (n > 0).then(|| sum / f64::from(n))
    }

    /// Survivability: how far windowed admission probability fell below the
    /// pre-`strike` baseline at its worst (0 when it never dipped, or when
    /// no baseline exists).
    pub fn dip_depth(&self, strike: SimTime) -> f64 {
        let Some(base) = self.baseline_admission(strike) else {
            return 0.0;
        };
        let mut min = f64::INFINITY;
        for (i, w) in self.windows.iter().enumerate() {
            let ends_after_strike = self
                .windows
                .get(i + 1)
                .map(|next| next.start > strike)
                .unwrap_or(true);
            if ends_after_strike && w.offered > 0 {
                min = min.min(w.admission_probability());
            }
        }
        if min.is_finite() {
            (base - min).max(0.0)
        } else {
            0.0
        }
    }

    /// Survivability: number of full windows after `restore` before windowed
    /// admission probability returns within `epsilon` of the pre-`strike`
    /// baseline (0 = the first post-restore window is already recovered).
    /// `None` when it never recovers inside the run, or no baseline exists.
    pub fn time_to_recovery(
        &self,
        strike: SimTime,
        restore: SimTime,
        epsilon: f64,
    ) -> Option<u64> {
        let base = self.baseline_admission(strike)?;
        self.windows
            .iter()
            .filter(|w| w.start >= restore)
            .position(|w| w.offered > 0 && w.admission_probability() >= base - epsilon)
            .map(|n| n as u64)
    }

    /// Fraction of interrupted tasks that were recovered (0 when no kills
    /// interrupted anything).
    pub fn recovered_fraction(&self) -> f64 {
        realtor_simcore::stats::ratio(self.tasks_recovered, self.tasks_interrupted)
    }

    /// Mean detection latency in seconds (0 when nothing was detected).
    pub fn mean_detection_latency(&self) -> f64 {
        if self.detections == 0 {
            0.0
        } else {
            self.detection_latency_sum / self.detections as f64
        }
    }

    /// Internal consistency checks; called at the end of every run.
    pub fn validate(&self) {
        assert_eq!(
            self.offered,
            self.admitted() + self.rejected,
            "offered must equal admitted + rejected"
        );
        assert!(self.migration_successes <= self.migration_attempts);
        assert_eq!(
            self.admitted_migrated, self.migration_successes,
            "every migrated admission is a migration success"
        );
        assert!(self.lost_to_attacks <= self.rejected);
        // The recovery ledger: every interrupted task resolves exactly one
        // way. (`work_destroyed` has no such identity — destroyed work is
        // metered even when recovery is disabled and no tasks are tracked.)
        assert_eq!(
            self.tasks_interrupted,
            self.tasks_recovered + self.tasks_destroyed,
            "every interrupted task is recovered or destroyed"
        );
        assert!(self.evacuation_successes <= self.evacuation_attempts);
        assert!(self.work_destroyed >= 0.0);
        assert!(self.work_recovered >= 0.0);
        assert!(self.work_evacuated >= 0.0);
        assert!(self.detection_latency_sum >= 0.0);
        assert!(self.detection_latency_max <= self.detection_latency_sum + 1e-9);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut r = SimResult {
            offered: 100,
            admitted_local: 70,
            admitted_migrated: 10,
            rejected: 20,
            migration_attempts: 15,
            migration_successes: 10,
            ..Default::default()
        };
        r.ledger.charge_help(40.0);
        r.ledger.charge_pledge(4.0);
        r.validate();
        assert!((r.admission_probability() - 0.8).abs() < 1e-12);
        assert!((r.total_messages() - 44.0).abs() < 1e-12);
        assert!((r.cost_per_admitted_task() - 0.55).abs() < 1e-12);
        assert!((r.migration_rate() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_consistent() {
        let r = SimResult::default();
        r.validate();
        assert_eq!(r.admission_probability(), 0.0);
        assert_eq!(r.cost_per_admitted_task(), 0.0);
    }

    #[test]
    #[should_panic(expected = "offered must equal")]
    fn validate_catches_imbalance() {
        let r = SimResult {
            offered: 5,
            admitted_local: 1,
            ..Default::default()
        };
        r.validate();
    }

    #[test]
    fn recovery_ledger_balances() {
        let r = SimResult {
            tasks_interrupted: 7,
            tasks_recovered: 4,
            tasks_destroyed: 3,
            work_destroyed: 12.5,
            work_recovered: 20.0,
            recovery_attempts: 5,
            evacuation_attempts: 3,
            evacuation_successes: 2,
            work_evacuated: 9.0,
            detections: 2,
            detection_latency_sum: 30.0,
            detection_latency_max: 18.0,
            ..Default::default()
        };
        r.validate();
        assert!((r.recovered_fraction() - 4.0 / 7.0).abs() < 1e-12);
        assert!((r.mean_detection_latency() - 15.0).abs() < 1e-12);
        assert_eq!(SimResult::default().recovered_fraction(), 0.0);
        assert_eq!(SimResult::default().mean_detection_latency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "recovered or destroyed")]
    fn validate_catches_leaked_interrupted_task() {
        let r = SimResult {
            tasks_interrupted: 3,
            tasks_recovered: 1,
            tasks_destroyed: 1,
            ..Default::default()
        };
        r.validate();
    }

    fn windowed(probs: &[(u64, u64)]) -> SimResult {
        // Windows of 10 s each starting at 0.
        let windows = probs
            .iter()
            .enumerate()
            .map(|(i, &(offered, admitted))| WindowStat {
                start: SimTime::from_secs(10 * i as u64),
                offered,
                admitted,
                alive_nodes: 25,
            })
            .collect();
        SimResult {
            windows,
            ..Default::default()
        }
    }

    #[test]
    fn survivability_metrics() {
        // Baseline 1.0 for 3 windows, dip to 0.5, recover at window start 50.
        let r = windowed(&[(10, 10), (10, 10), (10, 10), (10, 5), (10, 6), (10, 10), (10, 10)]);
        let strike = SimTime::from_secs(30);
        let restore = SimTime::from_secs(50);
        assert_eq!(r.baseline_admission(strike), Some(1.0));
        assert!((r.dip_depth(strike) - 0.5).abs() < 1e-12);
        assert_eq!(r.time_to_recovery(strike, restore, 0.05), Some(0));
        // With a tighter restore point the 0.6 window counts as unrecovered.
        assert_eq!(
            r.time_to_recovery(strike, SimTime::from_secs(40), 0.05),
            Some(1)
        );
    }

    #[test]
    fn never_recovering_run_reports_none() {
        let r = windowed(&[(10, 10), (10, 10), (10, 2), (10, 3)]);
        let strike = SimTime::from_secs(20);
        assert_eq!(r.time_to_recovery(strike, strike, 0.05), None);
        assert_eq!(r.baseline_admission(SimTime::ZERO), None);
        assert_eq!(r.dip_depth(SimTime::ZERO), 0.0);
    }

    #[test]
    fn window_stat_probability() {
        let w = WindowStat {
            start: SimTime::ZERO,
            offered: 10,
            admitted: 7,
            alive_nodes: 20,
        };
        assert!((w.admission_probability() - 0.7).abs() < 1e-12);
    }
}
