//! # realtor-sim — the Section-5 simulation harness
//!
//! Wires the discovery protocols (`realtor-core`), the host model
//! (`realtor-node`), the overlay network (`realtor-net`) and the workload
//! (`realtor-workload`) into the discrete-event experiments of the paper:
//!
//! * [`config`] — the [`Scenario`] describing one run (the paper's defaults:
//!   5×5 mesh, 100-second queues, Poisson(λ) arrivals of exponential(5 s)
//!   tasks, one-shot migration),
//! * [`world`] — the event loop: arrivals, flood/unicast delivery with
//!   per-hop latency, timers, queue-drain threshold crossings, attacks,
//! * [`metrics`] — the Figure 5–8 quantities,
//! * [`sweep`] — paired parallel λ sweeps and figure-table rendering.

#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod sweep;
pub mod world;

pub use config::{AdversaryConfig, ChaosConfig, CostChoice, RecoveryConfig, Scenario};
pub use metrics::{SimResult, WindowStat};
pub use sweep::{run_replicated_sweep, run_sweep, FigureMetric, ReplicatedSweep, Sweep};
pub use world::{
    run_scenario, run_scenario_profiled, run_scenario_traced, run_scenario_traced_profiled,
    run_scenario_with, RunProfile, World,
};
