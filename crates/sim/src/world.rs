//! The simulated world: 25 nodes (or any topology), one protocol instance
//! and one work queue per node, tasks arriving from a trace, messages
//! travelling over the overlay with per-hop latency and an unreliable
//! channel (loss, jitter, duplication), and the paper's one-shot migration
//! on queue overflow — negotiated over the same channel with a timeout and
//! a bounded retry.
//!
//! Refactor-safety property: under [`ChannelModel::ideal`] every delivery
//! keeps its legacy timing and the channel RNG stream is never drawn from,
//! so ideal-channel runs are bit-for-bit identical to the pre-channel
//! simulator (pinned by `tests/golden_figures.rs`).

use crate::config::{ChaosConfig, RecoveryConfig, Scenario};
use crate::metrics::{NodeStat, SimResult, WindowStat};
use realtor_core::protocol::{Action, Actions, DiscoveryProtocol, LocalView, TimerToken};
use realtor_core::Message;
use realtor_net::{ChannelModel, CostModel, FaultState, NodeId, Sampled, Topology};
use realtor_simcore::prelude::*;
use realtor_simcore::trace::{attempt_span, TaskLineage};
use realtor_simcore::Tracer;
use realtor_workload::{AttackAction, ChurnProcess, Trace};
use std::collections::BTreeMap;

/// Simulation events.
#[derive(Debug, Clone)]
pub enum Ev {
    /// The `idx`-th trace record arrives.
    Arrival(usize),
    /// A flood from `from` reaches every node in its scope.
    FloodDeliver {
        /// Originating node.
        from: NodeId,
        /// The flooded message.
        msg: Message,
    },
    /// A unicast reaches `to`.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        msg: Message,
    },
    /// A protocol timer fires on `node`.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Correlation token minted by the protocol.
        token: TimerToken,
    },
    /// The decaying backlog of `node` crosses the pledge threshold downward.
    Drain {
        /// Node whose queue drains.
        node: NodeId,
        /// Generation guard (stale events are ignored).
        gen: u64,
    },
    /// The `idx`-th scripted attack event fires.
    Attack(usize),
    /// A warned attack strikes: kill the victims chosen when the warning
    /// fired (victims already dead by then are skipped).
    DelayedKill {
        /// Victims selected at warning time.
        victims: Vec<NodeId>,
    },
    /// A churn wave fires: the previous wave restarts (amnesiac) and a
    /// fresh fraction of the population goes down.
    ChurnTick,
    /// The adaptive adversary strikes the top-k nodes of its
    /// observed-traffic ranking.
    AdversaryStrike,
    /// The adversary's victims finish their downtime and restart amnesiac.
    AdversaryRestore {
        /// Victims of the strike this restore pairs with.
        victims: Vec<NodeId>,
    },
    /// Close the current statistics window.
    WindowTick,
    /// A migration-negotiation request reaches the destination.
    MigrateRequest {
        /// Attempt id (key into the pending-negotiation table).
        attempt: u64,
    },
    /// The destination's accept/refuse reply reaches the source.
    MigrateReply {
        /// Attempt id.
        attempt: u64,
        /// The destination's decision.
        admitted: bool,
    },
    /// The source's negotiation timer expires.
    MigrateTimeout {
        /// Attempt id.
        attempt: u64,
        /// Which try this timeout guards (stale ones are ignored).
        try_no: u32,
    },
}

/// One in-flight migration negotiation.
#[derive(Debug, Clone, Copy)]
struct MigrationAttempt {
    src: NodeId,
    dst: NodeId,
    size_secs: f64,
    /// Whether the attempt started inside the measurement period; all of
    /// its statistics are gated on this, not on the resolution time, so the
    /// `offered == admitted + rejected` invariant survives warm-up edges.
    counted: bool,
    tries_left: u32,
    try_no: u32,
    kind: AttemptKind,
    /// Causal lineage of the task this negotiation is about (A19).
    /// Observation-only: never read for a simulation decision, so traced
    /// and untraced runs stay bit-identical.
    lineage: Option<u64>,
}

/// Why a negotiation is running — the paper's one-shot overflow migration,
/// or one of the recovery flows layered on the same request/reply machinery.
#[derive(Debug, Clone, Copy)]
enum AttemptKind {
    /// Overflow migration of a newly arrived task.
    Arrival,
    /// Re-homing an orphaned checkpoint after its host was confirmed dead.
    Recovery {
        /// Discovery re-submissions still allowed after this one.
        submissions_left: u32,
    },
    /// Moving a task off a warned node before the attack strikes.
    Evacuation {
        /// The warned node the task is evacuating from.
        victim: NodeId,
        /// Task id in the victim's shadow log.
        task_id: u64,
        /// The victim was killed while this negotiation was in flight; its
        /// outcome now decides recovery vs destruction of the task.
        victim_crashed: bool,
    },
}

/// Checkpoints orphaned by a kill, awaiting either a failure-detector
/// confirmation (reactive recovery by the detecting peer) or the owner's
/// own restart (crash-restart recovery) — whichever comes first.
#[derive(Debug, Clone)]
struct OrphanSet {
    /// Counting status at kill time; gates every counter these tasks touch,
    /// so the interrupted-task ledger balances across warm-up edges.
    counted: bool,
    /// `(task id, checkpointed remaining seconds)`.
    tasks: Vec<(u64, f64)>,
}

/// Builds protocol instances for a world; lets experiments substitute
/// non-standard protocols (e.g. the inter-community extension).
pub type ProtocolBuilder<'a> = dyn FnMut(NodeId) -> Box<dyn DiscoveryProtocol> + 'a;

/// The simulation model (implements [`Handler`]).
pub struct World {
    topology: Topology,
    fault: FaultState,
    cost: CostModel,
    per_hop_latency: SimDuration,
    flood_latency: SimDuration,
    capacity_secs: f64,
    pledge_level_secs: f64,
    warmup: SimTime,
    trace: Trace,
    attack: realtor_workload::AttackScenario,
    targeting: realtor_net::TargetingStrategy,
    attack_rng: SimRng,
    protos: Vec<Box<dyn DiscoveryProtocol>>,
    queues: Vec<realtor_node::WorkQueue>,
    drain_gen: Vec<u64>,
    /// Scope of each node's floods (recipients, excluding the sender).
    scopes: Vec<Vec<NodeId>>,
    window: Option<SimDuration>,
    current_window: WindowStat,
    result: SimResult,
    actions: Actions,
    /// Per-node occupancy integrators: (integral of backlog over time,
    /// segment start, backlog at segment start). The backlog decays linearly
    /// between queue mutations, so each segment integrates in closed form.
    occ: Vec<(f64, SimTime, f64)>,
    channel: ChannelModel,
    channel_rng: SimRng,
    negotiation_timeout: SimDuration,
    negotiation_retries: u32,
    next_attempt: u64,
    pending: BTreeMap<u64, MigrationAttempt>,
    /// Destination-side decisions, kept until the attempt resolves so
    /// duplicated or retried requests replay the decision instead of
    /// admitting the task twice.
    dst_decisions: BTreeMap<u64, bool>,
    /// Crash-recovery knobs (disabled in the golden configuration).
    recovery: RecoveryConfig,
    /// Per-node shadow log of admitted tasks (empty while recovery is off).
    task_logs: Vec<realtor_node::TaskLog>,
    next_task_id: u64,
    /// When each currently-dead node was killed; consumed by the first
    /// failure-detector confirmation to measure detection latency.
    kill_times: Vec<Option<SimTime>>,
    /// Checkpoints of killed nodes, keyed by the dead owner.
    orphans: BTreeMap<NodeId, OrphanSet>,
    /// Structured-trace sink; disabled by default (a pure observer — see
    /// `tests/trace_parity.rs` for the on ≡ off guarantee).
    tracer: Tracer,
    /// Last queue high-water mark reported per node, so `queue_watermark`
    /// events fire only when the lifetime peak actually moves.
    watermarks: Vec<f64>,
    /// Shadow-log task id → causal lineage (A19), indexed by task id
    /// (`u64::MAX` = unknown) — task ids are assigned sequentially, so a
    /// flat vector beats a map on the admit path the overhead gate times.
    /// Populated only while tracing is enabled and read only to annotate
    /// trace events, so it can never perturb simulation behaviour.
    task_lineages: Vec<u64>,
    /// Chaos processes (disabled in the golden configuration).
    chaos: ChaosConfig,
    /// The continuous-churn driver, when configured. Owns its own RNG
    /// stream (seed-split off the scenario seed), so churn draws never
    /// perturb targeting, channel or workload streams.
    churn: Option<ChurnProcess>,
}

/// Integral of a backlog that starts at `b` and drains at unit rate over
/// `dt` seconds (clamping at zero): a triangle capped by the drain time.
fn drain_integral(b: f64, dt: f64) -> f64 {
    if dt <= 0.0 {
        0.0
    } else if dt <= b {
        (b + (b - dt)) * 0.5 * dt
    } else {
        b * b * 0.5
    }
}

impl World {
    /// Build a world for `scenario` with the standard protocol factory.
    pub fn new(scenario: &Scenario) -> Self {
        let peers: Vec<NodeId> = scenario.topology.nodes().collect();
        let kind = scenario.protocol;
        let cfg = scenario.protocol_config;
        let capacity = scenario.capacity_secs;
        Self::with_protocols(scenario, &mut |node| {
            kind.build(node, cfg, &peers, capacity)
        })
    }

    /// Build a world with a custom per-node protocol factory.
    pub fn with_protocols(scenario: &Scenario, build: &mut ProtocolBuilder<'_>) -> Self {
        scenario.chaos.validate(scenario.workload.horizon);
        let topo = scenario.topology.clone();
        let n = topo.node_count();
        let routing = realtor_net::Routing::new(&topo);
        let (unicast, flood) = scenario.cost.charges();
        let cost = CostModel::new(&topo, &routing, unicast, flood);
        let mean_path = routing.mean_path_length();
        let protos: Vec<_> = (0..n).map(&mut *build).collect();
        let queues = vec![realtor_node::WorkQueue::new(scenario.capacity_secs); n];
        let scopes = (0..n)
            .map(|me| (0..n).filter(|&other| other != me).collect())
            .collect();
        World {
            fault: FaultState::new(&topo),
            topology: topo,
            cost,
            per_hop_latency: scenario.per_hop_latency,
            flood_latency: scenario.per_hop_latency.mul_f64(mean_path),
            capacity_secs: scenario.capacity_secs,
            pledge_level_secs: scenario.protocol_config.pledge_threshold
                * scenario.capacity_secs,
            warmup: SimTime::ZERO + scenario.warmup,
            trace: scenario.workload.generate(),
            attack: scenario.attack.clone(),
            targeting: scenario.targeting.clone(),
            attack_rng: SimRng::stream(scenario.workload.seed, "attack-targeting"),
            protos,
            queues,
            drain_gen: vec![0; n],
            scopes,
            window: scenario.window,
            current_window: WindowStat::default(),
            result: SimResult {
                node_stats: vec![NodeStat::default(); n],
                ..Default::default()
            },
            actions: Actions::new(),
            occ: vec![(0.0, SimTime::ZERO, 0.0); n],
            channel: scenario.channel.clone(),
            // A named stream of its own: adding channel draws never perturbs
            // attack targeting or workload generation.
            channel_rng: SimRng::stream(scenario.workload.seed, "channel"),
            negotiation_timeout: scenario.negotiation_timeout,
            negotiation_retries: scenario.negotiation_retries,
            next_attempt: 0,
            pending: BTreeMap::new(),
            dst_decisions: BTreeMap::new(),
            recovery: scenario.recovery,
            task_logs: vec![realtor_node::TaskLog::new(); n],
            next_task_id: 0,
            kill_times: vec![None; n],
            orphans: BTreeMap::new(),
            // The adaptive adversary reads per-node traffic counters out of
            // the trace registry (its only information source — no oracle),
            // so it force-enables an internal tracer. Tracing is strictly
            // observational, so this cannot change simulation behaviour.
            tracer: if scenario.chaos.adversary.is_some() {
                Tracer::bounded(64)
            } else {
                Tracer::disabled()
            },
            watermarks: vec![0.0; n],
            task_lineages: Vec::new(),
            chaos: scenario.chaos,
            churn: scenario
                .chaos
                .churn
                .map(|c| ChurnProcess::new(c, scenario.workload.seed)),
        }
    }

    /// Install a structured-trace handle on the world and every protocol
    /// instance. Call before [`World::prime`]. The tracer observes; it never
    /// draws randomness or schedules events, so traced runs stay bit-exact.
    ///
    /// With an adaptive adversary configured the world keeps its internal
    /// observation tracer rather than accepting a disabled one (the
    /// adversary would otherwise go blind); any *enabled* tracer replaces
    /// it and feeds the adversary identically, since counters are counters.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for proto in &mut self.protos {
            proto.set_tracer(tracer.clone());
        }
        if tracer.is_enabled() || self.chaos.adversary.is_none() {
            self.tracer = tracer;
        }
    }

    /// Sample the channel for one `src → dst` delivery. The ideal channel
    /// short-circuits without drawing randomness (and an explicitly
    /// configured all-zero quality draws nothing either), which is what
    /// makes ideal runs bit-identical to the legacy instant-delivery path.
    fn channel_sample(&mut self, now: SimTime, src: NodeId, dst: NodeId) -> Sampled {
        if self.channel.is_ideal() {
            return Sampled::Delivered {
                delay: SimDuration::ZERO,
                duplicate: None,
            };
        }
        let quality = {
            let routing = self.fault.routing(&self.topology);
            self.channel.effective_quality(routing, src, dst)
        };
        let sampled = quality.sample(&mut self.channel_rng);
        if self.counting(now) {
            match sampled {
                Sampled::Lost => {
                    self.result.ledger.count_lost();
                    self.tracer.count("channel_lost", 1);
                }
                Sampled::Delivered {
                    duplicate: Some(_), ..
                } => {
                    self.result.ledger.count_duplicated();
                    self.tracer.count("channel_duplicated", 1);
                }
                Sampled::Delivered { .. } => {}
            }
        }
        sampled
    }

    /// Close the current occupancy segment of `node` at `now`; call just
    /// before (or after) any queue mutation on that node.
    fn occ_sync(&mut self, node: NodeId, now: SimTime) {
        let (integral, start, b) = self.occ[node];
        let dt = now.since(start).as_secs_f64();
        let new_integral = integral + drain_integral(b, dt);
        self.occ[node] = (new_integral, now, self.queues[node].backlog_at(now));
    }

    /// Override the flood scope of every node (inter-community experiments).
    pub fn set_scopes(&mut self, scopes: Vec<Vec<NodeId>>) {
        assert_eq!(scopes.len(), self.topology.node_count());
        self.scopes = scopes;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    fn counting(&self, now: SimTime) -> bool {
        now >= self.warmup
    }

    /// Account one message that could not cross an active partition. A
    /// no-op when no partition is in force, so pre-partition behaviour
    /// (unreachability from kills or link cuts) stays byte-identical.
    fn note_partition_drop(&mut self, now: SimTime) {
        if self.fault.has_partition() && self.counting(now) {
            self.result.ledger.count_partition_dropped();
            self.tracer.count("partition_dropped", 1);
        }
    }

    fn view(&self, node: NodeId, now: SimTime) -> LocalView {
        LocalView::new(self.queues[node].headroom_at(now), self.capacity_secs)
    }

    /// Drain the protocol's queued actions into engine events and ledger
    /// charges.
    fn process_actions(&mut self, node: NodeId, now: SimTime, ctx: &mut Context<'_, Ev>) {
        // The common case by far on the hot path (most protocol callbacks
        // queue nothing): get out before touching the scope or the buffer.
        if self.actions.is_empty() {
            return;
        }
        let counting = self.counting(now);
        // Under the spanning-tree charge a flood costs one message per alive
        // recipient in the sender's scope; the paper's per-link charge is
        // scope-independent. The O(scope) liveness scan only runs if a
        // flood is actually charged, and at most once per drain.
        let mut scope_alive: Option<usize> = None;
        // Move the buffer out to appease the borrow checker.
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain() {
            match action {
                Action::Flood(msg) => {
                    // The flood is charged once at send time; channel loss
                    // does not refund it (the datagrams went out).
                    if counting {
                        let alive = match scope_alive {
                            Some(n) => n,
                            None => {
                                let n = 1 + self.scopes[node]
                                    .iter()
                                    .filter(|&&n| self.fault.is_alive(n))
                                    .count();
                                scope_alive = Some(n);
                                n
                            }
                        };
                        let c = self.cost.flood_cost(alive);
                        match msg {
                            Message::Help(_) => {
                                self.result.ledger.charge_help(c);
                                self.tracer.count("msg_help", 1);
                                self.tracer.count_node("sent_help", node, 1);
                            }
                            Message::Advert(_) => {
                                self.result.ledger.charge_push(c);
                                self.tracer.count("msg_push", 1);
                            }
                            Message::Pledge(_) => {
                                self.result.ledger.charge_pledge(c);
                                self.tracer.count("msg_pledge", 1);
                                self.tracer.count_node("sent_pledge", node, 1);
                            }
                        }
                    }
                    if self.channel.is_ideal() {
                        // Legacy grouped delivery: one event fans out to the
                        // whole scope (bit-identical to the pre-channel path).
                        // Partition filtering happens at delivery time.
                        ctx.schedule_in(self.flood_latency, Ev::FloodDeliver { from: node, msg });
                    } else {
                        // Per-recipient copies, each sampled independently,
                        // in id order (scopes are id-sorted) so equal-delay
                        // copies process in the same order the grouped event
                        // would have used.
                        let partitioned = self.fault.has_partition();
                        // Index loop, not a clone of the scope vector: the
                        // body needs `&mut self` for channel sampling.
                        for ri in 0..self.scopes[node].len() {
                            let to = self.scopes[node][ri];
                            if partitioned
                                && !self.fault.routing(&self.topology).reachable(node, to)
                            {
                                // The flood's datagrams die at the cut; the
                                // channel is never sampled for them (the
                                // partition state is deterministic, so this
                                // keeps the RNG stream partition-scripted).
                                self.note_partition_drop(now);
                                continue;
                            }
                            match self.channel_sample(now, node, to) {
                                Sampled::Lost => {}
                                Sampled::Delivered { delay, duplicate } => {
                                    ctx.schedule_in(
                                        self.flood_latency + delay,
                                        Ev::Deliver { from: node, to, msg },
                                    );
                                    if let Some(dup) = duplicate {
                                        ctx.schedule_in(
                                            self.flood_latency + dup,
                                            Ev::Deliver { from: node, to, msg },
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                Action::Unicast(to, msg) => {
                    if !self.fault.routing(&self.topology).reachable(node, to) {
                        // partitioned or severed: the message is lost
                        self.note_partition_drop(now);
                        continue;
                    }
                    let routing = self.fault.routing(&self.topology);
                    let hops = routing.hops(node, to);
                    if counting {
                        let c = self.cost.unicast_cost(routing, node, to);
                        match msg {
                            Message::Pledge(_) => {
                                self.result.ledger.charge_pledge(c);
                                self.tracer.count("msg_pledge", 1);
                                self.tracer.count_node("sent_pledge", node, 1);
                            }
                            Message::Advert(_) => {
                                self.result.ledger.charge_push(c);
                                self.tracer.count("msg_push", 1);
                            }
                            Message::Help(_) => {
                                self.result.ledger.charge_help(c);
                                self.tracer.count("msg_help", 1);
                                self.tracer.count_node("sent_help", node, 1);
                            }
                        }
                    }
                    let latency = self.per_hop_latency * u64::from(hops);
                    match self.channel_sample(now, node, to) {
                        Sampled::Lost => {}
                        Sampled::Delivered { delay, duplicate } => {
                            ctx.schedule_in(latency + delay, Ev::Deliver {
                                from: node,
                                to,
                                msg,
                            });
                            if let Some(dup) = duplicate {
                                ctx.schedule_in(latency + dup, Ev::Deliver {
                                    from: node,
                                    to,
                                    msg,
                                });
                            }
                        }
                    }
                }
                Action::SetTimer(token, delay) => {
                    ctx.schedule_in(delay, Ev::Timer { node, token });
                }
                Action::DeclareDead(peer) => {
                    self.handle_declaration(node, peer, now, ctx);
                }
            }
        }
        self.actions = actions;
    }

    /// Queue state changed at `node`: notify the protocol and (re)arm the
    /// drain-crossing event.
    fn after_queue_change(&mut self, node: NodeId, now: SimTime, ctx: &mut Context<'_, Ev>) {
        let view = self.view(node, now);
        self.protos[node].on_usage_change(now, view, &mut self.actions);
        self.process_actions(node, now, ctx);
        // Arm the downward crossing of the pledge threshold. The level is a
        // hair below the threshold so occupancy is strictly under it when
        // the event fires (Algorithm P's `above` test is `frac >= th`).
        let level = (self.pledge_level_secs - 1e-6).max(0.0);
        if let Some(at) = self.queues[node].time_to_drain_to(now, level) {
            self.drain_gen[node] += 1;
            ctx.schedule_at(at, Ev::Drain {
                node,
                gen: self.drain_gen[node],
            });
        }
    }

    fn record_offered(&mut self, now: SimTime) {
        if self.counting(now) {
            self.result.offered += 1;
            self.current_window.offered += 1;
            self.tracer.count("offered", 1);
        }
    }

    fn record_admitted(&mut self, now: SimTime, migrated: bool) {
        if self.counting(now) {
            if migrated {
                self.result.admitted_migrated += 1;
                self.tracer.count("admitted_migrated", 1);
            } else {
                self.result.admitted_local += 1;
                self.tracer.count("admitted_local", 1);
            }
            self.current_window.admitted += 1;
        }
    }

    fn record_rejected(&mut self, now: SimTime, dead_node: bool) {
        if self.counting(now) {
            self.result.rejected += 1;
            self.tracer.count("rejected", 1);
            if dead_node {
                self.result.lost_to_attacks += 1;
                self.tracer.count("lost_to_attacks", 1);
            }
        }
    }

    /// Emit a `queue_watermark` event when `node`'s backlog just set a new
    /// lifetime peak. Trace-only bookkeeping: nothing here feeds back into
    /// the simulation, and the early return keeps disabled runs free.
    fn trace_watermark(&mut self, node: NodeId, now: SimTime) {
        if !self.tracer.is_enabled() {
            return;
        }
        let hw = self.queues[node].high_water_secs();
        if hw > self.watermarks[node] {
            self.watermarks[node] = hw;
            if self.tracer.records(TraceKind::QueueWatermark) {
                self.tracer.emit(
                    now,
                    Some(node),
                    TraceKind::QueueWatermark,
                    &[
                        ("backlog_secs", TraceValue::F64(hw)),
                        ("frac", TraceValue::F64(hw / self.capacity_secs)),
                    ],
                );
            }
            // The gauge is exposition state, not an event: it must track the
            // peak even when the Debug-severity watermark event is filtered.
            self.tracer.gauge_max("queue_backlog_high_water_secs", hw);
        }
    }

    /// The task-level span id for an (optional) lineage.
    fn task_span(lineage: Option<u64>) -> Option<u64> {
        lineage.map(|l| TaskLineage(l).span())
    }

    /// Look up the lineage of a shadow-logged task. The map is populated
    /// only while tracing is enabled, so untraced runs always get `None`
    /// here — and the result only ever annotates trace events.
    fn lineage_of(&self, task_id: u64) -> Option<u64> {
        match self.task_lineages.get(task_id as usize) {
            Some(&l) if l != u64::MAX => Some(l),
            _ => None,
        }
    }

    fn handle_arrival(&mut self, idx: usize, now: SimTime, ctx: &mut Context<'_, Ev>) {
        if idx + 1 < self.trace.records.len() {
            ctx.schedule_at(self.trace.records[idx + 1].at, Ev::Arrival(idx + 1));
        }
        let rec = self.trace.records[idx];
        let node = rec.node;
        // A task's lineage is its arrival-trace index: deterministic,
        // globally unique, and identical in traced and untraced runs.
        let lineage = Some(idx as u64);
        let span = Self::task_span(lineage);
        self.record_offered(now);
        if self.counting(now) {
            self.result.node_stats[node].offered += 1;
            self.tracer.count_node("offered", node, 1);
        }

        if !self.fault.is_alive(node) {
            self.record_rejected(now, true);
            self.tracer.emit_spanned(
                now,
                Some(node),
                TraceKind::TaskReject,
                span,
                None,
                &[("reason", TraceValue::Str("dead_node"))],
            );
            return;
        }
        let size = rec.size_secs;
        if size > self.capacity_secs {
            // No queue in the system could ever hold this task.
            self.record_rejected(now, false);
            self.tracer.emit_spanned(
                now,
                Some(node),
                TraceKind::TaskReject,
                span,
                None,
                &[("reason", TraceValue::Str("oversize"))],
            );
            return;
        }

        // Algorithm H sees the occupancy *including* the new task.
        let view_incl = LocalView {
            queue_frac: self.queues[node].frac_with(now, size),
            headroom_secs: self.queues[node].headroom_at(now),
            capacity_secs: self.capacity_secs,
        };
        self.protos[node].on_task_arrival(now, view_incl, &mut self.actions);
        self.process_actions(node, now, ctx);

        if self.queues[node].can_accept(now, size) {
            self.queues[node]
                .admit(now, size)
                .expect("can_accept implies admit succeeds");
            self.occ_sync(node, now);
            self.log_admit(node, size, now, lineage);
            self.record_admitted(now, false);
            if self.counting(now) {
                self.result.node_stats[node].admitted_here += 1;
                self.tracer.count_node("admitted_here", node, 1);
            }
            self.tracer.emit_spanned(
                now,
                Some(node),
                TraceKind::TaskAdmit,
                span,
                None,
                &[
                    ("size_secs", TraceValue::F64(size)),
                    ("migrated", TraceValue::Bool(false)),
                ],
            );
            self.trace_watermark(node, now);
            self.after_queue_change(node, now, ctx);
            return;
        }

        // Queue full: one-shot migration to the protocol's best candidate.
        // The negotiation is a real request/reply exchange over the channel:
        // either leg can be lost or delayed, guarded by a timeout and a
        // bounded retry budget.
        let Some(dest) = self.protos[node].pick_candidate(now, size) else {
            self.record_rejected(now, false);
            self.tracer.emit_spanned(
                now,
                Some(node),
                TraceKind::TaskReject,
                span,
                None,
                &[("reason", TraceValue::Str("no_candidate"))],
            );
            return;
        };
        let counted = self.counting(now);
        if counted {
            self.result.migration_attempts += 1;
            self.tracer.count("migration_attempts", 1);
        }
        let attempt = self.next_attempt;
        self.next_attempt += 1;
        self.tracer.emit_spanned(
            now,
            Some(node),
            TraceKind::MigrateStart,
            Some(attempt_span(attempt)),
            span,
            &[
                ("dst", TraceValue::U64(dest as u64)),
                ("size_secs", TraceValue::F64(size)),
                ("kind", TraceValue::Str("arrival")),
            ],
        );
        self.pending.insert(
            attempt,
            MigrationAttempt {
                src: node,
                dst: dest,
                size_secs: size,
                counted,
                tries_left: self.negotiation_retries,
                try_no: 1,
                kind: AttemptKind::Arrival,
                lineage,
            },
        );
        self.send_migrate_request(attempt, now, ctx);
    }

    /// Send (or re-send) the negotiation request of `attempt` and arm its
    /// timeout. Each send is charged: a retry really does cost another
    /// request/reply round on the wire. An unreachable destination is still
    /// charged (legacy behavior — the constant-cost paper accounting
    /// charges the attempt, not the delivery) but nothing is delivered, so
    /// the attempt resolves through its timeout.
    fn send_migrate_request(&mut self, attempt: u64, now: SimTime, ctx: &mut Context<'_, Ev>) {
        let a = self.pending[&attempt];
        if a.counted {
            let routing = self.fault.routing(&self.topology);
            let c = self.cost.negotiation_cost(routing, a.src, a.dst);
            self.result.ledger.charge_migration(c);
            self.tracer.count("msg_migration", 1);
        }
        let reachable = {
            let routing = self.fault.routing(&self.topology);
            routing.reachable(a.src, a.dst)
        };
        if reachable {
            match self.channel_sample(now, a.src, a.dst) {
                Sampled::Lost => {}
                Sampled::Delivered { delay, duplicate } => {
                    // The negotiation rides only the channel's extra delay,
                    // not per-hop latency: under the ideal channel this
                    // preserves the paper's synchronous one-shot semantics
                    // (request, decision and reply at the arrival instant).
                    ctx.schedule_in(delay, Ev::MigrateRequest { attempt });
                    if let Some(dup) = duplicate {
                        ctx.schedule_in(dup, Ev::MigrateRequest { attempt });
                    }
                }
            }
        } else {
            self.note_partition_drop(now);
        }
        ctx.schedule_in(
            self.negotiation_timeout,
            Ev::MigrateTimeout {
                attempt,
                try_no: a.try_no,
            },
        );
    }

    /// The destination receives a negotiation request: decide once, replay
    /// the recorded decision for duplicates/retries, and send the reply back
    /// over the channel.
    fn handle_migrate_request(&mut self, attempt: u64, now: SimTime, ctx: &mut Context<'_, Ev>) {
        let Some(&a) = self.pending.get(&attempt) else {
            return; // already resolved
        };
        if !self.fault.is_alive(a.dst) {
            return; // dead destinations answer nothing; the timeout decides
        }
        let admitted = match self.dst_decisions.get(&attempt) {
            Some(&decision) => decision,
            None => {
                let admitted = self.queues[a.dst].can_accept(now, a.size_secs);
                if admitted {
                    self.queues[a.dst]
                        .admit(now, a.size_secs)
                        .expect("checked can_accept");
                    self.occ_sync(a.dst, now);
                    self.log_admit(a.dst, a.size_secs, now, a.lineage);
                    if a.counted && matches!(a.kind, AttemptKind::Arrival) {
                        self.result.node_stats[a.dst].admitted_here += 1;
                        self.tracer.count_node("admitted_here", a.dst, 1);
                    }
                    self.tracer.emit_spanned(
                        now,
                        Some(a.dst),
                        TraceKind::TaskAdmit,
                        Self::task_span(a.lineage),
                        Some(attempt_span(attempt)),
                        &[
                            ("size_secs", TraceValue::F64(a.size_secs)),
                            ("migrated", TraceValue::Bool(true)),
                        ],
                    );
                    self.trace_watermark(a.dst, now);
                    self.after_queue_change(a.dst, now, ctx);
                }
                self.dst_decisions.insert(attempt, admitted);
                admitted
            }
        };
        let reachable = {
            let routing = self.fault.routing(&self.topology);
            routing.reachable(a.dst, a.src)
        };
        if reachable {
            match self.channel_sample(now, a.dst, a.src) {
                Sampled::Lost => {}
                Sampled::Delivered { delay, duplicate } => {
                    ctx.schedule_in(delay, Ev::MigrateReply { attempt, admitted });
                    if let Some(dup) = duplicate {
                        ctx.schedule_in(dup, Ev::MigrateReply { attempt, admitted });
                    }
                }
            }
        } else {
            self.note_partition_drop(now);
        }
    }

    /// The source's negotiation timer fired. Stale timeouts (a newer try is
    /// in flight, or the attempt already resolved) are ignored; otherwise
    /// spend a retry or give up.
    fn handle_migrate_timeout(
        &mut self,
        attempt: u64,
        try_no: u32,
        now: SimTime,
        ctx: &mut Context<'_, Ev>,
    ) {
        let Some(a) = self.pending.get_mut(&attempt) else {
            return;
        };
        if a.try_no != try_no {
            return;
        }
        if a.tries_left > 0 {
            a.tries_left -= 1;
            a.try_no += 1;
            self.send_migrate_request(attempt, now, ctx);
        } else {
            self.resolve_migration(attempt, now, false, Some(ctx));
        }
    }

    /// Resolve `attempt` at the source. Duplicated replies find the attempt
    /// gone and are ignored. Retries are only spent on silence (timeout) —
    /// an explicit refusal is definitive, per the paper's one-shot
    /// semantics. `ctx` is `None` only at the horizon (`finish`), where
    /// nothing further may be scheduled: recovery attempts then give up
    /// instead of re-submitting.
    fn resolve_migration(
        &mut self,
        attempt: u64,
        now: SimTime,
        admitted: bool,
        mut ctx: Option<&mut Context<'_, Ev>>,
    ) {
        let Some(a) = self.pending.remove(&attempt) else {
            return;
        };
        self.dst_decisions.remove(&attempt);
        if self.tracer.is_enabled() {
            let kind_label = match a.kind {
                AttemptKind::Arrival => "arrival",
                AttemptKind::Recovery { .. } => "recovery",
                AttemptKind::Evacuation { .. } => "evacuation",
            };
            self.tracer.emit_spanned(
                now,
                Some(a.src),
                TraceKind::MigrateResolve,
                Some(attempt_span(attempt)),
                Self::task_span(a.lineage),
                &[
                    ("dst", TraceValue::U64(a.dst as u64)),
                    ("admitted", TraceValue::Bool(admitted)),
                    ("kind", TraceValue::Str(kind_label)),
                ],
            );
        }
        match a.kind {
            AttemptKind::Arrival => {
                if admitted {
                    if a.counted {
                        self.result.migration_successes += 1;
                        self.result.admitted_migrated += 1;
                        self.current_window.admitted += 1;
                        self.tracer.count("migration_successes", 1);
                        self.tracer.count("admitted_migrated", 1);
                    }
                } else {
                    if a.counted {
                        self.result.rejected += 1;
                        self.tracer.count("rejected", 1);
                    }
                    // Terminal task-span event: without it a refused
                    // arrival's journey would end on the attempt span and
                    // the lineage graph would dangle.
                    self.tracer.emit_spanned(
                        now,
                        Some(a.src),
                        TraceKind::TaskReject,
                        Self::task_span(a.lineage),
                        Some(attempt_span(attempt)),
                        &[("reason", TraceValue::Str("migration_refused"))],
                    );
                }
                self.protos[a.src].on_migration_result(now, a.dst, admitted);
            }
            AttemptKind::Recovery { submissions_left } => {
                if self.fault.is_alive(a.src) {
                    self.protos[a.src].on_migration_result(now, a.dst, admitted);
                }
                if admitted {
                    if a.counted {
                        self.result.tasks_recovered += 1;
                        self.result.work_recovered += a.size_secs;
                        self.tracer.count("tasks_recovered", 1);
                    }
                    self.tracer.emit_spanned(
                        now,
                        Some(a.dst),
                        TraceKind::TaskRecover,
                        Self::task_span(a.lineage),
                        Some(attempt_span(attempt)),
                        &[("size_secs", TraceValue::F64(a.size_secs))],
                    );
                } else {
                    let retried = match ctx.as_deref_mut() {
                        Some(ctx) if self.fault.is_alive(a.src) => self
                            .launch_recovery_attempt(
                                a.src,
                                a.size_secs,
                                a.counted,
                                a.lineage,
                                submissions_left,
                                now,
                                ctx,
                            ),
                        _ => false,
                    };
                    if !retried {
                        if a.counted {
                            self.result.tasks_destroyed += 1;
                            self.result.work_destroyed += a.size_secs;
                            self.tracer.count("tasks_destroyed", 1);
                        }
                        self.tracer.emit_spanned(
                            now,
                            Some(a.src),
                            TraceKind::TaskDestroy,
                            Self::task_span(a.lineage),
                            Some(attempt_span(attempt)),
                            &[("size_secs", TraceValue::F64(a.size_secs))],
                        );
                    }
                }
            }
            AttemptKind::Evacuation {
                victim,
                task_id,
                victim_crashed,
            } => {
                if !victim_crashed {
                    self.protos[victim].on_migration_result(now, a.dst, admitted);
                    if admitted {
                        // The destination holds a copy: withdraw the task
                        // from the (still-alive) victim.
                        let remaining =
                            self.task_logs[victim].remove(task_id, now).unwrap_or(0.0);
                        if remaining > 0.0 {
                            self.queues[victim].withdraw(now, remaining);
                            self.occ_sync(victim, now);
                            if let Some(ctx) = ctx {
                                self.after_queue_change(victim, now, ctx);
                            }
                        }
                        if a.counted {
                            self.result.evacuation_successes += 1;
                            self.result.work_evacuated += remaining;
                            self.tracer.count("evacuation_successes", 1);
                        }
                    } else {
                        // Refused: the task stays and keeps executing here.
                        self.task_logs[victim].clear_evacuating(task_id);
                    }
                } else if admitted {
                    // The evacuation outran the kill: the destination holds
                    // the work, so the interrupted task counts as recovered.
                    if a.counted {
                        self.result.tasks_recovered += 1;
                        self.result.work_recovered += a.size_secs;
                        self.tracer.count("tasks_recovered", 1);
                    }
                    self.tracer.emit_spanned(
                        now,
                        Some(a.dst),
                        TraceKind::TaskRecover,
                        Self::task_span(a.lineage),
                        Some(attempt_span(attempt)),
                        &[("size_secs", TraceValue::F64(a.size_secs))],
                    );
                } else {
                    if a.counted {
                        self.result.tasks_destroyed += 1;
                        self.result.work_destroyed += a.size_secs;
                        self.tracer.count("tasks_destroyed", 1);
                    }
                    self.tracer.emit_spanned(
                        now,
                        Some(a.src),
                        TraceKind::TaskDestroy,
                        Self::task_span(a.lineage),
                        Some(attempt_span(attempt)),
                        &[("size_secs", TraceValue::F64(a.size_secs))],
                    );
                }
            }
        }
    }

    fn handle_attack(&mut self, idx: usize, now: SimTime, ctx: &mut Context<'_, Ev>) {
        let ev = self.attack.events()[idx];
        if self.tracer.is_enabled() {
            let (action, count) = match ev.action {
                AttackAction::Kill { count } => ("kill", count as u64),
                AttackAction::KillAfterWarning { count, .. } => {
                    ("kill_after_warning", count as u64)
                }
                AttackAction::RestoreAll => ("restore_all", 0),
                AttackAction::Restore { count } => ("restore", count as u64),
                AttackAction::CutLinks { count } => ("cut_links", count as u64),
                AttackAction::RestoreLinks => ("restore_links", 0),
                AttackAction::DegradeLinks { count } => ("degrade_links", count as u64),
                AttackAction::RestoreLinkQuality => ("restore_link_quality", 0),
                AttackAction::Partition { parts } => ("partition", parts as u64),
                AttackAction::Heal => ("heal", 0),
            };
            self.tracer.emit(
                now,
                None,
                TraceKind::AttackAction,
                &[
                    ("action", TraceValue::Str(action)),
                    ("count", TraceValue::U64(count)),
                ],
            );
        }
        match ev.action {
            AttackAction::Kill { count } => {
                let victims =
                    self.fault
                        .attack(&self.topology, &self.targeting, count, &mut self.attack_rng);
                for v in victims {
                    self.kill_node(v, now);
                }
            }
            AttackAction::KillAfterWarning { count, lead } => {
                // Victims are chosen now, from the same targeting stream an
                // unwarned kill would draw, but die only after `lead`.
                let victims = self.fault.choose_victims(
                    &self.topology,
                    &self.targeting,
                    count,
                    &mut self.attack_rng,
                );
                if self.recovery.enabled && self.recovery.proactive {
                    for &v in &victims {
                        self.evacuate_node(v, now, ctx);
                    }
                }
                ctx.schedule_in(lead, Ev::DelayedKill { victims });
            }
            AttackAction::RestoreAll => {
                let dead: Vec<NodeId> = (0..self.node_count())
                    .filter(|&n| !self.fault.is_alive(n))
                    .collect();
                for v in dead {
                    self.restore_node(v, now, ctx);
                }
            }
            AttackAction::Restore { count } => {
                let dead: Vec<NodeId> = (0..self.node_count())
                    .filter(|&n| !self.fault.is_alive(n))
                    .take(count)
                    .collect();
                for v in dead {
                    self.restore_node(v, now, ctx);
                }
            }
            AttackAction::CutLinks { count } => {
                let intact: Vec<(NodeId, NodeId)> = self
                    .topology
                    .edges()
                    .into_iter()
                    .filter(|&(a, b)| !self.fault.is_link_cut(a, b))
                    .collect();
                let count = count.min(intact.len());
                let picks = self.attack_rng.sample_indices(intact.len().max(1), count);
                for i in picks {
                    let (a, b) = intact[i];
                    self.fault.cut_link(&self.topology, a, b);
                }
            }
            AttackAction::RestoreLinks => {
                for (a, b) in self.topology.edges() {
                    self.fault.restore_link(a, b);
                }
            }
            AttackAction::DegradeLinks { count } => {
                let candidates: Vec<(NodeId, NodeId)> = self
                    .topology
                    .edges()
                    .into_iter()
                    .filter(|&(a, b)| !self.channel.is_link_degraded(a, b))
                    .collect();
                let count = count.min(candidates.len());
                let picks = self
                    .attack_rng
                    .sample_indices(candidates.len().max(1), count);
                for i in picks {
                    let (a, b) = candidates[i];
                    self.channel.degrade_link(a, b);
                }
            }
            AttackAction::RestoreLinkQuality => {
                self.channel.restore_all_quality();
            }
            AttackAction::Partition { parts } => {
                self.fault
                    .partition(&self.topology, parts, &mut self.attack_rng);
            }
            AttackAction::Heal => {
                self.fault.heal_partition();
            }
        }
    }

    /// Kill bookkeeping shared by immediate and warned kills. The queue-wipe
    /// order (`occ_sync` → fresh queue → occupancy reset → drain-generation
    /// bump) is the legacy sequence and must stay exact for golden parity.
    fn kill_node(&mut self, v: NodeId, now: SimTime) {
        self.occ_sync(v, now);
        let counted = self.counting(now);
        self.tracer.emit(
            now,
            Some(v),
            TraceKind::NodeKill,
            &[("backlog_secs", TraceValue::F64(self.queues[v].backlog_at(now)))],
        );
        if self.recovery.enabled {
            // In-flight evacuations from this node lose their source: their
            // negotiation outcome now decides the task's fate.
            for a in self.pending.values_mut() {
                if let AttemptKind::Evacuation {
                    victim,
                    victim_crashed,
                    ..
                } = &mut a.kind
                {
                    if *victim == v && !*victim_crashed {
                        *victim_crashed = true;
                        if a.counted {
                            self.result.tasks_interrupted += 1;
                            self.tracer.count("tasks_interrupted", 1);
                        }
                    }
                }
            }
            let split = self.task_logs[v].split_at_kill(now, self.recovery.checkpoint_fraction);
            if counted {
                self.result.tasks_interrupted +=
                    split.recoverable.len() as u64 + split.destroyed_tasks;
                self.result.tasks_destroyed += split.destroyed_tasks;
                self.result.work_destroyed += split.destroyed_work;
                self.tracer.count(
                    "tasks_interrupted",
                    split.recoverable.len() as u64 + split.destroyed_tasks,
                );
                self.tracer.count("tasks_destroyed", split.destroyed_tasks);
            }
            if self.tracer.is_enabled()
                && (!split.recoverable.is_empty() || split.destroyed_tasks > 0)
            {
                self.tracer.emit(
                    now,
                    Some(v),
                    TraceKind::CheckpointSplit,
                    &[
                        ("recoverable", TraceValue::U64(split.recoverable.len() as u64)),
                        ("destroyed", TraceValue::U64(split.destroyed_tasks)),
                        ("destroyed_work_secs", TraceValue::F64(split.destroyed_work)),
                    ],
                );
                self.tracer.emit(
                    now,
                    Some(v),
                    TraceKind::TaskInterrupt,
                    &[(
                        "count",
                        TraceValue::U64(split.recoverable.len() as u64 + split.destroyed_tasks),
                    )],
                );
            }
            if !split.recoverable.is_empty() {
                self.orphans.insert(
                    v,
                    OrphanSet {
                        counted,
                        tasks: split.recoverable,
                    },
                );
            }
        } else if counted {
            // No task identity without recovery: the whole backlog is lost.
            self.result.work_destroyed += self.queues[v].backlog_at(now);
        }
        self.queues[v] = realtor_node::WorkQueue::new(self.capacity_secs);
        self.occ[v].2 = 0.0;
        self.drain_gen[v] += 1;
        self.kill_times[v] = Some(now);
    }

    /// A node's failure detector confirmed `peer` dead
    /// ([`Action::DeclareDead`]): measure detection latency on the first
    /// confirmation of the outage, and let the declaring node re-home any
    /// checkpoints the dead peer left behind.
    fn handle_declaration(
        &mut self,
        reporter: NodeId,
        peer: NodeId,
        now: SimTime,
        ctx: &mut Context<'_, Ev>,
    ) {
        if self.fault.is_alive(peer) {
            // The peer is up (it was restored, or was merely slow): the
            // declaration is wrong. Count it; the declarer's protocol state
            // heals on the peer's next message.
            if self.counting(now) {
                self.result.false_suspicions += 1;
                self.tracer.count("false_suspicions", 1);
            }
            return;
        }
        if let Some(killed_at) = self.kill_times[peer].take() {
            if self.counting(now) {
                let latency = now.since(killed_at).as_secs_f64();
                self.result.detections += 1;
                self.tracer.count("detections", 1);
                self.result.detection_latency_sum += latency;
                self.result.detection_latency_max =
                    self.result.detection_latency_max.max(latency);
            }
        }
        let Some(set) = self.orphans.remove(&peer) else {
            return;
        };
        for (task_id, size) in set.tasks {
            let lineage = self.lineage_of(task_id);
            self.recover_task(reporter, size, set.counted, lineage, now, ctx);
        }
    }

    /// Re-home one orphaned checkpoint at `host` (the node that confirmed
    /// the death, or the restarted owner itself): admit locally when there
    /// is room, otherwise re-submit through the host's discovery view with
    /// a bounded retry budget. A checkpoint that finds no home is destroyed.
    fn recover_task(
        &mut self,
        host: NodeId,
        size: f64,
        counted: bool,
        lineage: Option<u64>,
        now: SimTime,
        ctx: &mut Context<'_, Ev>,
    ) {
        if self.fault.is_alive(host) && self.queues[host].can_accept(now, size) {
            self.queues[host]
                .admit(now, size)
                .expect("checked can_accept");
            self.occ_sync(host, now);
            self.log_admit(host, size, now, lineage);
            if counted {
                self.result.tasks_recovered += 1;
                self.result.work_recovered += size;
                self.tracer.count("tasks_recovered", 1);
            }
            self.tracer.emit_spanned(
                now,
                Some(host),
                TraceKind::TaskRecover,
                Self::task_span(lineage),
                None,
                &[("size_secs", TraceValue::F64(size))],
            );
            self.trace_watermark(host, now);
            self.after_queue_change(host, now, ctx);
            return;
        }
        let launched = self.fault.is_alive(host)
            && self.launch_recovery_attempt(
                host,
                size,
                counted,
                lineage,
                self.recovery.recovery_tries,
                now,
                ctx,
            );
        if !launched {
            if counted {
                self.result.tasks_destroyed += 1;
                self.result.work_destroyed += size;
                self.tracer.count("tasks_destroyed", 1);
            }
            self.tracer.emit_spanned(
                now,
                Some(host),
                TraceKind::TaskDestroy,
                Self::task_span(lineage),
                None,
                &[("size_secs", TraceValue::F64(size))],
            );
        }
    }

    /// Spend one of `submissions_left` re-submissions of an orphaned
    /// checkpoint: ask `host`'s protocol for a candidate and start a
    /// negotiation (charged like any migration). Returns whether a
    /// negotiation was actually launched.
    #[allow(clippy::too_many_arguments)]
    fn launch_recovery_attempt(
        &mut self,
        host: NodeId,
        size: f64,
        counted: bool,
        lineage: Option<u64>,
        submissions_left: u32,
        now: SimTime,
        ctx: &mut Context<'_, Ev>,
    ) -> bool {
        if submissions_left == 0 {
            return false;
        }
        let Some(dest) = self.protos[host].pick_candidate(now, size) else {
            return false;
        };
        if counted {
            self.result.recovery_attempts += 1;
            self.tracer.count("recovery_attempts", 1);
        }
        let attempt = self.next_attempt;
        self.next_attempt += 1;
        self.tracer.emit_spanned(
            now,
            Some(host),
            TraceKind::MigrateStart,
            Some(attempt_span(attempt)),
            Self::task_span(lineage),
            &[
                ("dst", TraceValue::U64(dest as u64)),
                ("size_secs", TraceValue::F64(size)),
                ("kind", TraceValue::Str("recovery")),
            ],
        );
        self.pending.insert(
            attempt,
            MigrationAttempt {
                src: host,
                dst: dest,
                size_secs: size,
                counted,
                tries_left: self.negotiation_retries,
                try_no: 1,
                kind: AttemptKind::Recovery {
                    submissions_left: submissions_left - 1,
                },
                lineage,
            },
        );
        self.send_migrate_request(attempt, now, ctx);
        true
    }

    /// An attack warning reached `victim`: try to move every pending task
    /// somewhere safer before the strike lands. Each task negotiates
    /// independently through the victim's own discovery view; tasks with no
    /// candidate simply stay and ride out the kill.
    fn evacuate_node(&mut self, victim: NodeId, now: SimTime, ctx: &mut Context<'_, Ev>) {
        if !self.fault.is_alive(victim) {
            return;
        }
        self.task_logs[victim].prune_finished(now);
        let pending = self.task_logs[victim].pending_newest_first(now);
        let counted = self.counting(now);
        for (task_id, remaining) in pending {
            let Some(dest) = self.protos[victim].pick_candidate(now, remaining) else {
                continue;
            };
            if counted {
                self.result.evacuation_attempts += 1;
                self.tracer.count("evacuation_attempts", 1);
            }
            let lineage = self.lineage_of(task_id);
            let attempt = self.next_attempt;
            self.next_attempt += 1;
            self.tracer.emit_spanned(
                now,
                Some(victim),
                TraceKind::EvacuationStart,
                Some(attempt_span(attempt)),
                Self::task_span(lineage),
                &[
                    ("dst", TraceValue::U64(dest as u64)),
                    ("size_secs", TraceValue::F64(remaining)),
                ],
            );
            self.task_logs[victim].mark_evacuating(task_id);
            self.pending.insert(
                attempt,
                MigrationAttempt {
                    src: victim,
                    dst: dest,
                    size_secs: remaining,
                    counted,
                    tries_left: self.negotiation_retries,
                    try_no: 1,
                    kind: AttemptKind::Evacuation {
                        victim,
                        task_id,
                        victim_crashed: false,
                    },
                    lineage,
                },
            );
            self.send_migrate_request(attempt, now, ctx);
        }
    }

    /// Shadow-log an admission for recovery. A no-op while recovery is off,
    /// so golden runs never touch the log. The task's causal `lineage` is
    /// remembered (tracing only) so later recovery events can link back to
    /// the original arrival.
    fn log_admit(&mut self, node: NodeId, size_secs: f64, now: SimTime, lineage: Option<u64>) {
        if !self.recovery.enabled {
            return;
        }
        let id = self.next_task_id;
        self.next_task_id += 1;
        self.task_logs[node].prune_finished(now);
        let finish = now + SimDuration::from_secs_f64(self.queues[node].backlog_at(now));
        self.task_logs[node].record_admit(id, size_secs, finish);
        if self.tracer.is_enabled() {
            if let Some(l) = lineage {
                if self.task_lineages.len() <= id as usize {
                    self.task_lineages.resize(id as usize + 1, u64::MAX);
                }
                self.task_lineages[id as usize] = l;
            }
        }
    }

    /// Introspect the protocol instance on `node` (tests and experiments).
    pub fn introspect_node(
        &self,
        node: NodeId,
        now: SimTime,
    ) -> realtor_core::protocol::Introspection {
        self.protos[node].introspect(now)
    }

    fn restore_node(&mut self, node: NodeId, now: SimTime, ctx: &mut Context<'_, Ev>) {
        self.tracer.emit(now, Some(node), TraceKind::NodeRestore, &[]);
        self.fault.restore(node);
        self.occ_sync(node, now);
        self.queues[node] = realtor_node::WorkQueue::new(self.capacity_secs);
        self.occ[node].2 = 0.0;
        self.drain_gen[node] += 1;
        self.kill_times[node] = None;
        self.task_logs[node].clear();
        self.protos[node].on_reset(now);
        let view = self.view(node, now);
        self.protos[node].on_start(now, view, &mut self.actions);
        self.process_actions(node, now, ctx);
        // Crash-restart recovery: if no peer claimed this node's checkpoints
        // while it was down, the restarted node re-admits them itself.
        if let Some(set) = self.orphans.remove(&node) {
            for (task_id, size) in set.tasks {
                let lineage = self.lineage_of(task_id);
                self.recover_task(node, size, set.counted, lineage, now, ctx);
            }
        }
    }

    /// One churn wave: restore the previous wave's victims, then (while the
    /// churn window is open) kill a fresh fraction of the alive population
    /// drawn from the dedicated churn RNG stream. A final restore-only tick
    /// fires exactly at the window's end so no churn victim stays dead
    /// forever.
    fn handle_churn_tick(&mut self, now: SimTime, ctx: &mut Context<'_, Ev>) {
        let Some(mut churn) = self.churn.take() else {
            return;
        };
        for v in churn.take_restores() {
            if !self.fault.is_alive(v) {
                self.restore_node(v, now, ctx);
            }
        }
        let cfg = *churn.config();
        if now >= cfg.end {
            // Window closed: the tick above restored the last wave; done.
            self.churn = Some(churn);
            return;
        }
        let victims = churn.tick(&self.fault.alive_nodes(), self.node_count());
        self.tracer.emit(
            now,
            None,
            TraceKind::AttackAction,
            &[
                ("action", TraceValue::Str("churn_wave")),
                ("count", TraceValue::U64(victims.len() as u64)),
            ],
        );
        for v in victims {
            if self.fault.is_alive(v) {
                self.fault.kill(v);
                self.kill_node(v, now);
            }
        }
        let next = churn.next_wave(now).unwrap_or(cfg.end);
        ctx.schedule_at(next, Ev::ChurnTick);
        self.churn = Some(churn);
    }

    /// The adaptive adversary strikes: rank alive nodes by the pledge/help
    /// traffic it has *observed* (the A14 per-node trace counters — no
    /// oracle access to queue state or protocol internals) and kill the
    /// top talkers. Victims come back after the configured downtime.
    fn handle_adversary_strike(&mut self, now: SimTime, ctx: &mut Context<'_, Ev>) {
        let Some(adv) = self.chaos.adversary else {
            return;
        };
        let mut ranked: Vec<(std::cmp::Reverse<u64>, NodeId)> = (0..self.node_count())
            .filter(|&n| self.fault.is_alive(n))
            .map(|n| {
                let score = self.tracer.node_counter("sent_pledge", n)
                    + self.tracer.node_counter("sent_help", n);
                (std::cmp::Reverse(score), n)
            })
            .collect();
        ranked.sort(); // most-observed first, stable id tie-break
        let victims: Vec<NodeId> = ranked.into_iter().take(adv.kills).map(|(_, n)| n).collect();
        self.tracer.emit(
            now,
            None,
            TraceKind::AttackAction,
            &[
                ("action", TraceValue::Str("adversary_strike")),
                ("count", TraceValue::U64(victims.len() as u64)),
            ],
        );
        for &v in &victims {
            self.fault.kill(v);
            self.kill_node(v, now);
        }
        if !victims.is_empty() {
            ctx.schedule_in(adv.downtime, Ev::AdversaryRestore { victims });
        }
        let next = now + adv.interval;
        if next < adv.end {
            ctx.schedule_at(next, Ev::AdversaryStrike);
        }
    }

    fn close_window(&mut self, now: SimTime, ctx: &mut Context<'_, Ev>) {
        let Some(w) = self.window else { return };
        let mut stat = std::mem::take(&mut self.current_window);
        stat.alive_nodes = self.fault.alive_count();
        self.result.windows.push(stat);
        self.current_window.start = now;
        // Sample Algorithm-H interval dynamics across alive nodes.
        let mut sum = 0.0;
        let mut max = 0.0f64;
        let mut n = 0u32;
        for node in 0..self.node_count() {
            if !self.fault.is_alive(node) {
                continue;
            }
            if let Some(iv) = self.protos[node].introspect(now).help_interval_secs {
                sum += iv;
                max = max.max(iv);
                n += 1;
            }
        }
        if n > 0 {
            self.result
                .interval_series
                .push((now, sum / f64::from(n), max));
        }
        ctx.schedule_in(w, Ev::WindowTick);
    }

    /// Seed the engine with the initial events and protocol start-up.
    pub fn prime(&mut self, engine: &mut Engine<Ev>) {
        struct Primer<'a>(&'a mut World);
        impl Handler for Primer<'_> {
            type Event = Ev;
            fn handle(&mut self, _ev: Ev, ctx: &mut Context<'_, Ev>) {
                let world = &mut *self.0;
                for node in 0..world.node_count() {
                    let view = world.view(node, ctx.now());
                    world.protos[node].on_start(ctx.now(), view, &mut world.actions);
                    world.process_actions(node, ctx.now(), ctx);
                }
                if let Some(first) = world.trace.records.first() {
                    ctx.schedule_at(first.at, Ev::Arrival(0));
                }
                for (i, a) in world.attack.events().iter().enumerate() {
                    ctx.schedule_at(a.at, Ev::Attack(i));
                }
                if let Some(churn) = &world.churn {
                    ctx.schedule_at(churn.first_wave(), Ev::ChurnTick);
                }
                if let Some(adv) = world.chaos.adversary {
                    ctx.schedule_at(adv.start, Ev::AdversaryStrike);
                }
                if let Some(w) = world.window {
                    ctx.schedule_in(w, Ev::WindowTick);
                }
            }
        }
        engine.schedule_at(SimTime::ZERO, Ev::WindowTick); // reused as a boot event
        let mut primer = Primer(self);
        engine.run(&mut primer, SimTime::ZERO, 1);
    }

    /// Finish the run: close the last window, validate and return metrics.
    /// The world is left drained of its result and should be discarded.
    pub fn finish(&mut self, engine: &Engine<Ev>) -> SimResult {
        // Negotiations still in flight at the horizon resolve as rejections
        // so `offered == admitted + rejected` holds for every run.
        let unresolved: Vec<u64> = self.pending.keys().copied().collect();
        for attempt in unresolved {
            self.resolve_migration(attempt, engine.now(), false, None);
        }
        // Checkpoints never claimed by the horizon are destroyed, keeping
        // the interrupted-task ledger balanced.
        let unclaimed: Vec<NodeId> = self.orphans.keys().copied().collect();
        for node in unclaimed {
            let set = self.orphans.remove(&node).expect("key just listed");
            if set.counted {
                self.result.tasks_destroyed += set.tasks.len() as u64;
                self.tracer.count("tasks_destroyed", set.tasks.len() as u64);
                self.result.work_destroyed +=
                    set.tasks.iter().map(|&(_, s)| s).sum::<f64>();
            }
        }
        if self.window.is_some() && (self.current_window.offered > 0) {
            let mut stat = self.current_window;
            stat.alive_nodes = self.fault.alive_count();
            self.result.windows.push(stat);
            self.current_window = WindowStat::default();
        }
        let now = engine.now();
        let elapsed = now.as_secs_f64();
        for node in 0..self.node_count() {
            self.occ_sync(node, now);
            if elapsed > 0.0 {
                self.result.node_stats[node].mean_occupancy =
                    self.occ[node].0 / elapsed / self.capacity_secs;
            }
        }
        let mut result = std::mem::take(&mut self.result);
        result.events_processed = engine.processed();
        result.queue_high_water = engine.queue_high_water() as u64;
        result.validate();
        result
    }
}

impl Handler for World {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::Arrival(idx) => self.handle_arrival(idx, now, ctx),
            Ev::FloodDeliver { from, msg } => {
                // Deliver to every alive node in the sender's scope, in id
                // order (deterministic). Under an active partition the flood
                // dies at the cut: recipients across it never hear it.
                let partitioned = self.fault.has_partition();
                // Index loop instead of cloning the scope vector per flood
                // (this runs once per FloodDeliver — the hottest event kind).
                for ri in 0..self.scopes[from].len() {
                    let to = self.scopes[from][ri];
                    if !self.fault.is_alive(to) {
                        continue;
                    }
                    if partitioned && !self.fault.routing(&self.topology).reachable(from, to) {
                        self.note_partition_drop(now);
                        continue;
                    }
                    let view = self.view(to, now);
                    self.protos[to].on_message(now, from, &msg, view, &mut self.actions);
                    self.process_actions(to, now, ctx);
                }
            }
            Ev::Deliver { from, to, msg } => {
                if self.fault.is_alive(to) {
                    let view = self.view(to, now);
                    self.protos[to].on_message(now, from, &msg, view, &mut self.actions);
                    self.process_actions(to, now, ctx);
                }
            }
            Ev::Timer { node, token } => {
                if self.fault.is_alive(node) {
                    let view = self.view(node, now);
                    self.protos[node].on_timer(now, token, view, &mut self.actions);
                    self.process_actions(node, now, ctx);
                }
            }
            Ev::Drain { node, gen } => {
                if gen == self.drain_gen[node] && self.fault.is_alive(node) {
                    let view = self.view(node, now);
                    self.protos[node].on_usage_change(now, view, &mut self.actions);
                    self.process_actions(node, now, ctx);
                }
            }
            Ev::Attack(idx) => self.handle_attack(idx, now, ctx),
            Ev::DelayedKill { victims } => {
                for v in victims {
                    if self.fault.is_alive(v) {
                        self.fault.kill(v);
                        self.kill_node(v, now);
                    }
                }
            }
            Ev::ChurnTick => self.handle_churn_tick(now, ctx),
            Ev::AdversaryStrike => self.handle_adversary_strike(now, ctx),
            Ev::AdversaryRestore { victims } => {
                for v in victims {
                    if !self.fault.is_alive(v) {
                        self.restore_node(v, now, ctx);
                    }
                }
            }
            Ev::WindowTick => self.close_window(now, ctx),
            Ev::MigrateRequest { attempt } => self.handle_migrate_request(attempt, now, ctx),
            Ev::MigrateReply { attempt, admitted } => {
                self.resolve_migration(attempt, now, admitted, Some(ctx))
            }
            Ev::MigrateTimeout { attempt, try_no } => {
                self.handle_migrate_timeout(attempt, try_no, now, ctx)
            }
        }
    }
}

/// Run one scenario to completion and return its metrics.
///
/// ```
/// use realtor_core::ProtocolKind;
/// use realtor_sim::{run_scenario, Scenario};
///
/// let r = run_scenario(&Scenario::paper(ProtocolKind::Realtor, 2.0, 100, 1));
/// assert_eq!(r.offered, r.admitted() + r.rejected);
/// assert!(r.admission_probability() > 0.99); // light load admits everything
/// ```
pub fn run_scenario(scenario: &Scenario) -> SimResult {
    let mut world = World::new(scenario);
    run_world(&mut world, scenario)
}

/// Run a scenario with a custom protocol factory.
pub fn run_scenario_with(
    scenario: &Scenario,
    build: &mut ProtocolBuilder<'_>,
) -> SimResult {
    let mut world = World::with_protocols(scenario, build);
    run_world(&mut world, scenario)
}

fn run_world(world: &mut World, scenario: &Scenario) -> SimResult {
    let mut engine = Engine::new();
    world.prime(&mut engine);
    let outcome = engine.run_until(world, scenario.horizon());
    debug_assert!(matches!(
        outcome,
        RunOutcome::Drained | RunOutcome::Horizon
    ));
    world.finish(&engine)
}

/// Run one scenario with the given tracer attached to the world and every
/// protocol instance. With a disabled tracer this is exactly
/// [`run_scenario`]; with an enabled one the simulation is unchanged
/// bit-for-bit (tracing is strictly observational) and the caller can pull
/// events and counters out of the tracer afterwards.
pub fn run_scenario_traced(scenario: &Scenario, tracer: Tracer) -> SimResult {
    let mut world = World::new(scenario);
    world.set_tracer(tracer);
    run_world(&mut world, scenario)
}

/// Events per timing chunk of the profiled main loop: small enough to
/// resolve latency spikes (GC-free, so spikes mean queue restructuring or
/// cache effects), large enough that `Instant::now` overhead stays noise.
const PROFILE_CHUNK_EVENTS: u64 = 4096;

/// Wall-clock and engine profile of one simulation run, for bench output.
/// Wall times live here — never in [`SimResult`] — so results stay
/// deterministic.
#[derive(Debug, Clone)]
pub struct RunProfile {
    /// Wall nanoseconds spent priming the world (start-up floods).
    pub prime_nanos: u128,
    /// Wall nanoseconds spent in the main event loop.
    pub run_nanos: u128,
    /// Wall nanoseconds spent finalizing metrics.
    pub finish_nanos: u128,
    /// Total events the engine processed.
    pub events_processed: u64,
    /// Deepest the event queue ever got.
    pub queue_high_water: u64,
    /// Wall nanoseconds of each [`PROFILE_CHUNK_EVENTS`]-event chunk of
    /// the main loop, as a mergeable histogram: the tail (p99/p999)
    /// exposes latency spikes that the aggregate events/sec hides.
    pub chunk_nanos: LogHistogram,
}

impl RunProfile {
    /// Events processed per wall-clock second of the main loop.
    pub fn events_per_sec(&self) -> f64 {
        if self.run_nanos == 0 {
            return 0.0;
        }
        self.events_processed as f64 / (self.run_nanos as f64 / 1e9)
    }
}

/// Run one scenario and measure where the wall time went. The returned
/// [`SimResult`] is identical to [`run_scenario`]'s for the same scenario.
pub fn run_scenario_profiled(scenario: &Scenario) -> (SimResult, RunProfile) {
    run_profiled_inner(scenario, Tracer::disabled())
}

/// [`run_scenario_profiled`] with a tracer attached (the CI overhead gate
/// compares this against the untraced profile). The [`SimResult`] is
/// bit-identical either way — tracing is strictly observational.
pub fn run_scenario_traced_profiled(
    scenario: &Scenario,
    tracer: Tracer,
) -> (SimResult, RunProfile) {
    run_profiled_inner(scenario, tracer)
}

fn run_profiled_inner(scenario: &Scenario, tracer: Tracer) -> (SimResult, RunProfile) {
    let mut world = World::new(scenario);
    world.set_tracer(tracer);
    let mut engine = Engine::new();
    let t0 = std::time::Instant::now();
    world.prime(&mut engine);
    let t1 = std::time::Instant::now();
    // Chunked main loop: each budget-bounded engine slice is timed into
    // the histogram. The engine processes the same events in the same
    // order as a single `run_until`, so results are unchanged.
    let mut chunk_nanos = LogHistogram::new();
    let outcome = loop {
        let c0 = std::time::Instant::now();
        let outcome = engine.run(&mut world, scenario.horizon(), PROFILE_CHUNK_EVENTS);
        chunk_nanos.record(c0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        if !matches!(outcome, RunOutcome::Budget) {
            break outcome;
        }
    };
    debug_assert!(matches!(outcome, RunOutcome::Drained | RunOutcome::Horizon));
    let t2 = std::time::Instant::now();
    let result = world.finish(&engine);
    let t3 = std::time::Instant::now();
    let profile = RunProfile {
        prime_nanos: (t1 - t0).as_nanos(),
        run_nanos: (t2 - t1).as_nanos(),
        finish_nanos: (t3 - t2).as_nanos(),
        events_processed: result.events_processed,
        queue_high_water: result.queue_high_water,
        chunk_nanos,
    };
    (result, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use realtor_core::ProtocolKind;

    fn quick(protocol: ProtocolKind, lambda: f64, seed: u64) -> SimResult {
        run_scenario(&Scenario::paper(protocol, lambda, 300, seed))
    }

    #[test]
    fn light_load_admits_everything() {
        for kind in ProtocolKind::ALL {
            let r = quick(kind, 1.0, 1);
            assert!(r.offered > 200, "{kind}: offered {}", r.offered);
            assert!(
                r.admission_probability() > 0.99,
                "{kind}: admission {} at lambda=1",
                r.admission_probability()
            );
        }
    }

    #[test]
    fn heavy_load_rejects_some() {
        for kind in ProtocolKind::ALL {
            let r = quick(kind, 10.0, 2);
            let p = r.admission_probability();
            assert!(p < 0.95, "{kind}: admission {p} at lambda=10 is too high");
            assert!(p > 0.3, "{kind}: admission {p} at lambda=10 is too low");
        }
    }

    #[test]
    fn identical_seed_identical_result() {
        for kind in [ProtocolKind::Realtor, ProtocolKind::PurePush] {
            let a = quick(kind, 6.0, 7);
            let b = quick(kind, 6.0, 7);
            assert_eq!(a.offered, b.offered);
            assert_eq!(a.admitted(), b.admitted());
            assert_eq!(a.ledger, b.ledger);
            assert_eq!(a.migration_successes, b.migration_successes);
        }
    }

    #[test]
    fn pure_push_cost_is_load_independent() {
        let light = quick(ProtocolKind::PurePush, 1.0, 3);
        let heavy = quick(ProtocolKind::PurePush, 9.0, 3);
        // Periodic dissemination: push cost is the same regardless of load
        // (migration negotiation differs, so compare the push component).
        let rel = (light.ledger.push - heavy.ledger.push).abs() / light.ledger.push;
        assert!(rel < 0.01, "push cost varied with load by {rel}");
        assert!(light.ledger.push > 0.0);
    }

    #[test]
    fn realtor_quiet_when_idle() {
        let r = quick(ProtocolKind::Realtor, 0.5, 4);
        // Load is far below every threshold: no HELP should ever be sent.
        assert_eq!(r.ledger.help_count, 0, "helps: {}", r.ledger.help_count);
        assert_eq!(r.ledger.pledge_count, 0);
        assert_eq!(r.total_messages(), 0.0);
    }

    #[test]
    fn migrations_happen_under_overload() {
        let r = quick(ProtocolKind::Realtor, 8.0, 5);
        assert!(r.migration_successes > 0, "no migrations at lambda=8");
        assert!(r.admitted_migrated == r.migration_successes);
    }

    #[test]
    fn attacks_reduce_admission() {
        use realtor_net::TargetingStrategy;
        use realtor_workload::AttackScenario;
        let base = Scenario::paper(ProtocolKind::Realtor, 4.0, 300, 6);
        let calm = run_scenario(&base);
        let attacked = run_scenario(
            &Scenario::paper(ProtocolKind::Realtor, 4.0, 300, 6).with_attack(
                AttackScenario::strike_and_recover(
                    SimTime::from_secs(100),
                    SimTime::from_secs(200),
                    12,
                ),
                TargetingStrategy::Random,
            ),
        );
        assert!(attacked.lost_to_attacks > 0);
        assert!(attacked.admission_probability() < calm.admission_probability());
    }

    #[test]
    fn windows_partition_offered_tasks() {
        let s = Scenario::paper(ProtocolKind::Realtor, 5.0, 300, 8)
            .with_window(SimDuration::from_secs(50));
        let r = run_scenario(&s);
        let total: u64 = r.windows.iter().map(|w| w.offered).sum();
        assert_eq!(total, r.offered);
        assert!(r.windows.len() >= 5);
    }
}
