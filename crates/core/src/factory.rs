//! Protocol selection and construction.

use crate::baselines::{AdaptivePull, AdaptivePush, PurePull, PurePush};
use crate::config::ProtocolConfig;
use crate::protocol::DiscoveryProtocol;
use crate::realtor::Realtor;
use realtor_net::NodeId;

/// The five protocols compared in the paper's Figures 5–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// `Pull-.9` — pure PULL.
    PurePull,
    /// `Push-1` — pure PUSH with a periodic interval.
    PurePush,
    /// `Push-.9` — adaptive PUSH on threshold crossings.
    AdaptivePush,
    /// `Pull-100` — adaptive PULL with `Upper_limit` 100.
    AdaptivePull,
    /// `REALTOR-100` — the paper's combined protocol.
    Realtor,
}

// Enables ProtocolKind inside `forall` tuple inputs; a protocol choice has
// no simpler form, so it never shrinks.
impl realtor_simcore::check::Shrink for ProtocolKind {}

impl ProtocolKind {
    /// All five kinds in the paper's legend order.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::PurePull,
        ProtocolKind::PurePush,
        ProtocolKind::AdaptivePush,
        ProtocolKind::AdaptivePull,
        ProtocolKind::Realtor,
    ];

    /// The paper's curve label for this protocol.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::PurePull => "Pull-.9",
            ProtocolKind::PurePush => "Push-1",
            ProtocolKind::AdaptivePush => "Push-.9",
            ProtocolKind::AdaptivePull => "Pull-100",
            ProtocolKind::Realtor => "REALTOR-100",
        }
    }

    /// Parse a label or shorthand name (case-insensitive).
    pub fn parse(s: &str) -> Option<ProtocolKind> {
        match s.to_ascii_lowercase().as_str() {
            "pull-.9" | "pure-pull" | "purepull" | "pull" => Some(ProtocolKind::PurePull),
            "push-1" | "pure-push" | "purepush" | "push" => Some(ProtocolKind::PurePush),
            "push-.9" | "adaptive-push" | "adaptivepush" => Some(ProtocolKind::AdaptivePush),
            "pull-100" | "adaptive-pull" | "adaptivepull" => Some(ProtocolKind::AdaptivePull),
            "realtor-100" | "realtor" => Some(ProtocolKind::Realtor),
            _ => None,
        }
    }

    /// Build an instance of this protocol for `node`.
    ///
    /// `peers` is the node's overlay scope and `capacity_secs` each peer's
    /// queue capacity; both are only consumed by the adaptive-push baseline
    /// (its "silence means unchanged" semantics needs an optimistic prior —
    /// see `baselines::adaptive_push`).
    pub fn build(
        self,
        node: NodeId,
        cfg: ProtocolConfig,
        peers: &[NodeId],
        capacity_secs: f64,
    ) -> Box<dyn DiscoveryProtocol> {
        match self {
            ProtocolKind::PurePull => Box::new(PurePull::new(node, cfg)),
            ProtocolKind::PurePush => Box::new(PurePush::new(node, cfg)),
            ProtocolKind::AdaptivePush => Box::new(AdaptivePush::new(
                node,
                cfg,
                peers.to_vec(),
                capacity_secs,
            )),
            ProtocolKind::AdaptivePull => Box::new(AdaptivePull::new(node, cfg)),
            ProtocolKind::Realtor => Box::new(Realtor::new(node, cfg)),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_parse() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(ProtocolKind::parse("realtor"), Some(ProtocolKind::Realtor));
        assert_eq!(ProtocolKind::parse("bogus"), None);
    }

    #[test]
    fn build_produces_named_instances() {
        let peers: Vec<usize> = (0..5).collect();
        for kind in ProtocolKind::ALL {
            let p = kind.build(0, ProtocolConfig::paper(), &peers, 100.0);
            assert_eq!(p.name(), kind.label());
            assert_eq!(p.node(), 0);
        }
    }
}
