//! Inter-community discovery — the paper's stated future work (§7): *"we
//! will extend this work to inter-neighbor-group resource discovery and
//! allocation for very large distributed dynamic real-time systems."*
//!
//! Very large systems cannot flood HELP to every node. Here the overlay is
//! partitioned into **groups**; a flood reaches only the originator's
//! group(s). Selected **gateway** nodes belong to two or more groups and
//! bridge them: when a gateway receives a sufficiently urgent HELP it
//! re-floods it into its other groups (decrementing the message's
//! `relay_ttl`), and the remote members pledge directly — unicast — to the
//! original organizer. Everything stays soft-state: a gateway rate-limits
//! relays per organizer, and no relay state survives a reset.

use crate::config::ProtocolConfig;
use crate::message::{Help, Message};
use crate::protocol::{Actions, DiscoveryProtocol, Introspection, LocalView, TimerToken};
use crate::realtor::Realtor;
use realtor_net::NodeId;
use realtor_simcore::{SimDuration, SimTime};

/// Identifier of a node group.
pub type GroupId = usize;

/// Static partition of the overlay into groups plus gateway assignments.
#[derive(Debug, Clone)]
pub struct GroupMap {
    /// Primary group of every node.
    home: Vec<GroupId>,
    /// Extra groups for gateway nodes: `(node, group)` pairs.
    gateways: Vec<(NodeId, GroupId)>,
    group_count: usize,
}

impl GroupMap {
    /// Build from explicit home assignments (`home[node] = group`) and
    /// gateway extras.
    pub fn new(home: Vec<GroupId>, gateways: Vec<(NodeId, GroupId)>) -> Self {
        let group_count = home.iter().copied().max().map_or(0, |g| g + 1);
        for &(n, g) in &gateways {
            assert!(n < home.len(), "gateway node {n} out of range");
            assert!(g < group_count, "gateway group {g} out of range");
            assert_ne!(home[n], g, "gateway extra group equals home group");
        }
        GroupMap {
            home,
            gateways,
            group_count,
        }
    }

    /// Tile a `width × height` mesh into `tile × tile` groups, designating
    /// as gateways the nodes adjacent to each tile boundary (one per
    /// boundary row/column crossing, on the lower-id side).
    pub fn mesh_tiles(width: usize, height: usize, tile: usize) -> Self {
        assert!(tile > 0);
        let tiles_x = width.div_ceil(tile);
        let group_of = |x: usize, y: usize| (y / tile) * tiles_x + (x / tile);
        let mut home = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                home.push(group_of(x, y));
            }
        }
        let mut gateways = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let node = y * width + x;
                let g = group_of(x, y);
                // Right neighbor in a different tile: this node bridges.
                if x + 1 < width && group_of(x + 1, y) != g {
                    gateways.push((node, group_of(x + 1, y)));
                }
                if y + 1 < height && group_of(x, y + 1) != g {
                    gateways.push((node, group_of(x, y + 1)));
                }
            }
        }
        GroupMap::new(home, gateways)
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.home.len()
    }

    /// All groups `node` belongs to (home first).
    pub fn groups_of(&self, node: NodeId) -> Vec<GroupId> {
        let mut gs = vec![self.home[node]];
        gs.extend(
            self.gateways
                .iter()
                .filter(|&&(n, _)| n == node)
                .map(|&(_, g)| g),
        );
        gs
    }

    /// Is `node` a gateway (member of more than one group)?
    pub fn is_gateway(&self, node: NodeId) -> bool {
        self.gateways.iter().any(|&(n, _)| n == node)
    }

    /// Every node whose group set intersects `node`'s group set — the flood
    /// scope of `node` (excludes `node` itself).
    pub fn scope_of(&self, node: NodeId) -> Vec<NodeId> {
        let mine = self.groups_of(node);
        (0..self.home.len())
            .filter(|&other| {
                other != node && self.groups_of(other).iter().any(|g| mine.contains(g))
            })
            .collect()
    }

    /// Members of one group (home or gateway membership).
    pub fn members_of(&self, group: GroupId) -> Vec<NodeId> {
        (0..self.home.len())
            .filter(|&n| self.groups_of(n).contains(&group))
            .collect()
    }

    /// Designated relays: exactly one gateway (the lowest node id) per
    /// ordered (home group, foreign group) pair. Letting *every* boundary
    /// node relay amplifies each HELP by the boundary length; a single
    /// designated relay per tile pair keeps the relay fan-out equal to the
    /// number of neighboring groups.
    pub fn designated_relays(&self) -> Vec<NodeId> {
        let mut best: std::collections::BTreeMap<(GroupId, GroupId), NodeId> = Default::default();
        for &(n, g) in &self.gateways {
            let key = (self.home[n], g);
            best.entry(key)
                .and_modify(|cur| {
                    if n < *cur {
                        *cur = n;
                    }
                })
                .or_insert(n);
        }
        let mut v: Vec<NodeId> = best.into_values().collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// REALTOR with inter-community gateway relaying.
///
/// Wraps a flat [`Realtor`] instance; all community behaviour is delegated,
/// and the wrapper adds (a) a nonzero `relay_ttl` on originated HELPs and
/// (b) gateway re-flooding of urgent foreign HELPs.
#[derive(Debug)]
pub struct InterCommunityRealtor {
    inner: Realtor,
    is_gateway: bool,
    relay_ttl: u8,
    /// Relay only HELPs at least this urgent.
    relay_urgency: f64,
    /// Minimum spacing between relays for the same organizer.
    relay_spacing: SimDuration,
    recently_relayed: std::collections::BTreeMap<NodeId, SimTime>,
}

impl InterCommunityRealtor {
    /// Create an instance for `me`.
    ///
    /// `relay_ttl` is the relay budget stamped on originated HELPs (1 lets
    /// direct neighbors' gateways relay once); `relay_urgency` gates which
    /// foreign HELPs a gateway re-floods.
    pub fn new(
        me: NodeId,
        cfg: ProtocolConfig,
        is_gateway: bool,
        relay_ttl: u8,
        relay_urgency: f64,
    ) -> Self {
        InterCommunityRealtor {
            inner: Realtor::new(me, cfg),
            is_gateway,
            relay_ttl,
            relay_urgency,
            relay_spacing: SimDuration::from_secs(5),
            recently_relayed: Default::default(),
        }
    }

    /// The wrapped flat REALTOR (diagnostics).
    pub fn inner(&self) -> &Realtor {
        &self.inner
    }
}

impl DiscoveryProtocol for InterCommunityRealtor {
    fn name(&self) -> &'static str {
        "REALTOR-IC"
    }

    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn on_start(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        self.inner.on_start(now, local, out);
    }

    fn on_task_arrival(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        let mut tmp = Actions::new();
        self.inner.on_task_arrival(now, local, &mut tmp);
        // Stamp our relay budget onto originated HELPs.
        for action in tmp.drain() {
            match action {
                crate::protocol::Action::Flood(Message::Help(mut h)) => {
                    h.relay_ttl = self.relay_ttl;
                    out.flood(Message::Help(h));
                }
                crate::protocol::Action::Flood(m) => out.flood(m),
                crate::protocol::Action::Unicast(to, m) => out.unicast(to, m),
                crate::protocol::Action::SetTimer(t, d) => out.set_timer(t, d),
                crate::protocol::Action::DeclareDead(p) => out.declare_dead(p),
            }
        }
    }

    fn on_usage_change(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        self.inner.on_usage_change(now, local, out);
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: &Message,
        local: LocalView,
        out: &mut Actions,
    ) {
        self.inner.on_message(now, from, msg, local, out);
        // Gateway relaying of urgent foreign HELPs.
        if let Message::Help(h) = msg {
            if self.is_gateway
                && h.organizer != self.node()
                && h.relay_ttl > 0
                && h.urgency >= self.relay_urgency
            {
                let due = self
                    .recently_relayed
                    .get(&h.organizer)
                    .is_none_or(|&t| now.since(t) >= self.relay_spacing);
                if due {
                    self.recently_relayed.insert(h.organizer, now);
                    out.flood(Message::Help(Help {
                        relay_ttl: h.relay_ttl - 1,
                        ..*h
                    }));
                }
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, local: LocalView, out: &mut Actions) {
        self.inner.on_timer(now, token, local, out);
    }

    fn pick_candidate(&mut self, now: SimTime, need_secs: f64) -> Option<NodeId> {
        self.inner.pick_candidate(now, need_secs)
    }

    fn on_migration_result(&mut self, now: SimTime, dest: NodeId, admitted: bool) {
        self.inner.on_migration_result(now, dest, admitted);
    }

    fn on_reset(&mut self, now: SimTime) {
        self.inner.on_reset(now);
        self.recently_relayed.clear();
    }

    fn introspect(&self, now: SimTime) -> Introspection {
        self.inner.introspect(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Action;

    fn view(headroom: f64) -> LocalView {
        LocalView::new(headroom, 100.0)
    }

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn help(organizer: NodeId, urgency: f64, relay_ttl: u8) -> Message {
        Message::Help(Help {
            organizer,
            member_count: 0,
            urgency,
            relay_ttl,
        })
    }

    #[test]
    fn mesh_tiles_partition_everything() {
        let gm = GroupMap::mesh_tiles(10, 10, 5);
        assert_eq!(gm.group_count(), 4);
        assert_eq!(gm.node_count(), 100);
        let sizes: usize = (0..4).map(|g| gm.members_of(g).len()).sum();
        assert!(sizes >= 100, "gateways belong to multiple groups");
        // corner node: exactly one group, interior boundary node: gateway
        assert_eq!(gm.groups_of(0), vec![0]);
        assert!(gm.is_gateway(4), "node 4 borders tile 1 on its right");
        assert!(gm.groups_of(4).contains(&1));
    }

    #[test]
    fn scope_excludes_self_and_foreign_groups() {
        let gm = GroupMap::mesh_tiles(10, 1, 5);
        // Two groups of 5; node 4 is the single gateway.
        let scope0 = gm.scope_of(0);
        assert!(scope0.contains(&4));
        assert!(!scope0.contains(&7), "node 7 is in the other group");
        let scope4 = gm.scope_of(4);
        assert_eq!(scope4.len(), 9, "gateway sees both groups");
    }

    #[test]
    fn originated_helps_carry_relay_budget() {
        let mut p = InterCommunityRealtor::new(0, ProtocolConfig::paper(), false, 2, 0.0);
        let mut out = Actions::new();
        p.on_task_arrival(at(0.0), view(5.0), &mut out);
        let ttl = out.as_slice().iter().find_map(|a| match a {
            Action::Flood(Message::Help(h)) => Some(h.relay_ttl),
            _ => None,
        });
        assert_eq!(ttl, Some(2));
    }

    #[test]
    fn gateway_relays_urgent_help_once() {
        let mut gw = InterCommunityRealtor::new(4, ProtocolConfig::paper(), true, 0, 0.5);
        let mut out = Actions::new();
        gw.on_message(at(0.0), 0, &help(0, 0.9, 1), view(50.0), &mut out);
        let relayed: Vec<_> = out
            .as_slice()
            .iter()
            .filter_map(|a| match a {
                Action::Flood(Message::Help(h)) => Some(*h),
                _ => None,
            })
            .collect();
        assert_eq!(relayed.len(), 1);
        assert_eq!(relayed[0].organizer, 0, "organizer preserved");
        assert_eq!(relayed[0].relay_ttl, 0, "budget decremented");
        // Immediate second HELP from the same organizer: rate-limited.
        let mut out = Actions::new();
        gw.on_message(at(0.5), 0, &help(0, 0.9, 1), view(50.0), &mut out);
        assert!(
            !out.as_slice()
                .iter()
                .any(|a| matches!(a, Action::Flood(_))),
            "relay within spacing window must be suppressed"
        );
    }

    #[test]
    fn non_gateway_never_relays() {
        let mut p = InterCommunityRealtor::new(1, ProtocolConfig::paper(), false, 0, 0.0);
        let mut out = Actions::new();
        p.on_message(at(0.0), 0, &help(0, 1.0, 3), view(50.0), &mut out);
        assert!(!out
            .as_slice()
            .iter()
            .any(|a| matches!(a, Action::Flood(_))));
    }

    #[test]
    fn zero_ttl_help_is_not_relayed() {
        let mut gw = InterCommunityRealtor::new(4, ProtocolConfig::paper(), true, 0, 0.0);
        let mut out = Actions::new();
        gw.on_message(at(0.0), 0, &help(0, 1.0, 0), view(50.0), &mut out);
        assert!(!out
            .as_slice()
            .iter()
            .any(|a| matches!(a, Action::Flood(_))));
    }

    #[test]
    fn low_urgency_help_is_not_relayed() {
        let mut gw = InterCommunityRealtor::new(4, ProtocolConfig::paper(), true, 0, 0.8);
        let mut out = Actions::new();
        gw.on_message(at(0.0), 0, &help(0, 0.2, 3), view(50.0), &mut out);
        assert!(!out
            .as_slice()
            .iter()
            .any(|a| matches!(a, Action::Flood(_))));
    }
}
