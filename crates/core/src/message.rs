//! Protocol messages.
//!
//! Section 4 of the paper defines exactly two community-protocol message
//! types and gives their full field lists:
//!
//! > `HELP`: Hostid (community organizer identifier), Type(help), The number
//! > of current members (number of members), The urgency of the resource
//! > request (degree of demand).
//! >
//! > `PLEDGE`: Hostid (identifier of the pledger), Type(pledge), Resource
//! > availability (degree), Number of communities of which it is a member
//! > (number of communities), Probabilities of resource grant when requested
//! > (distribution).
//!
//! The push-based baselines additionally disseminate an unsolicited
//! availability advertisement, which we model as [`Advert`].

use realtor_net::NodeId;
use realtor_simcore::SimTime;

/// A community invitation / refresh, flooded by an organizer seeking
/// resources (Algorithm H).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Help {
    /// The community organizer (originator of the flood).
    pub organizer: NodeId,
    /// Size of the organizer's community at send time.
    pub member_count: u32,
    /// Degree of demand: how far local usage is above the HELP threshold,
    /// in `[0, 1]` (0 = exactly at threshold, 1 = completely full).
    pub urgency: f64,
    /// Remaining inter-community relay budget (the §7 future-work
    /// extension). `0` — the paper's flat protocol — means gateways never
    /// re-flood this HELP into neighboring groups.
    pub relay_ttl: u8,
}

/// A membership pledge, unicast to a community organizer (Algorithm P).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pledge {
    /// The pledging host.
    pub pledger: NodeId,
    /// Resource availability degree: spare queue capacity in seconds of
    /// work the pledger can currently absorb.
    pub headroom_secs: f64,
    /// Number of communities the pledger currently belongs to.
    pub community_count: u32,
    /// Probability that a resource request would be granted if issued now
    /// (the paper's "probabilities of resource grant when requested").
    pub grant_probability: f64,
    /// When the pledger sent this report. Receivers use it as a freshness
    /// watermark so duplicated or reordered deliveries cannot roll an
    /// availability entry backwards in time.
    pub sent_at: SimTime,
}

/// An unsolicited availability advertisement (pure/adaptive PUSH baselines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Advert {
    /// The advertising host.
    pub advertiser: NodeId,
    /// Spare queue capacity in seconds of work.
    pub headroom_secs: f64,
    /// When the advertiser sent this report (freshness watermark, same
    /// semantics as [`Pledge::sent_at`]).
    pub sent_at: SimTime,
}

/// Any discovery-protocol message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// Community invitation/refresh flood.
    Help(Help),
    /// Membership pledge unicast.
    Pledge(Pledge),
    /// Push-style availability advertisement flood.
    Advert(Advert),
}

impl Message {
    /// Short wire-type name (used in traces and ledgers).
    pub fn type_name(&self) -> &'static str {
        match self {
            Message::Help(_) => "HELP",
            Message::Pledge(_) => "PLEDGE",
            Message::Advert(_) => "ADVERT",
        }
    }

    /// The node the message claims to originate from.
    pub fn origin(&self) -> NodeId {
        match self {
            Message::Help(h) => h.organizer,
            Message::Pledge(p) => p.pledger,
            Message::Advert(a) => a.advertiser,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_and_origins() {
        let h = Message::Help(Help {
            organizer: 3,
            member_count: 7,
            urgency: 0.5,
            relay_ttl: 0,
        });
        let p = Message::Pledge(Pledge {
            pledger: 4,
            headroom_secs: 60.0,
            community_count: 2,
            grant_probability: 0.6,
            sent_at: SimTime::ZERO,
        });
        let a = Message::Advert(Advert {
            advertiser: 5,
            headroom_secs: 10.0,
            sent_at: SimTime::ZERO,
        });
        assert_eq!(h.type_name(), "HELP");
        assert_eq!(p.type_name(), "PLEDGE");
        assert_eq!(a.type_name(), "ADVERT");
        assert_eq!(h.origin(), 3);
        assert_eq!(p.origin(), 4);
        assert_eq!(a.origin(), 5);
    }
}
