//! Algorithm P — the pledge policy (paper Figure 3) — and the availability
//! store an organizer builds out of the reports it receives.
//!
//! ```text
//! Whenever a HELP message arrives do {
//!   If the host has used its resource less than a threshold level
//!     Reply PLEDGE;
//! }
//! Whenever the resource availability changes across the threshold level do {
//!   Reply PLEDGE;
//! }
//! ```

use crate::config::{CandidatePolicy, ProtocolConfig};
use realtor_net::{IdMap, NodeId};
use realtor_simcore::{SimDuration, SimTime};

/// Which way usage moved across the pledge threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Crossing {
    /// Usage rose from below the threshold to at-or-above it (host became
    /// busy — its earlier pledges should be withdrawn).
    BecameBusy,
    /// Usage fell from at-or-above the threshold to below it (host became
    /// available again).
    BecameFree,
}

/// The Algorithm P state machine for one host.
#[derive(Debug, Clone)]
pub struct PledgePolicy {
    threshold: f64,
    above: bool,
}

impl PledgePolicy {
    /// Start with the given initial occupancy.
    pub fn new(cfg: &ProtocolConfig, initial_frac: f64) -> Self {
        PledgePolicy {
            threshold: cfg.pledge_threshold,
            above: initial_frac >= cfg.pledge_threshold,
        }
    }

    /// The occupancy threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Should this host answer an incoming HELP with a PLEDGE?
    /// ("If the host has used its resource less than a threshold level".)
    pub fn should_answer_help(&self, queue_frac: f64) -> bool {
        queue_frac < self.threshold
    }

    /// Feed a new occupancy; returns the crossing, if usage moved across the
    /// threshold since the previous observation. Exactly-once per crossing:
    /// repeated observations on the same side return `None`.
    pub fn observe(&mut self, queue_frac: f64) -> Option<Crossing> {
        let above = queue_frac >= self.threshold;
        if above == self.above {
            return None;
        }
        self.above = above;
        Some(if above {
            Crossing::BecameBusy
        } else {
            Crossing::BecameFree
        })
    }

    /// Whether the host currently sits at or above the threshold.
    pub fn is_above(&self) -> bool {
        self.above
    }
}

/// One availability report as remembered by an organizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Spare queue capacity in seconds of work, as last reported.
    pub headroom_secs: f64,
    /// When the report was received.
    pub at: SimTime,
    /// Sender-side timestamp of the newest *remote* report folded into this
    /// entry. Out-of-order or duplicated deliveries with an older `sent_at`
    /// are rejected by [`AvailabilityStore::record_report`]; local updates
    /// via [`AvailabilityStore::record`] leave this watermark untouched.
    pub sent_at: SimTime,
}

/// The availability store: the organizer's "PLEDGE list" (for pull-based
/// protocols) or advertisement cache (for push-based ones).
#[derive(Debug, Clone, Default)]
pub struct AvailabilityStore {
    /// Reports indexed by node id: one upsert per received PLEDGE/ADVERT.
    /// Id-indexed iteration keeps candidate scans id-ordered (the
    /// tie-break rules in [`AvailabilityStore::pick`] assume a total,
    /// order-independent comparison, so this is belt and braces).
    reports: IdMap<Report>,
}

impl AvailabilityStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or overwrite) a *local* estimate for `node` — e.g. the
    /// organizer adjusting a destination's headroom after a migration. The
    /// entry's remote watermark is preserved so an in-flight older report
    /// still loses to newer remote information, and vice versa.
    pub fn record(&mut self, node: NodeId, headroom_secs: f64, at: SimTime) {
        let sent_at = self
            .reports
            .get(node)
            .map(|r| r.sent_at)
            .unwrap_or(SimTime::ZERO);
        self.reports.insert(
            node,
            Report {
                headroom_secs,
                at,
                sent_at,
            },
        );
    }

    /// Record a *remote* report (a PLEDGE or ADVERT) sent at `sent_at` and
    /// received at `received_at`.
    ///
    /// Idempotent under the unreliable channel: a delivery whose `sent_at`
    /// is older than the entry's watermark — a duplicate, or a report
    /// overtaken in flight by a newer one — is discarded. Returns whether
    /// the report was folded in (i.e. it carried fresh information).
    pub fn record_report(
        &mut self,
        node: NodeId,
        headroom_secs: f64,
        received_at: SimTime,
        sent_at: SimTime,
    ) -> bool {
        // Runs once per received pledge: a single indexed upsert.
        let mut slot = self.reports.slot_mut(node);
        if let Some(existing) = slot.get_mut() {
            if sent_at < existing.sent_at {
                return false;
            }
        }
        slot.insert(Report {
            headroom_secs,
            at: received_at,
            sent_at,
        });
        true
    }

    /// Remove a node's report entirely (e.g. it was observed dead).
    pub fn forget(&mut self, node: NodeId) {
        self.reports.remove(node);
    }

    /// Latest report for `node`.
    pub fn get(&self, node: NodeId) -> Option<Report> {
        self.reports.get(node).copied()
    }

    /// Number of stored reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when no reports are stored.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Does the store currently know a node that could absorb `need_secs`?
    /// Used for the paper's "if a node is found for migration" reward test.
    pub fn has_candidate(
        &self,
        now: SimTime,
        need_secs: f64,
        ttl: Option<SimDuration>,
        exclude: NodeId,
    ) -> bool {
        self.iter_fresh(now, ttl)
            .any(|(n, r)| n != exclude && r.headroom_secs >= need_secs)
    }

    /// Pick the best migration destination under `policy`.
    ///
    /// Only nodes whose report claims enough headroom for `need_secs`
    /// qualify; if none qualifies the caller gets `None` and — per the
    /// paper's one-shot migration semantics — rejects the task.
    pub fn pick(
        &self,
        now: SimTime,
        need_secs: f64,
        ttl: Option<SimDuration>,
        exclude: NodeId,
        policy: CandidatePolicy,
    ) -> Option<NodeId> {
        let eligible = self
            .iter_fresh(now, ttl)
            .filter(|&(n, r)| n != exclude && r.headroom_secs >= need_secs);
        match policy {
            CandidatePolicy::MostHeadroom => eligible
                .max_by(|a, b| {
                    a.1.headroom_secs
                        .partial_cmp(&b.1.headroom_secs)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.0.cmp(&a.0)) // prefer the LOWER id on ties
                })
                .map(|(n, _)| n),
            CandidatePolicy::Freshest => eligible
                .max_by(|a, b| {
                    a.1.at.cmp(&b.1.at).then_with(|| {
                        a.1.headroom_secs
                            .partial_cmp(&b.1.headroom_secs)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(b.0.cmp(&a.0))
                    })
                })
                .map(|(n, _)| n),
            CandidatePolicy::FirstFit => eligible.map(|(n, _)| n).min(),
        }
    }

    /// Iterate reports that are still fresh under `ttl`.
    fn iter_fresh(
        &self,
        now: SimTime,
        ttl: Option<SimDuration>,
    ) -> impl Iterator<Item = (NodeId, Report)> + '_ {
        self.reports.iter().filter_map(move |(n, &r)| match ttl {
            Some(ttl) if now.since(r.at) > ttl => None,
            _ => Some((n, r)),
        })
    }

    /// Drop reports older than `ttl` (housekeeping; optional since lookups
    /// already filter by freshness).
    pub fn evict_stale(&mut self, now: SimTime, ttl: SimDuration) {
        self.reports.retain(|_, r| now.since(r.at) <= ttl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::paper()
    }

    #[test]
    fn answers_help_only_below_threshold() {
        let p = PledgePolicy::new(&cfg(), 0.0);
        assert!(p.should_answer_help(0.5));
        assert!(p.should_answer_help(0.8999));
        assert!(!p.should_answer_help(0.9));
        assert!(!p.should_answer_help(1.0));
    }

    #[test]
    fn crossing_fires_exactly_once_per_transition() {
        let mut p = PledgePolicy::new(&cfg(), 0.0);
        assert_eq!(p.observe(0.5), None);
        assert_eq!(p.observe(0.95), Some(Crossing::BecameBusy));
        assert_eq!(p.observe(0.99), None); // still above
        assert_eq!(p.observe(0.3), Some(Crossing::BecameFree));
        assert_eq!(p.observe(0.2), None); // still below
        assert!(!p.is_above());
    }

    #[test]
    fn initial_state_respects_initial_occupancy() {
        let mut p = PledgePolicy::new(&cfg(), 0.95);
        assert!(p.is_above());
        assert_eq!(p.observe(0.95), None); // no spurious crossing at start
        assert_eq!(p.observe(0.1), Some(Crossing::BecameFree));
    }

    #[test]
    fn store_records_and_overwrites() {
        let mut s = AvailabilityStore::new();
        s.record(3, 10.0, SimTime::from_secs(1));
        s.record(3, 20.0, SimTime::from_secs(2));
        assert_eq!(s.len(), 1);
        let r = s.get(3).unwrap();
        assert_eq!(r.headroom_secs, 20.0);
        assert_eq!(r.at, SimTime::from_secs(2));
    }

    #[test]
    fn pick_most_headroom_with_tiebreak() {
        let mut s = AvailabilityStore::new();
        let t = SimTime::from_secs(1);
        s.record(5, 50.0, t);
        s.record(2, 50.0, t);
        s.record(7, 30.0, t);
        let best = s.pick(t, 10.0, None, usize::MAX, CandidatePolicy::MostHeadroom);
        assert_eq!(best, Some(2), "lowest id wins headroom ties");
    }

    #[test]
    fn pick_excludes_self_and_insufficient() {
        let mut s = AvailabilityStore::new();
        let t = SimTime::from_secs(1);
        s.record(1, 100.0, t);
        s.record(2, 5.0, t);
        assert_eq!(
            s.pick(t, 10.0, None, 1, CandidatePolicy::MostHeadroom),
            None,
            "only node 1 fits but it is excluded"
        );
        assert!(s.has_candidate(t, 10.0, None, 99));
        assert!(!s.has_candidate(t, 10.0, None, 1));
    }

    #[test]
    fn ttl_filters_stale_reports() {
        let mut s = AvailabilityStore::new();
        s.record(1, 100.0, SimTime::from_secs(0));
        s.record(2, 50.0, SimTime::from_secs(90));
        let now = SimTime::from_secs(100);
        let ttl = Some(SimDuration::from_secs(20));
        assert_eq!(
            s.pick(now, 10.0, ttl, usize::MAX, CandidatePolicy::MostHeadroom),
            Some(2),
            "node 1's report is 100 s old and must be ignored"
        );
        // Without a TTL the bigger (stale) report wins.
        assert_eq!(
            s.pick(now, 10.0, None, usize::MAX, CandidatePolicy::MostHeadroom),
            Some(1)
        );
    }

    #[test]
    fn pick_freshest() {
        let mut s = AvailabilityStore::new();
        s.record(1, 100.0, SimTime::from_secs(1));
        s.record(2, 10.0, SimTime::from_secs(5));
        assert_eq!(
            s.pick(
                SimTime::from_secs(6),
                5.0,
                None,
                usize::MAX,
                CandidatePolicy::Freshest
            ),
            Some(2)
        );
    }

    #[test]
    fn pick_first_fit() {
        let mut s = AvailabilityStore::new();
        let t = SimTime::from_secs(1);
        s.record(9, 100.0, t);
        s.record(4, 11.0, t);
        s.record(6, 50.0, t);
        assert_eq!(
            s.pick(t, 10.0, None, usize::MAX, CandidatePolicy::FirstFit),
            Some(4)
        );
    }

    #[test]
    fn evict_stale_removes_entries() {
        let mut s = AvailabilityStore::new();
        s.record(1, 1.0, SimTime::from_secs(0));
        s.record(2, 1.0, SimTime::from_secs(50));
        s.evict_stale(SimTime::from_secs(60), SimDuration::from_secs(30));
        assert_eq!(s.len(), 1);
        assert!(s.get(1).is_none());
        assert!(s.get(2).is_some());
    }

    #[test]
    fn forget_removes_node() {
        let mut s = AvailabilityStore::new();
        s.record(1, 1.0, SimTime::ZERO);
        s.forget(1);
        assert!(s.is_empty());
    }

    #[test]
    fn stale_remote_report_is_discarded() {
        let mut s = AvailabilityStore::new();
        // Report sent at t=5 arrives at t=6.
        assert!(s.record_report(1, 50.0, SimTime::from_secs(6), SimTime::from_secs(5)));
        // An older report (sent t=2) overtaken in flight arrives later: rejected.
        assert!(!s.record_report(1, 99.0, SimTime::from_secs(7), SimTime::from_secs(2)));
        assert_eq!(s.get(1).unwrap().headroom_secs, 50.0);
        // A duplicate of the t=5 report is idempotent on content.
        assert!(s.record_report(1, 50.0, SimTime::from_secs(8), SimTime::from_secs(5)));
        assert_eq!(s.get(1).unwrap().headroom_secs, 50.0);
        // A genuinely newer report wins.
        assert!(s.record_report(1, 10.0, SimTime::from_secs(9), SimTime::from_secs(9)));
        assert_eq!(s.get(1).unwrap().headroom_secs, 10.0);
    }

    #[test]
    fn local_record_preserves_remote_watermark() {
        let mut s = AvailabilityStore::new();
        assert!(s.record_report(1, 50.0, SimTime::from_secs(6), SimTime::from_secs(5)));
        // Local adjustment (e.g. after migrating work there) at t=10.
        s.record(1, 20.0, SimTime::from_secs(10));
        assert_eq!(s.get(1).unwrap().headroom_secs, 20.0);
        assert_eq!(s.get(1).unwrap().sent_at, SimTime::from_secs(5));
        // A report sent at t=7 (before the local update arrived remotely,
        // after the last remote report) still supersedes the local guess.
        assert!(s.record_report(1, 44.0, SimTime::from_secs(11), SimTime::from_secs(7)));
        assert_eq!(s.get(1).unwrap().headroom_secs, 44.0);
    }

    #[test]
    fn local_record_on_absent_entry_has_zero_watermark() {
        let mut s = AvailabilityStore::new();
        s.record(1, 20.0, SimTime::from_secs(10));
        // Any remote report supersedes a purely local entry.
        assert!(s.record_report(1, 44.0, SimTime::from_secs(11), SimTime::from_secs(1)));
        assert_eq!(s.get(1).unwrap().headroom_secs, 44.0);
    }
}
