//! Timeout-based failure detection over existing protocol traffic.
//!
//! The paper's survivability story assumes nodes *notice* that a peer died:
//! an organizer whose HELP refreshes stop arriving will eventually be
//! abandoned by its members, and an organizer stops counting on a member
//! whose PLEDGE updates go silent. Soft-state TTLs give that behaviour
//! passively, but passively means *slowly* — and nothing in the protocol
//! ever concludes "that node is dead" so nothing can trigger recovery.
//!
//! [`FailureDetector`] closes that gap without any extra wire traffic: every
//! received message doubles as a heartbeat. A peer that has been heard from
//! at least once is *watched*; silence longer than
//! [`FailureDetectorConfig::suspect_after`] moves it to **suspect**, and a
//! further [`FailureDetectorConfig::confirm_after`] of silence **confirms**
//! the failure. Confirmation is reported exactly once per outage to the
//! owning protocol, which tears down the peer's soft state (explicit
//! community [`leave`](crate::community::MembershipTable::leave), candidate
//! eviction) and notifies the environment. Any later message from the peer
//! revives it — a *false suspicion* the environment can meter but that the
//! detector survives, exactly like the eventually-perfect detectors of the
//! distributed-agreement literature.
//!
//! The detector is a pure state machine driven by `record_heard` and
//! periodic `sweep` calls; it draws no randomness and iterates peers in id
//! order, so runs embedding it stay bit-for-bit deterministic.

use realtor_net::{IdMap, NodeId};
use realtor_simcore::{SimDuration, SimTime};

/// Tuning knobs for the timeout-based failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureDetectorConfig {
    /// Silence longer than this moves a watched peer to *suspect*. Should be
    /// a small multiple of the HELP refresh / membership TTL scale so normal
    /// protocol quiescence is not instantly suspicious.
    pub suspect_after: SimDuration,
    /// A suspect that stays silent this much longer is *confirmed* dead.
    pub confirm_after: SimDuration,
    /// How often the owning protocol sweeps the watch list (timer period).
    pub sweep_interval: SimDuration,
}

impl Default for FailureDetectorConfig {
    /// Defaults sized against the paper's 10-second membership TTL: suspect
    /// after two missed refresh lifetimes, confirm one lifetime later.
    fn default() -> Self {
        FailureDetectorConfig {
            suspect_after: SimDuration::from_secs(20),
            confirm_after: SimDuration::from_secs(10),
            sweep_interval: SimDuration::from_secs(5),
        }
    }
}

impl FailureDetectorConfig {
    /// Validate cross-field invariants.
    pub fn validate(&self) {
        assert!(
            !self.suspect_after.is_zero(),
            "suspect_after must be positive"
        );
        assert!(
            !self.confirm_after.is_zero(),
            "confirm_after must be positive"
        );
        assert!(
            !self.sweep_interval.is_zero(),
            "sweep_interval must be positive"
        );
    }
}

/// Liveness verdict for one watched peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Heard from recently.
    Alive,
    /// Silent past `suspect_after`; not yet given up on.
    Suspect {
        /// When the suspicion started (the sweep that noticed the silence).
        since: SimTime,
    },
    /// Silent past `suspect_after + confirm_after`: declared dead. Stays
    /// confirmed (no re-reporting) until the peer is heard from again.
    Confirmed,
}

#[derive(Debug, Clone, Copy)]
struct PeerEntry {
    last_heard: SimTime,
    state: PeerState,
}

/// State transitions observed by one detector sweep, in id order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Peers that moved Alive → Suspect during this sweep.
    pub newly_suspected: Vec<NodeId>,
    /// Peers whose failure this sweep confirmed (reported exactly once per
    /// outage).
    pub confirmed: Vec<NodeId>,
}

/// The per-node failure detector (one instance per protocol instance).
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: FailureDetectorConfig,
    /// Watched peers, indexed by node id. Id-indexed storage keeps the
    /// per-message [`FailureDetector::record_heard`] at O(1) and every
    /// sweep in id order (the verdict-ordering contract).
    peers: IdMap<PeerEntry>,
}

impl FailureDetector {
    /// An empty detector.
    pub fn new(cfg: FailureDetectorConfig) -> Self {
        cfg.validate();
        FailureDetector {
            cfg,
            peers: IdMap::new(),
        }
    }

    /// The configuration this detector runs with.
    pub fn config(&self) -> &FailureDetectorConfig {
        &self.cfg
    }

    /// A message from `peer` arrived at `now`: the peer is alive. Returns
    /// `true` when the peer was previously **confirmed** dead — i.e. the
    /// confirmation was a false suspicion (or the peer was restored) and the
    /// owner may want to re-establish soft state.
    pub fn record_heard(&mut self, peer: NodeId, now: SimTime) -> bool {
        // Runs once per received message: a single indexed upsert.
        let mut slot = self.peers.slot_mut(peer);
        match slot.get_mut() {
            Some(e) => {
                let was_confirmed = e.state == PeerState::Confirmed;
                e.last_heard = now;
                e.state = PeerState::Alive;
                was_confirmed
            }
            None => {
                slot.insert(PeerEntry {
                    last_heard: now,
                    state: PeerState::Alive,
                });
                false
            }
        }
    }

    /// Advance every watched peer's verdict to `now`. Returns the peers
    /// whose failure was confirmed **by this sweep**, in id order; each
    /// outage is reported exactly once.
    pub fn sweep(&mut self, now: SimTime) -> Vec<NodeId> {
        self.sweep_report(now).confirmed
    }

    /// Like [`FailureDetector::sweep`], but also reports the Alive → Suspect
    /// transitions this sweep caused (for tracing/diagnostics; the verdicts
    /// themselves are identical).
    pub fn sweep_report(&mut self, now: SimTime) -> SweepReport {
        let mut report = SweepReport::default();
        for (peer, entry) in self.peers.iter_mut() {
            let silence = now.since(entry.last_heard);
            match entry.state {
                PeerState::Alive => {
                    if silence > self.cfg.suspect_after {
                        entry.state = PeerState::Suspect { since: now };
                        report.newly_suspected.push(peer);
                    }
                }
                PeerState::Suspect { since } => {
                    if now.since(since) >= self.cfg.confirm_after {
                        entry.state = PeerState::Confirmed;
                        report.confirmed.push(peer);
                    }
                }
                PeerState::Confirmed => {}
            }
        }
        report
    }

    /// Current verdict for `peer` (`None` if never heard from).
    pub fn state(&self, peer: NodeId) -> Option<PeerState> {
        self.peers.get(peer).map(|e| e.state)
    }

    /// Is `peer` currently confirmed dead?
    pub fn is_confirmed(&self, peer: NodeId) -> bool {
        self.state(peer) == Some(PeerState::Confirmed)
    }

    /// Peers currently under suspicion (id order).
    pub fn suspects(&self) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|(_, e)| matches!(e.state, PeerState::Suspect { .. }))
            .map(|(p, _)| p)
            .collect()
    }

    /// Number of watched peers.
    pub fn watched(&self) -> usize {
        self.peers.len()
    }

    /// Stop watching `peer` entirely (e.g. it left the system for good).
    pub fn forget(&mut self, peer: NodeId) {
        self.peers.remove(peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn cfg() -> FailureDetectorConfig {
        FailureDetectorConfig {
            suspect_after: SimDuration::from_secs(10),
            confirm_after: SimDuration::from_secs(5),
            sweep_interval: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn silence_escalates_suspect_then_confirmed() {
        let mut d = FailureDetector::new(cfg());
        d.record_heard(7, at(0));
        assert_eq!(d.state(7), Some(PeerState::Alive));
        assert!(d.sweep(at(10)).is_empty(), "10s silence: not yet suspect");
        assert_eq!(d.state(7), Some(PeerState::Alive));
        assert!(d.sweep(at(11)).is_empty(), "suspicion is not confirmation");
        assert_eq!(d.state(7), Some(PeerState::Suspect { since: at(11) }));
        assert!(d.sweep(at(15)).is_empty(), "confirm window not elapsed");
        assert_eq!(d.sweep(at(16)), vec![7], "confirmed after 11+5");
        assert!(d.is_confirmed(7));
        assert_eq!(d.sweep(at(20)), Vec::<NodeId>::new(), "reported once");
    }

    #[test]
    fn traffic_resets_suspicion() {
        let mut d = FailureDetector::new(cfg());
        d.record_heard(3, at(0));
        d.sweep(at(11)); // suspect
        assert_eq!(d.suspects(), vec![3]);
        assert!(!d.record_heard(3, at(12)), "was not yet confirmed");
        assert_eq!(d.state(3), Some(PeerState::Alive));
        assert!(d.sweep(at(20)).is_empty(), "silence clock restarted");
    }

    #[test]
    fn hearing_a_confirmed_peer_reports_revival() {
        let mut d = FailureDetector::new(cfg());
        d.record_heard(5, at(0));
        d.sweep(at(11));
        assert_eq!(d.sweep(at(16)), vec![5]);
        assert!(d.record_heard(5, at(17)), "revival of a confirmed peer");
        assert_eq!(d.state(5), Some(PeerState::Alive));
        // A fresh outage is reported again.
        d.sweep(at(28));
        assert_eq!(d.sweep(at(33)), vec![5]);
    }

    #[test]
    fn unheard_peers_are_never_suspected() {
        let mut d = FailureDetector::new(cfg());
        assert!(d.sweep(at(100)).is_empty());
        assert_eq!(d.state(9), None);
        assert_eq!(d.watched(), 0);
    }

    #[test]
    fn confirmations_come_out_in_id_order() {
        let mut d = FailureDetector::new(cfg());
        d.record_heard(9, at(0));
        d.record_heard(2, at(0));
        d.record_heard(4, at(0));
        d.sweep(at(11));
        assert_eq!(d.sweep(at(16)), vec![2, 4, 9]);
    }

    #[test]
    fn sweep_report_exposes_suspicion_transitions() {
        let mut d = FailureDetector::new(cfg());
        d.record_heard(7, at(0));
        let r = d.sweep_report(at(11));
        assert_eq!(r.newly_suspected, vec![7]);
        assert!(r.confirmed.is_empty());
        // Staying suspect is not a transition.
        let r = d.sweep_report(at(12));
        assert!(r.newly_suspected.is_empty());
        assert!(r.confirmed.is_empty());
        let r = d.sweep_report(at(16));
        assert_eq!(r.confirmed, vec![7]);
    }

    #[test]
    fn forget_drops_the_watch() {
        let mut d = FailureDetector::new(cfg());
        d.record_heard(1, at(0));
        d.forget(1);
        assert_eq!(d.state(1), None);
        assert!(d.sweep(at(100)).is_empty());
    }

    #[test]
    #[should_panic(expected = "suspect_after")]
    fn zero_suspect_window_rejected() {
        FailureDetector::new(FailureDetectorConfig {
            suspect_after: SimDuration::ZERO,
            ..Default::default()
        });
    }
}
