//! Protocol configuration.
//!
//! Defaults reproduce the parameter values published in Section 5 of the
//! paper: thresholds of 0.9 for both Algorithm H and Algorithm P, a 1-second
//! pure-push dissemination interval, and an adaptive-pull time window /
//! `Upper_limit` of 100 time units.

use crate::failure::FailureDetectorConfig;
use realtor_simcore::SimDuration;

/// How an organizer ranks migration candidates from its availability store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidatePolicy {
    /// The node reporting the most spare capacity (ties broken by lowest id);
    /// this is the paper's "best candidate destination node".
    #[default]
    MostHeadroom,
    /// The node whose report is freshest (ties by headroom, then id).
    Freshest,
    /// The lowest-id node whose report satisfies the demand — a cheap
    /// first-fit used by ablations.
    FirstFit,
}

/// Tunable parameters shared by all five protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// Algorithm H queue-occupancy threshold: a task arrival only triggers
    /// HELP when occupancy (including the new task) exceeds this fraction.
    /// The paper's `Pull-.9` / `REALTOR` use 0.9.
    pub help_threshold: f64,
    /// Algorithm P queue-occupancy threshold: a host pledges only while its
    /// occupancy is below this fraction, and (REALTOR / adaptive push) emits
    /// an update whenever occupancy crosses it in either direction.
    pub pledge_threshold: f64,
    /// Initial value of `HELP_interval`.
    pub initial_help_interval: SimDuration,
    /// Algorithm H penalty factor: on timeout, `interval += interval * alpha`.
    pub alpha: f64,
    /// Algorithm H reward factor: on success, `interval -= interval * beta`.
    pub beta: f64,
    /// Algorithm H `Upper_limit`: the interval never grows beyond this.
    pub upper_limit: SimDuration,
    /// How long after sending HELP the organizer waits for a PLEDGE before
    /// declaring a timeout (the paper's `set_timer` duration is unspecified;
    /// see DESIGN.md §5).
    pub pledge_wait: SimDuration,
    /// Pure-push dissemination period (the paper's `Push-1` uses 1 s).
    pub push_interval: SimDuration,
    /// Community-membership soft-state lifetime: a member stops sending
    /// unsolicited pledges to an organizer whose last HELP (refresh) is older
    /// than this.
    pub membership_ttl: SimDuration,
    /// Availability reports older than this are ignored when picking a
    /// migration candidate. `None` keeps the latest report forever.
    pub info_ttl: Option<SimDuration>,
    /// Candidate ranking policy.
    pub candidate_policy: CandidatePolicy,
    /// Optional timeout-based failure detection over protocol traffic
    /// (see [`crate::failure`]). `None` — the default, and the paper's
    /// configuration — relies purely on soft-state TTL expiry.
    pub failure_detector: Option<FailureDetectorConfig>,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            help_threshold: 0.9,
            pledge_threshold: 0.9,
            initial_help_interval: SimDuration::from_secs(1),
            alpha: 0.5,
            beta: 0.5,
            upper_limit: SimDuration::from_secs(100),
            pledge_wait: SimDuration::from_secs(1),
            push_interval: SimDuration::from_secs(1),
            // Memberships are "valid only for the interval between two
            // consecutive refresh messages" (§4): they must expire on the
            // scale of a few HELP intervals, not the Upper_limit — a long
            // TTL makes every node a member of every community and REALTOR's
            // unsolicited updates degenerate into a flood.
            membership_ttl: SimDuration::from_secs(10),
            info_ttl: None,
            candidate_policy: CandidatePolicy::MostHeadroom,
            failure_detector: None,
        }
    }
}

impl ProtocolConfig {
    /// The parameter set used throughout the paper's Section 5.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Builder-style setter for the Algorithm H threshold.
    pub fn with_help_threshold(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v));
        self.help_threshold = v;
        self
    }

    /// Builder-style setter for the Algorithm P threshold.
    pub fn with_pledge_threshold(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v));
        self.pledge_threshold = v;
        self
    }

    /// Builder-style setter for `alpha` (growth penalty).
    pub fn with_alpha(mut self, v: f64) -> Self {
        assert!(v >= 0.0);
        self.alpha = v;
        self
    }

    /// Builder-style setter for `beta` (shrink reward); must be `< 1`.
    pub fn with_beta(mut self, v: f64) -> Self {
        assert!((0.0..1.0).contains(&v), "beta must be in [0, 1)");
        self.beta = v;
        self
    }

    /// Builder-style setter for `Upper_limit`.
    pub fn with_upper_limit(mut self, v: SimDuration) -> Self {
        self.upper_limit = v;
        self
    }

    /// Builder-style setter for the pure-push period.
    pub fn with_push_interval(mut self, v: SimDuration) -> Self {
        assert!(!v.is_zero());
        self.push_interval = v;
        self
    }

    /// Builder-style setter for the candidate policy.
    pub fn with_candidate_policy(mut self, v: CandidatePolicy) -> Self {
        self.candidate_policy = v;
        self
    }

    /// Builder-style setter enabling the failure detector.
    pub fn with_failure_detector(mut self, v: FailureDetectorConfig) -> Self {
        self.failure_detector = Some(v);
        self
    }

    /// Validate cross-field invariants; called by the protocol factory.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.help_threshold));
        assert!((0.0..=1.0).contains(&self.pledge_threshold));
        assert!(self.alpha >= 0.0, "alpha must be non-negative");
        assert!(
            (0.0..1.0).contains(&self.beta),
            "beta must be in [0, 1) so the interval stays positive"
        );
        assert!(
            !self.initial_help_interval.is_zero(),
            "initial HELP interval must be positive"
        );
        assert!(
            self.upper_limit >= self.initial_help_interval,
            "Upper_limit below the initial interval would clamp immediately"
        );
        assert!(!self.push_interval.is_zero());
        if let Some(fd) = &self.failure_detector {
            fd.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ProtocolConfig::paper();
        assert_eq!(c.help_threshold, 0.9);
        assert_eq!(c.pledge_threshold, 0.9);
        assert_eq!(c.push_interval, SimDuration::from_secs(1));
        assert_eq!(c.upper_limit, SimDuration::from_secs(100));
        c.validate();
    }

    #[test]
    fn builders_apply() {
        let c = ProtocolConfig::paper()
            .with_help_threshold(0.8)
            .with_alpha(0.25)
            .with_beta(0.1)
            .with_upper_limit(SimDuration::from_secs(50))
            .with_candidate_policy(CandidatePolicy::Freshest);
        assert_eq!(c.help_threshold, 0.8);
        assert_eq!(c.alpha, 0.25);
        assert_eq!(c.beta, 0.1);
        assert_eq!(c.candidate_policy, CandidatePolicy::Freshest);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_of_one_rejected() {
        ProtocolConfig::paper().with_beta(1.0);
    }

    #[test]
    #[should_panic(expected = "Upper_limit")]
    fn upper_limit_below_initial_rejected() {
        ProtocolConfig::paper()
            .with_upper_limit(SimDuration::from_millis(10))
            .validate();
    }
}
