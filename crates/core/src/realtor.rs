//! REALTOR — the paper's protocol: adaptive PULL (Algorithm H) combined with
//! adaptive PUSH (the unsolicited half of Algorithm P).
//!
//! Behaviour, straight from Section 4:
//!
//! * When a task arrival would push queue occupancy above the HELP
//!   threshold and `HELP_interval` has elapsed, flood a `HELP` (community
//!   invitation/refresh) and arm the pledge-wait timer. On timeout the
//!   interval grows by `alpha` (bounded by `Upper_limit`); when a pledge
//!   reveals a viable destination it shrinks by `beta`.
//! * On receiving `HELP`, join/refresh the sender's community and answer
//!   with `PLEDGE` if local occupancy is below the pledge threshold.
//! * While a member of any community, send an unsolicited `PLEDGE` to every
//!   live organizer whenever local occupancy crosses the pledge threshold in
//!   either direction — this is the push half that keeps organizers current.
//!
//! All community state is soft: memberships expire `membership_ttl` after
//! the organizer's last HELP, so dead organizers stop receiving updates and
//! dead members age out of pledge lists.

use crate::community::{MembershipTable, OwnCommunity};
use crate::config::ProtocolConfig;
use crate::failure::FailureDetector;
use crate::help::{HelpController, HelpDecision, HelpMode};
use crate::message::{Help, Message, Pledge};
use crate::pledge::{AvailabilityStore, PledgePolicy};
use crate::protocol::{Actions, DiscoveryProtocol, Introspection, LocalView, TimerToken};
use realtor_net::NodeId;
use realtor_simcore::trace::{TraceKind, TraceValue, Tracer};
use realtor_simcore::SimTime;

/// Timer token reserved for the failure-detector sweep. Algorithm H mints
/// its pledge-wait tokens from a generation counter starting at 0, so the
/// top bit can never collide with it within any realistic run.
pub const DETECTOR_TIMER_TOKEN: TimerToken = TimerToken(1 << 63);

/// The REALTOR protocol instance for one node.
#[derive(Debug)]
pub struct Realtor {
    me: NodeId,
    cfg: ProtocolConfig,
    help: HelpController,
    policy: PledgePolicy,
    memberships: MembershipTable,
    own_community: OwnCommunity,
    store: AvailabilityStore,
    /// Queue demand (seconds) of the most recent task that needed help;
    /// used for the "a node is found for migration" reward test.
    last_need_secs: f64,
    /// Optional liveness tracking over received traffic (off in the paper's
    /// configuration; see [`crate::failure`]).
    detector: Option<FailureDetector>,
    /// Structured-trace sink (disabled by default: a pure no-op observer).
    tracer: Tracer,
}

impl Realtor {
    /// Create a REALTOR instance for `me`.
    pub fn new(me: NodeId, cfg: ProtocolConfig) -> Self {
        cfg.validate();
        Realtor {
            me,
            help: HelpController::new(&cfg, HelpMode::Adaptive),
            policy: PledgePolicy::new(&cfg, 0.0),
            memberships: MembershipTable::new(cfg.membership_ttl),
            own_community: OwnCommunity::new(cfg.membership_ttl),
            store: AvailabilityStore::new(),
            last_need_secs: 0.0,
            detector: cfg.failure_detector.map(FailureDetector::new),
            tracer: Tracer::disabled(),
            cfg,
        }
    }

    /// Immutable view of the pledge list (for tests and diagnostics).
    pub fn store(&self) -> &AvailabilityStore {
        &self.store
    }

    /// The Algorithm H controller (for tests and diagnostics).
    pub fn help_controller(&self) -> &HelpController {
        &self.help
    }

    fn make_pledge(&self, now: SimTime, local: LocalView) -> Pledge {
        Pledge {
            pledger: self.me,
            headroom_secs: local.headroom_secs,
            community_count: self.memberships.count(now),
            grant_probability: (local.headroom_secs / local.capacity_secs).clamp(0.0, 1.0),
            sent_at: now,
        }
    }

    fn urgency(&self, queue_frac: f64) -> f64 {
        let th = self.help.threshold();
        if th >= 1.0 {
            1.0
        } else {
            ((queue_frac - th) / (1.0 - th)).clamp(0.0, 1.0)
        }
    }

    /// The failure detector's current verdicts (tests and diagnostics).
    pub fn detector(&self) -> Option<&FailureDetector> {
        self.detector.as_ref()
    }

    /// Run a detector sweep: tear down soft state for every peer confirmed
    /// dead by this sweep and tell the environment so it can recover the
    /// peer's orphaned work.
    fn detector_sweep(&mut self, now: SimTime, out: &mut Actions) {
        let Some(det) = self.detector.as_mut() else {
            return;
        };
        let report = det.sweep_report(now);
        let sweep_interval = det.config().sweep_interval;
        for &peer in &report.newly_suspected {
            self.tracer.emit(
                now,
                Some(self.me),
                TraceKind::PeerSuspect,
                &[("peer", TraceValue::U64(peer as u64))],
            );
        }
        for &peer in &report.confirmed {
            self.memberships.leave(peer);
            self.own_community.remove(peer);
            self.store.forget(peer);
            out.declare_dead(peer);
            self.tracer.emit(
                now,
                Some(self.me),
                TraceKind::PeerConfirmed,
                &[("peer", TraceValue::U64(peer as u64))],
            );
        }
        out.set_timer(DETECTOR_TIMER_TOKEN, sweep_interval);
    }

    /// Emit an `interval_adapt` event when Algorithm H moved its interval.
    fn trace_interval(&self, now: SimTime, before_secs: f64, after_secs: f64) {
        if after_secs != before_secs {
            let cause = if after_secs > before_secs {
                "penalty"
            } else {
                "reward"
            };
            self.tracer.emit(
                now,
                Some(self.me),
                TraceKind::IntervalAdapt,
                &[
                    ("old_secs", TraceValue::F64(before_secs)),
                    ("new_secs", TraceValue::F64(after_secs)),
                    ("cause", TraceValue::Str(cause)),
                ],
            );
        }
    }
}

impl DiscoveryProtocol for Realtor {
    fn name(&self) -> &'static str {
        "REALTOR-100"
    }

    fn node(&self) -> NodeId {
        self.me
    }

    fn on_start(&mut self, _now: SimTime, _local: LocalView, out: &mut Actions) {
        // REALTOR proper is purely reactive: no periodic timers at start.
        // Only the optional failure detector needs a sweep heartbeat.
        if let Some(det) = &self.detector {
            out.set_timer(DETECTOR_TIMER_TOKEN, det.config().sweep_interval);
        }
    }

    fn on_task_arrival(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        match self.help.on_task_arrival(now, local.queue_frac) {
            HelpDecision::SendHelp { timer_gen, wait } => {
                let urgency = self.urgency(local.queue_frac);
                let member_count = self.own_community.member_count(now);
                out.flood(Message::Help(Help {
                    organizer: self.me,
                    member_count,
                    urgency,
                    relay_ttl: 0,
                }));
                out.set_timer(TimerToken(timer_gen), wait);
                self.tracer.emit(
                    now,
                    Some(self.me),
                    TraceKind::HelpFlood,
                    &[
                        ("interval_secs", TraceValue::F64(self.help.interval().as_secs_f64())),
                        ("urgency", TraceValue::F64(urgency)),
                        ("members", TraceValue::U64(member_count as u64)),
                    ],
                );
            }
            HelpDecision::Hold => {}
        }
    }

    fn on_usage_change(&mut self, now: SimTime, local: LocalView, out: &mut Actions) {
        if self.policy.observe(local.queue_frac).is_some() {
            // Unsolicited update to every community we currently belong to.
            let pledge = self.make_pledge(now, local);
            for organizer in self.memberships.current(now) {
                out.unicast(organizer, Message::Pledge(pledge));
                if self.tracer.records(TraceKind::PledgeSend) {
                    self.tracer.emit(
                        now,
                        Some(self.me),
                        TraceKind::PledgeSend,
                        &[
                            ("to", TraceValue::U64(organizer as u64)),
                            ("headroom_secs", TraceValue::F64(pledge.headroom_secs)),
                            ("solicited", TraceValue::Bool(false)),
                        ],
                    );
                }
            }
            let expired = self.memberships.purge_expired(now);
            if expired > 0 {
                self.tracer.emit(
                    now,
                    Some(self.me),
                    TraceKind::CommunityExpire,
                    &[("expired", TraceValue::U64(expired as u64))],
                );
            }
        }
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: &Message,
        local: LocalView,
        out: &mut Actions,
    ) {
        // Every received message doubles as a liveness heartbeat.
        if from != self.me {
            if let Some(det) = self.detector.as_mut() {
                if det.record_heard(from, now) {
                    self.tracer.emit(
                        now,
                        Some(self.me),
                        TraceKind::PeerRevived,
                        &[("peer", TraceValue::U64(from as u64))],
                    );
                }
            }
        }
        match msg {
            Message::Help(h) => {
                if h.organizer == self.me {
                    return; // our own flood echoed back
                }
                // Joining/refreshing is free; pledging requires headroom.
                let joined = self.memberships.refresh(h.organizer, now);
                let kind = if joined {
                    TraceKind::CommunityJoin
                } else {
                    TraceKind::CommunityRefresh
                };
                if self.tracer.records(kind) {
                    self.tracer.emit(
                        now,
                        Some(self.me),
                        kind,
                        &[("organizer", TraceValue::U64(h.organizer as u64))],
                    );
                }
                if self.policy.should_answer_help(local.queue_frac) {
                    let pledge = self.make_pledge(now, local);
                    out.unicast(h.organizer, Message::Pledge(pledge));
                    if self.tracer.records(TraceKind::PledgeSend) {
                        self.tracer.emit(
                            now,
                            Some(self.me),
                            TraceKind::PledgeSend,
                            &[
                                ("to", TraceValue::U64(h.organizer as u64)),
                                ("headroom_secs", TraceValue::F64(pledge.headroom_secs)),
                                ("solicited", TraceValue::Bool(true)),
                            ],
                        );
                    }
                }
            }
            Message::Pledge(p) => {
                self.own_community.pledge_received(p.pledger, now);
                // Duplicate/out-of-order deliveries (unreliable channel) are
                // rejected by the watermark and never reward Algorithm H.
                let fresh = self
                    .store
                    .record_report(p.pledger, p.headroom_secs, now, p.sent_at);
                let kind = if fresh {
                    TraceKind::PledgeAccept
                } else {
                    TraceKind::PledgeStaleDrop
                };
                if self.tracer.records(kind) {
                    self.tracer.emit(
                        now,
                        Some(self.me),
                        kind,
                        &[
                            ("pledger", TraceValue::U64(p.pledger as u64)),
                            ("headroom_secs", TraceValue::F64(p.headroom_secs)),
                        ],
                    );
                }
                let found =
                    fresh && p.pledger != self.me && p.headroom_secs >= self.last_need_secs;
                let before = self.help.interval().as_secs_f64();
                self.help.on_pledge(found);
                self.trace_interval(now, before, self.help.interval().as_secs_f64());
            }
            Message::Advert(_) => {
                // REALTOR deployments never produce adverts; tolerate and
                // ignore them (idempotence under foreign traffic).
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, token: TimerToken, _local: LocalView, out: &mut Actions) {
        if token == DETECTOR_TIMER_TOKEN && self.detector.is_some() {
            self.detector_sweep(now, out);
        } else {
            let before = self.help.interval().as_secs_f64();
            self.help.on_timeout(token.0);
            self.trace_interval(now, before, self.help.interval().as_secs_f64());
        }
    }

    fn pick_candidate(&mut self, now: SimTime, need_secs: f64) -> Option<NodeId> {
        self.last_need_secs = need_secs;
        self.store.pick(
            now,
            need_secs,
            self.cfg.info_ttl,
            self.me,
            self.cfg.candidate_policy,
        )
    }

    fn on_migration_result(&mut self, now: SimTime, dest: NodeId, admitted: bool) {
        if admitted {
            // Locally account for the capacity we just consumed at `dest` so
            // the same destination is not immediately over-selected.
            if let Some(r) = self.store.get(dest) {
                self.store
                    .record(dest, (r.headroom_secs - self.last_need_secs).max(0.0), now);
            }
        } else {
            // The destination refused: its pledge was stale. Remember it as
            // having no headroom until it tells us otherwise.
            self.store.record(dest, 0.0, now);
        }
    }

    fn introspect(&self, now: SimTime) -> Introspection {
        Introspection {
            help_interval_secs: Some(self.help.interval().as_secs_f64()),
            known_candidates: self.store.len(),
            memberships: self.memberships.count(now) as usize,
            lifetime_joins: self.memberships.lifetime_joins(),
        }
    }

    fn on_reset(&mut self, now: SimTime) {
        self.help.reset();
        self.memberships = MembershipTable::new(self.cfg.membership_ttl);
        self.own_community = OwnCommunity::new(self.cfg.membership_ttl);
        self.store = AvailabilityStore::new();
        self.policy = PledgePolicy::new(&self.cfg, 0.0);
        self.last_need_secs = 0.0;
        // Amnesia extends to liveness verdicts: a restored node must not
        // remember who it had confirmed dead before the crash.
        self.detector = self.cfg.failure_detector.map(FailureDetector::new);
        let _ = now;
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Action;
    use realtor_simcore::SimDuration;

    fn view(headroom: f64) -> LocalView {
        LocalView::new(headroom, 100.0)
    }

    fn at(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn floods(out: &Actions) -> usize {
        out.as_slice()
            .iter()
            .filter(|a| matches!(a, Action::Flood(_)))
            .count()
    }

    fn unicasts(out: &Actions) -> Vec<(NodeId, Message)> {
        out.as_slice()
            .iter()
            .filter_map(|a| match a {
                Action::Unicast(to, m) => Some((*to, *m)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn overloaded_arrival_floods_help() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        r.on_task_arrival(at(1.0), view(5.0), &mut out); // 95% full
        assert_eq!(floods(&out), 1);
        assert!(out
            .as_slice()
            .iter()
            .any(|a| matches!(a, Action::SetTimer(_, _))));
    }

    #[test]
    fn underloaded_arrival_is_silent() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        r.on_task_arrival(at(1.0), view(50.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn help_reply_when_below_threshold() {
        let mut r = Realtor::new(1, ProtocolConfig::paper());
        let mut out = Actions::new();
        let help = Message::Help(Help {
            organizer: 0,
            member_count: 0,
            urgency: 0.5,
            relay_ttl: 0,
        });
        r.on_message(at(1.0), 0, &help, view(80.0), &mut out);
        let u = unicasts(&out);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].0, 0);
        match u[0].1 {
            Message::Pledge(p) => {
                assert_eq!(p.pledger, 1);
                assert_eq!(p.headroom_secs, 80.0);
                assert_eq!(p.community_count, 1, "we just joined node 0's community");
                assert!((p.grant_probability - 0.8).abs() < 1e-12);
            }
            _ => panic!("expected pledge"),
        }
    }

    #[test]
    fn busy_member_joins_but_does_not_pledge() {
        let mut r = Realtor::new(1, ProtocolConfig::paper());
        let mut out = Actions::new();
        let help = Message::Help(Help {
            organizer: 0,
            member_count: 0,
            urgency: 0.5,
            relay_ttl: 0,
        });
        r.on_message(at(1.0), 0, &help, view(5.0), &mut out); // 95% busy
        assert!(unicasts(&out).is_empty());
        // ...but when its usage crosses the threshold it pushes unsolicited
        // pledges to the community it joined: once when it (re-)confirms the
        // busy side, once when it frees up.
        let mut out = Actions::new();
        r.on_usage_change(at(2.0), view(5.0), &mut out);
        let busy_updates = unicasts(&out);
        assert_eq!(busy_updates.len(), 1, "policy starts below: became-busy crossing");
        let mut out = Actions::new();
        r.on_usage_change(at(3.0), view(60.0), &mut out);
        let u = unicasts(&out);
        assert_eq!(u.len(), 1, "became-free crossing pledges to organizer 0");
        assert_eq!(u[0].0, 0);
    }

    #[test]
    fn crossing_to_busy_also_updates_organizers() {
        let mut r = Realtor::new(1, ProtocolConfig::paper());
        let mut out = Actions::new();
        let help = Message::Help(Help {
            organizer: 0,
            member_count: 0,
            urgency: 0.1,
            relay_ttl: 0,
        });
        r.on_message(at(1.0), 0, &help, view(80.0), &mut out);
        let mut out = Actions::new();
        r.on_usage_change(at(2.0), view(2.0), &mut out); // now 98% busy
        let u = unicasts(&out);
        assert_eq!(u.len(), 1);
        match u[0].1 {
            Message::Pledge(p) => assert_eq!(p.headroom_secs, 2.0),
            _ => panic!("expected pledge"),
        }
    }

    #[test]
    fn expired_membership_receives_no_updates() {
        let cfg = ProtocolConfig::paper();
        let ttl = cfg.membership_ttl;
        let mut r = Realtor::new(1, cfg);
        let mut out = Actions::new();
        let help = Message::Help(Help {
            organizer: 0,
            member_count: 0,
            urgency: 0.1,
            relay_ttl: 0,
        });
        r.on_message(at(0.0), 0, &help, view(80.0), &mut out);
        let mut out = Actions::new();
        let late = SimTime::ZERO + ttl + SimDuration::from_secs(1);
        r.on_usage_change(late, view(2.0), &mut out);
        assert!(unicasts(&out).is_empty(), "membership expired: silent");
    }

    #[test]
    fn pledges_build_candidate_list() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        for (node, headroom) in [(1, 30.0), (2, 70.0), (3, 50.0)] {
            let pledge = Message::Pledge(Pledge {
                pledger: node,
                headroom_secs: headroom,
                community_count: 1,
                grant_probability: headroom / 100.0,
                sent_at: SimTime::ZERO,
            });
            r.on_message(at(1.0), node, &pledge, view(5.0), &mut out);
        }
        assert_eq!(r.pick_candidate(at(2.0), 10.0), Some(2));
        assert_eq!(r.pick_candidate(at(2.0), 60.0), Some(2));
        assert_eq!(r.pick_candidate(at(2.0), 90.0), None);
    }

    #[test]
    fn refusal_marks_destination_busy() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        let pledge = Message::Pledge(Pledge {
            pledger: 2,
            headroom_secs: 70.0,
            community_count: 1,
            grant_probability: 0.7,
            sent_at: SimTime::ZERO,
        });
        r.on_message(at(1.0), 2, &pledge, view(5.0), &mut out);
        assert_eq!(r.pick_candidate(at(2.0), 10.0), Some(2));
        r.on_migration_result(at(2.0), 2, false);
        assert_eq!(r.pick_candidate(at(2.0), 10.0), None);
    }

    #[test]
    fn admission_decrements_remembered_headroom() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        let pledge = Message::Pledge(Pledge {
            pledger: 2,
            headroom_secs: 15.0,
            community_count: 1,
            grant_probability: 0.15,
            sent_at: SimTime::ZERO,
        });
        r.on_message(at(1.0), 2, &pledge, view(5.0), &mut out);
        assert_eq!(r.pick_candidate(at(2.0), 10.0), Some(2));
        r.on_migration_result(at(2.0), 2, true);
        // 15 - 10 = 5 left: not enough for another 10-second task.
        assert_eq!(r.pick_candidate(at(2.0), 10.0), None);
        assert_eq!(r.pick_candidate(at(2.0), 4.0), Some(2));
    }

    #[test]
    fn successful_pledge_shrinks_help_interval() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        // Open an urgent HELP round (queue overflow); a useful pledge
        // answering it shrinks the interval (reward), exactly once.
        r.on_task_arrival(at(0.0), view(0.0), &mut out);
        assert!(out
            .as_slice()
            .iter()
            .any(|a| matches!(a, Action::SetTimer(_, _))));
        let before = r.help_controller().interval();
        let pledge = Message::Pledge(Pledge {
            pledger: 2,
            headroom_secs: 50.0,
            community_count: 1,
            grant_probability: 0.5,
            sent_at: SimTime::ZERO,
        });
        r.on_message(at(0.5), 2, &pledge, view(5.0), &mut Actions::new());
        let after = r.help_controller().interval();
        assert!(after < before);
        assert_eq!(after, SimDuration::from_secs_f64(0.5));
        // Second pledge of the same round: no further shrink.
        r.on_message(at(0.6), 3, &pledge, view(5.0), &mut Actions::new());
        assert_eq!(r.help_controller().interval(), after);
    }

    #[test]
    fn timeout_after_silence_grows_interval() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        r.on_task_arrival(at(0.0), view(5.0), &mut out);
        let token = out
            .as_slice()
            .iter()
            .find_map(|a| match a {
                Action::SetTimer(t, _) => Some(*t),
                _ => None,
            })
            .unwrap();
        r.on_timer(at(1.0), token, view(5.0), &mut Actions::new());
        assert_eq!(
            r.help_controller().interval(),
            SimDuration::from_secs_f64(1.5)
        );
    }

    #[test]
    fn own_help_echo_is_ignored() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        let own = Message::Help(Help {
            organizer: 0,
            member_count: 0,
            urgency: 0.2,
            relay_ttl: 0,
        });
        r.on_message(at(1.0), 0, &own, view(80.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn reset_clears_soft_state() {
        let mut r = Realtor::new(0, ProtocolConfig::paper());
        let mut out = Actions::new();
        let pledge = Message::Pledge(Pledge {
            pledger: 2,
            headroom_secs: 70.0,
            community_count: 1,
            grant_probability: 0.7,
            sent_at: SimTime::ZERO,
        });
        r.on_message(at(1.0), 2, &pledge, view(5.0), &mut out);
        r.on_reset(at(2.0));
        assert_eq!(r.pick_candidate(at(2.0), 1.0), None);
        assert!(r.store().is_empty());
    }
}
