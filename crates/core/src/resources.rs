//! Multi-resource discovery — the generalization the paper sketches in
//! footnote 3: *"In this simulation, we assume a single resource — CPU. More
//! general resource scenarios such as network bandwidth, current security
//! level, etc., would give similar results."*
//!
//! A [`ResourceVector`] carries CPU headroom (seconds of queued work, as in
//! the main experiments), network bandwidth headroom, and the host's current
//! security level. A pledge satisfies a demand when every component
//! suffices; candidates are ranked by the bottleneck (minimum component
//! ratio), which prevents a host with huge CPU headroom but no bandwidth
//! from looking attractive.

use realtor_net::NodeId;
use realtor_simcore::{SimDuration, SimTime};

/// Security levels, ordered: a host satisfies a demand for level L when its
/// own level is *at least* L.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub enum SecurityLevel {
    /// No assurances (e.g. a node in a zone under active attack).
    #[default]
    Open,
    /// Baseline hardening.
    Standard,
    /// Hardened hosts suitable for critical components.
    Hardened,
    /// Trusted enclave.
    Trusted,
}

/// A vector of resource availabilities (offer) or requirements (demand).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceVector {
    /// CPU queue headroom in seconds of work.
    pub cpu_secs: f64,
    /// Network bandwidth headroom in Mbit/s.
    pub bandwidth_mbps: f64,
    /// Security level of the host (offer) or the minimum acceptable level
    /// (demand).
    pub security: SecurityLevel,
}

impl ResourceVector {
    /// An offer/demand with only the CPU dimension set (the paper's main
    /// experiments).
    pub fn cpu_only(cpu_secs: f64) -> Self {
        ResourceVector {
            cpu_secs,
            bandwidth_mbps: 0.0,
            security: SecurityLevel::Open,
        }
    }

    /// Does this offer satisfy `demand` in every dimension?
    pub fn satisfies(&self, demand: &ResourceVector) -> bool {
        self.cpu_secs >= demand.cpu_secs
            && self.bandwidth_mbps >= demand.bandwidth_mbps
            && self.security >= demand.security
    }

    /// Bottleneck score of this offer against `demand`: the minimum
    /// offer/demand ratio over the numeric dimensions (∞ when the demand is
    /// zero in both). Higher is better; `< 1` means unsatisfiable.
    pub fn bottleneck_score(&self, demand: &ResourceVector) -> f64 {
        if self.security < demand.security {
            return 0.0;
        }
        let mut score = f64::INFINITY;
        if demand.cpu_secs > 0.0 {
            score = score.min(self.cpu_secs / demand.cpu_secs);
        }
        if demand.bandwidth_mbps > 0.0 {
            score = score.min(self.bandwidth_mbps / demand.bandwidth_mbps);
        }
        score
    }

    /// Subtract a granted demand from this offer, saturating at zero
    /// (security level is a property, not a consumable).
    pub fn consume(&mut self, demand: &ResourceVector) {
        self.cpu_secs = (self.cpu_secs - demand.cpu_secs).max(0.0);
        self.bandwidth_mbps = (self.bandwidth_mbps - demand.bandwidth_mbps).max(0.0);
    }
}

/// One multi-resource report, as remembered by an organizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiReport {
    /// The reported availability vector.
    pub offer: ResourceVector,
    /// When the report was received.
    pub at: SimTime,
}

/// A multi-resource availability store — the vector-valued analogue of
/// [`crate::pledge::AvailabilityStore`].
#[derive(Debug, Clone, Default)]
pub struct MultiResourceStore {
    reports: std::collections::BTreeMap<NodeId, MultiReport>,
}

impl MultiResourceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or overwrite) a report.
    pub fn record(&mut self, node: NodeId, offer: ResourceVector, at: SimTime) {
        self.reports.insert(node, MultiReport { offer, at });
    }

    /// Latest report for `node`.
    pub fn get(&self, node: NodeId) -> Option<MultiReport> {
        self.reports.get(&node).copied()
    }

    /// Number of stored reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Best satisfying candidate by bottleneck score (lowest id on ties).
    pub fn pick(
        &self,
        now: SimTime,
        demand: &ResourceVector,
        ttl: Option<SimDuration>,
        exclude: NodeId,
    ) -> Option<NodeId> {
        self.reports
            .iter()
            .filter(|&(&n, r)| {
                n != exclude
                    && match ttl {
                        Some(ttl) => now.since(r.at) <= ttl,
                        None => true,
                    }
                    && r.offer.satisfies(demand)
            })
            .max_by(|a, b| {
                a.1.offer
                    .bottleneck_score(demand)
                    .partial_cmp(&b.1.offer.bottleneck_score(demand))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.0.cmp(a.0))
            })
            .map(|(&n, _)| n)
    }

    /// Deduct a granted demand from the remembered offer of `node`.
    pub fn consume(&mut self, node: NodeId, demand: &ResourceVector) {
        if let Some(r) = self.reports.get_mut(&node) {
            r.offer.consume(demand);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer(cpu: f64, bw: f64, sec: SecurityLevel) -> ResourceVector {
        ResourceVector {
            cpu_secs: cpu,
            bandwidth_mbps: bw,
            security: sec,
        }
    }

    #[test]
    fn satisfaction_is_componentwise() {
        let o = offer(50.0, 100.0, SecurityLevel::Hardened);
        assert!(o.satisfies(&offer(50.0, 100.0, SecurityLevel::Hardened)));
        assert!(o.satisfies(&offer(10.0, 10.0, SecurityLevel::Open)));
        assert!(!o.satisfies(&offer(60.0, 10.0, SecurityLevel::Open)));
        assert!(!o.satisfies(&offer(10.0, 200.0, SecurityLevel::Open)));
        assert!(!o.satisfies(&offer(10.0, 10.0, SecurityLevel::Trusted)));
    }

    #[test]
    fn security_levels_are_ordered() {
        assert!(SecurityLevel::Trusted > SecurityLevel::Hardened);
        assert!(SecurityLevel::Hardened > SecurityLevel::Standard);
        assert!(SecurityLevel::Standard > SecurityLevel::Open);
    }

    #[test]
    fn bottleneck_score_picks_weakest_dimension() {
        let o = offer(100.0, 10.0, SecurityLevel::Standard);
        let d = offer(10.0, 10.0, SecurityLevel::Open);
        assert_eq!(o.bottleneck_score(&d), 1.0); // bandwidth is the bottleneck
        let insufficient_sec = offer(1.0, 1.0, SecurityLevel::Trusted);
        assert_eq!(o.bottleneck_score(&insufficient_sec), 0.0);
        let free = offer(0.0, 0.0, SecurityLevel::Open);
        assert_eq!(o.bottleneck_score(&free), f64::INFINITY);
    }

    #[test]
    fn consume_saturates() {
        let mut o = offer(10.0, 5.0, SecurityLevel::Standard);
        o.consume(&offer(4.0, 20.0, SecurityLevel::Open));
        assert_eq!(o.cpu_secs, 6.0);
        assert_eq!(o.bandwidth_mbps, 0.0);
        assert_eq!(o.security, SecurityLevel::Standard);
    }

    #[test]
    fn store_picks_best_bottleneck() {
        let mut s = MultiResourceStore::new();
        let t = SimTime::from_secs(1);
        s.record(1, offer(100.0, 12.0, SecurityLevel::Standard), t);
        s.record(2, offer(40.0, 40.0, SecurityLevel::Standard), t);
        let d = offer(10.0, 10.0, SecurityLevel::Standard);
        // node 1 bottleneck: 1.2 (bw); node 2 bottleneck: 4.0 (cpu & bw)
        assert_eq!(s.pick(t, &d, None, usize::MAX), Some(2));
    }

    #[test]
    fn store_respects_security_and_ttl() {
        let mut s = MultiResourceStore::new();
        s.record(
            1,
            offer(100.0, 100.0, SecurityLevel::Open),
            SimTime::from_secs(1),
        );
        s.record(
            2,
            offer(100.0, 100.0, SecurityLevel::Trusted),
            SimTime::from_secs(1),
        );
        let d = offer(10.0, 10.0, SecurityLevel::Hardened);
        let now = SimTime::from_secs(2);
        assert_eq!(s.pick(now, &d, None, usize::MAX), Some(2));
        // TTL of 0.5 s makes both reports stale at t=2.
        assert_eq!(
            s.pick(now, &d, Some(SimDuration::from_millis(500)), usize::MAX),
            None
        );
    }

    #[test]
    fn store_consume_updates_offer() {
        let mut s = MultiResourceStore::new();
        let t = SimTime::from_secs(1);
        s.record(1, offer(20.0, 20.0, SecurityLevel::Standard), t);
        s.consume(1, &offer(15.0, 0.0, SecurityLevel::Open));
        let d = offer(10.0, 10.0, SecurityLevel::Open);
        assert_eq!(s.pick(t, &d, None, usize::MAX), None);
        assert_eq!(s.get(1).unwrap().offer.cpu_secs, 5.0);
    }
}
