//! The protocol abstraction every discovery scheme implements.
//!
//! A protocol instance is a per-node event-driven state machine. The host
//! environment (the discrete-event simulator in `realtor-sim`, or the
//! thread-per-host runtime in `realtor-agile`) delivers *inputs* — task
//! arrivals, usage changes, messages, timers — and the protocol replies with
//! *actions* — floods, unicasts and timer arms. The protocol never touches
//! the network or the clock directly, which is what lets the identical
//! protocol code run under both substrates.

use crate::message::Message;
use realtor_net::NodeId;
use realtor_simcore::{SimDuration, SimTime, Tracer};

/// A snapshot of local node state, provided with every input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalView {
    /// Queue occupancy as a fraction of capacity, in `[0, 1]`.
    pub queue_frac: f64,
    /// Spare queue capacity in seconds of work.
    pub headroom_secs: f64,
    /// Total queue capacity in seconds of work.
    pub capacity_secs: f64,
}

impl LocalView {
    /// Convenience constructor that derives `queue_frac` from the other two.
    pub fn new(headroom_secs: f64, capacity_secs: f64) -> Self {
        assert!(capacity_secs > 0.0);
        let used = (capacity_secs - headroom_secs).max(0.0);
        LocalView {
            queue_frac: (used / capacity_secs).clamp(0.0, 1.0),
            headroom_secs: headroom_secs.max(0.0),
            capacity_secs,
        }
    }
}

/// An opaque timer correlation token. Protocols mint these; the environment
/// hands them back verbatim when the timer fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// One outbound action requested by a protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Disseminate `Message` to every (alive) node in this node's scope.
    /// Charged as a flood by the cost model.
    Flood(Message),
    /// Send `Message` to one node. Charged as a unicast.
    Unicast(NodeId, Message),
    /// Arm a timer that fires after `delay`, delivering `token` back through
    /// [`DiscoveryProtocol::on_timer`]. Protocols ignore stale tokens
    /// internally rather than cancelling timers.
    SetTimer(TimerToken, SimDuration),
    /// The protocol's failure detector has confirmed `NodeId` dead. This is
    /// local knowledge handed to the environment (to trigger recovery of
    /// work orphaned on the peer), not a network message — the cost model
    /// charges nothing for it.
    DeclareDead(NodeId),
}

/// Accumulates the actions produced while handling one input.
#[derive(Debug, Default)]
pub struct Actions {
    items: Vec<Action>,
}

impl Actions {
    /// An empty action buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a flood.
    pub fn flood(&mut self, msg: Message) {
        self.items.push(Action::Flood(msg));
    }

    /// Queue a unicast.
    pub fn unicast(&mut self, to: NodeId, msg: Message) {
        self.items.push(Action::Unicast(to, msg));
    }

    /// Queue a timer arm.
    pub fn set_timer(&mut self, token: TimerToken, delay: SimDuration) {
        self.items.push(Action::SetTimer(token, delay));
    }

    /// Queue a dead-peer declaration.
    pub fn declare_dead(&mut self, peer: NodeId) {
        self.items.push(Action::DeclareDead(peer));
    }

    /// Drain the queued actions.
    pub fn drain(&mut self) -> impl Iterator<Item = Action> + '_ {
        self.items.drain(..)
    }

    /// Borrow the queued actions (mainly for tests).
    pub fn as_slice(&self) -> &[Action] {
        &self.items
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A live snapshot of protocol-internal state, for diagnostics and the
/// Algorithm-H dynamics experiments. All fields are best-effort: protocols
/// report what they have.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Introspection {
    /// Current `HELP_interval` in seconds (pull-family protocols only).
    pub help_interval_secs: Option<f64>,
    /// Number of availability reports currently held.
    pub known_candidates: usize,
    /// Number of live community memberships (REALTOR only).
    pub memberships: usize,
    /// Lifetime count of community joins recorded by this node's membership
    /// table, surviving TTL expiry (but not [`DiscoveryProtocol::on_reset`]).
    /// A restored node re-joining communities shows up here.
    pub lifetime_joins: u64,
}

/// A resource-discovery protocol instance bound to one node.
pub trait DiscoveryProtocol: Send {
    /// Short name used in result tables (matches the paper's curve labels,
    /// e.g. `"REALTOR-100"`, `"Push-1"`).
    fn name(&self) -> &'static str;

    /// The node this instance runs on.
    fn node(&self) -> NodeId;

    /// Called once at simulation start (arm periodic timers, announce).
    fn on_start(&mut self, now: SimTime, local: LocalView, out: &mut Actions);

    /// A task arrived at this node. `local` reflects the queue *including*
    /// the new task if it was admitted, or the hypothetical occupancy if it
    /// must migrate — per Algorithm H's "if resource usage would exceed a
    /// threshold level".
    fn on_task_arrival(&mut self, now: SimTime, local: LocalView, out: &mut Actions);

    /// Local resource usage changed (task completion, admission, or
    /// migration in/out).
    fn on_usage_change(&mut self, now: SimTime, local: LocalView, out: &mut Actions);

    /// A protocol message was delivered.
    fn on_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: &Message,
        local: LocalView,
        out: &mut Actions,
    );

    /// A previously armed timer fired.
    fn on_timer(&mut self, now: SimTime, token: TimerToken, local: LocalView, out: &mut Actions);

    /// The environment asks for the best migration destination for a task
    /// needing `need_secs` of queue space. Returning `None` rejects the task
    /// (the paper's one-shot migration semantics).
    fn pick_candidate(&mut self, now: SimTime, need_secs: f64) -> Option<NodeId>;

    /// Feedback on the attempted migration to `dest` (admitted or refused).
    fn on_migration_result(&mut self, now: SimTime, dest: NodeId, admitted: bool);

    /// The node was killed (attack) and later restored; drop soft state.
    fn on_reset(&mut self, now: SimTime);

    /// Best-effort internal-state snapshot (diagnostics). The default
    /// reports nothing.
    fn introspect(&self, now: SimTime) -> Introspection {
        let _ = now;
        Introspection::default()
    }

    /// Install a structured-trace handle. Protocols that emit trace events
    /// keep the (cheaply cloneable) handle; the default discards it, so
    /// un-instrumented protocols need no changes. A tracer is a pure
    /// observer: installing one must never alter protocol behaviour.
    fn set_tracer(&mut self, tracer: Tracer) {
        let _ = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Advert, Message};

    #[test]
    fn local_view_derives_fraction() {
        let v = LocalView::new(25.0, 100.0);
        assert_eq!(v.queue_frac, 0.75);
        let full = LocalView::new(0.0, 100.0);
        assert_eq!(full.queue_frac, 1.0);
        let over = LocalView::new(-5.0, 100.0);
        assert_eq!(over.queue_frac, 1.0);
        assert_eq!(over.headroom_secs, 0.0);
    }

    #[test]
    fn actions_accumulate_and_drain() {
        let mut a = Actions::new();
        let msg = Message::Advert(Advert {
            advertiser: 1,
            headroom_secs: 3.0,
            sent_at: realtor_simcore::SimTime::ZERO,
        });
        a.flood(msg);
        a.unicast(2, msg);
        a.set_timer(TimerToken(9), SimDuration::from_secs(1));
        assert_eq!(a.len(), 3);
        let drained: Vec<Action> = a.drain().collect();
        assert_eq!(drained.len(), 3);
        assert!(a.is_empty());
        assert!(matches!(drained[0], Action::Flood(_)));
        assert!(matches!(drained[1], Action::Unicast(2, _)));
        assert!(matches!(
            drained[2],
            Action::SetTimer(TimerToken(9), _)
        ));
    }
}
